//! Decision-stage cost: every `SubcarrierDecoder` (sphere ML, naive, Oracle,
//! standard-window) decoding one full symbol (48 data subcarriers) across
//! Modulation × `P` — the scaling the paper's §6 discusses and the justification for
//! the fixed sphere.
//!
//! `sphere_alloc` is the pre-refactor sphere path (per-call candidate `Vec` cloning
//! `(Complex, Vec<u8>)` pairs out of `Modulation::constellation()`), kept as the
//! before/after baseline for the allocation-free trait port; the measured speedups
//! are recorded in the README "Performance" table.

use cprecycle::decision::{
    DecoderScratch, NaiveCentroidDecoder, OracleSegmentDecoder, StandardNearestDecoder,
    SubcarrierDecoder,
};
use cprecycle::interference_model::InterferenceModel;
use cprecycle::segments::{SegmentPowers, SymbolSegments};
use cprecycle::{CpRecycleConfig, FixedSphereMlDecoder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use rand::{Rng, SeedableRng};
use rfdsp::stats::centroid;
use rfdsp::Complex;

const RADIUS: f64 = 2.0;

/// Trains an interference model on synthetic preamble segments covering every
/// occupied bin (moderate per-segment interference, like a busy ACI capture).
fn trained_model(engine: &OfdmEngine, num_segments: usize) -> InterferenceModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let reference: Vec<Complex> = (0..64)
        .map(|bin| {
            if engine.params().occupied_bins().contains(&bin) {
                Complex::new(1.0, 0.0)
            } else {
                Complex::zero()
            }
        })
        .collect();
    let rows: Vec<Vec<Complex>> = (0..num_segments)
        .map(|_| {
            reference
                .iter()
                .map(|r| {
                    if r.norm_sqr() == 0.0 {
                        Complex::zero()
                    } else {
                        *r + Complex::from_polar(rng.gen_range(0.0..0.5), rng.gen_range(-3.1..3.1))
                    }
                })
                .collect()
        })
        .collect();
    InterferenceModel::train(
        engine,
        &[SymbolSegments::from_rows(rows)],
        &[reference],
        CpRecycleConfig::default(),
    )
    .expect("training on synthetic preamble succeeds")
}

/// One symbol's observations: per bin, a random lattice point plus per-segment noise.
fn symbol_segments(modulation: Modulation, p: usize, seed: u64) -> SymbolSegments {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let points = modulation.points();
    let tx: Vec<Complex> = (0..64)
        .map(|_| points[rng.gen_range(0..points.len())])
        .collect();
    let rows: Vec<Vec<Complex>> = (0..p)
        .map(|j| {
            tx.iter()
                .map(|t| *t + Complex::from_polar(0.1, j as f64 * 0.7 + rng.gen_range(0.0..0.3)))
                .collect()
        })
        .collect();
    SymbolSegments::from_rows(rows)
}

/// The pre-refactor sphere decode (candidate `Vec` with cloned bit vectors per bin),
/// reproduced as the before/after baseline.
fn sphere_alloc_decode_symbol(
    model: &InterferenceModel,
    constellation: &[(Complex, Vec<u8>)],
    modulation: Modulation,
    segments: &SymbolSegments,
    bins: &[usize],
) -> Vec<Complex> {
    let radius = RADIUS * modulation.min_distance();
    bins.iter()
        .map(|&bin| {
            let observations = segments.bin_observations(bin);
            let center = centroid(observations).unwrap_or(Complex::zero());
            let inside: Vec<(Complex, Vec<u8>)> = constellation
                .iter()
                .filter(|(p, _)| (*p - center).norm() <= radius)
                .cloned()
                .collect();
            let candidates = if inside.is_empty() {
                let (p, bits) = modulation.nearest_point(center);
                vec![(p, bits)]
            } else {
                inside
            };
            let mut best = candidates[0].clone();
            let mut best_score = f64::NEG_INFINITY;
            for (point, bits) in candidates {
                let score: f64 = observations
                    .iter()
                    .map(|obs| model.log_likelihood(bin, *obs, point))
                    .sum();
                if score > best_score {
                    best_score = score;
                    best = (point, bits);
                }
            }
            best.0
        })
        .collect()
}

fn bench_decision(c: &mut Criterion) {
    let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
    let data_bins = engine.params().data_bins();
    let mut group = c.benchmark_group("decision_stage");
    group.sample_size(30);
    for modulation in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        for p in [4usize, 16] {
            let model = trained_model(&engine, p);
            let segments = symbol_segments(modulation, p, 5 + p as u64);
            // Genie powers for the Oracle arm: random per-(segment, bin) interference.
            let mut rng = rand::rngs::StdRng::seed_from_u64(31);
            let powers = SegmentPowers::from_rows(
                (0..p)
                    .map(|_| (0..64).map(|_| rng.gen_range(0.0..2.0)).collect())
                    .collect(),
            );
            let mut scratch = DecoderScratch::new();

            let sphere = FixedSphereMlDecoder::new(&model, modulation, RADIUS);
            group.bench_with_input(
                BenchmarkId::new(format!("sphere_{}", modulation.name()), p),
                &segments,
                |b, segs| {
                    b.iter(|| sphere.decide_symbol(segs, &data_bins, &mut scratch));
                },
            );

            let constellation = modulation.constellation();
            group.bench_with_input(
                BenchmarkId::new(format!("sphere_alloc_{}", modulation.name()), p),
                &segments,
                |b, segs| {
                    b.iter(|| {
                        sphere_alloc_decode_symbol(
                            &model,
                            &constellation,
                            modulation,
                            segs,
                            &data_bins,
                        )
                    });
                },
            );

            let naive = NaiveCentroidDecoder::new(modulation);
            group.bench_with_input(
                BenchmarkId::new(format!("naive_{}", modulation.name()), p),
                &segments,
                |b, segs| {
                    b.iter(|| naive.decide_symbol(segs, &data_bins, &mut scratch));
                },
            );

            let oracle = OracleSegmentDecoder::new(modulation, &powers);
            group.bench_with_input(
                BenchmarkId::new(format!("oracle_{}", modulation.name()), p),
                &segments,
                |b, segs| {
                    b.iter(|| oracle.decide_symbol(segs, &data_bins, &mut scratch));
                },
            );

            let standard = StandardNearestDecoder::new(modulation);
            group.bench_with_input(
                BenchmarkId::new(format!("standard_{}", modulation.name()), p),
                &segments,
                |b, segs| {
                    b.iter(|| standard.decide_symbol(segs, &data_bins, &mut scratch));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
