//! Per-subcarrier decoder cost: the fixed-sphere ML decoder versus the naive
//! average-distance decoder, as a function of the number of FFT segments `P` and the
//! constellation order — the scaling the paper's §6 discusses and the justification for
//! the fixed sphere.

use cprecycle::interference_model::InterferenceModel;
use cprecycle::segments::SymbolSegments;
use cprecycle::{naive, CpRecycleConfig, FixedSphereMlDecoder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use rfdsp::Complex;

/// Builds a trained interference model for one bin from synthetic preamble segments.
fn trained_model(engine: &OfdmEngine, bin: usize, num_segments: usize) -> InterferenceModel {
    let reference_value = Complex::new(1.0, 0.0);
    let mut reference = vec![Complex::zero(); 64];
    reference[bin] = reference_value;
    let values: Vec<Vec<Complex>> = (0..num_segments)
        .map(|j| {
            let mut seg = vec![Complex::zero(); 64];
            let interference = Complex::from_polar(0.1 + 0.2 * (j % 4) as f64, j as f64);
            seg[bin] = reference_value + interference;
            seg
        })
        .collect();
    let segments = SymbolSegments::from_rows(values);
    InterferenceModel::train(
        engine,
        &[segments],
        &[reference],
        CpRecycleConfig::default(),
    )
    .expect("training on synthetic preamble succeeds")
}

fn bench_decoder(c: &mut Criterion) {
    let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
    let bin = engine.params().data_bins()[10];
    let mut group = c.benchmark_group("subcarrier_decoder");
    group.sample_size(30);
    for modulation in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        for p in [4usize, 16] {
            let model = trained_model(&engine, bin, p);
            let truth = modulation.points()[1];
            let observations: Vec<Complex> = (0..p)
                .map(|j| truth + Complex::from_polar(0.1, j as f64 * 0.7))
                .collect();
            let ml = FixedSphereMlDecoder::new(modulation, 2.0);
            group.bench_with_input(
                BenchmarkId::new(format!("sphere_ml_{}", modulation.name()), p),
                &observations,
                |b, obs| {
                    b.iter(|| ml.decode_subcarrier(&model, bin, obs));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("naive_{}", modulation.name()), p),
                &observations,
                |b, obs| {
                    b.iter(|| naive::decode_subcarrier(obs, modulation));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decoder);
criterion_main!(benches);
