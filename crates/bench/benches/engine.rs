//! Campaign-engine throughput: trials/sec of a real link campaign at 1, N/2 and N
//! worker threads — the scaling baseline for future sharding/async/batching PRs.
//!
//! The workload is a small but genuine PHY grid (two ACI operating points × two
//! receivers, short payloads) so the numbers track the real bottlenecks: FFTs, KDE
//! training and the sphere decoder, not synthetic busywork.

use cprecycle::CpRecycleConfig;
use cprecycle_engine::{CampaignConfig, RunOptions};
use cprecycle_scenarios::interference::AciScenario;
use cprecycle_scenarios::link::{run_link_campaign, LinkPoint, ReceiverKind, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::Mcs;
use ofdmphy::modulation::Modulation;

fn bench_points() -> Vec<LinkPoint> {
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let receivers = vec![
        ReceiverKind::Standard,
        ReceiverKind::CpRecycle(CpRecycleConfig::default()),
    ];
    [-20.0, 0.0]
        .iter()
        .map(|sir| {
            LinkPoint::new(
                format!("SIR {sir} dB"),
                mcs,
                Scenario::Aci(AciScenario {
                    sir_db: *sir,
                    channel_offset_hz: Some(15e6),
                    ..Default::default()
                }),
                receivers.clone(),
            )
            .payload(40)
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let points = bench_points();
    let trials = 4usize;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1usize];
    if cores / 2 > 1 {
        thread_counts.push(cores / 2);
    }
    if cores > 1 {
        thread_counts.push(cores);
    }
    thread_counts.dedup();

    let mut group = c.benchmark_group("campaign_engine");
    group.sample_size(3);
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("link_grid", threads),
            &threads,
            |b, &threads| {
                let config = CampaignConfig::new("engine-bench", 0xBE7C4)
                    .trials(trials)
                    .threads(threads);
                b.iter(|| {
                    let result =
                        run_link_campaign(&config, &points, &RunOptions::default()).unwrap();
                    assert_eq!(result.total_trials(), points.len() * trials);
                    result
                });
            },
        );
        // trials/sec context line for the scaling baseline.
        let config = CampaignConfig::new("engine-bench", 0xBE7C4)
            .trials(trials)
            .threads(threads);
        let result = run_link_campaign(&config, &points, &RunOptions::default()).unwrap();
        println!(
            "campaign_engine/link_grid/{threads}: {:.1} trials/sec ({} trials in {:.3}s wall)",
            result.total_trials() as f64 / result.total_elapsed_secs,
            result.total_trials(),
            result.total_elapsed_secs,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
