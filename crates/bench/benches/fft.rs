//! FFT throughput across the transform sizes used by the 802.11 / LTE numerologies
//! (Table 1): the per-symbol cost that CPRecycle multiplies by `P`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfdsp::fft::FftPlan;
use rfdsp::Complex;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(20);
    for size in [64usize, 128, 256, 512, 2048] {
        let plan = FftPlan::new(size);
        let input: Vec<Complex> = (0..size)
            .map(|t| Complex::cis(0.37 * t as f64).scale(1.0 + (t % 7) as f64 * 0.1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            let mut buf = input.clone();
            b.iter(|| {
                plan.fft_in_place(&mut buf).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
