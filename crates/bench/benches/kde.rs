//! Kernel-density-estimation cost: training (bandwidth selection) and evaluation of the
//! bivariate product kernel, as a function of the number of preamble samples
//! (`P × N_p`) — the `O(P · N_p · f)` term in the paper's complexity discussion (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfdsp::kde::{BandwidthSelector, ProductKde2d};

fn samples(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            (0.3 * (x * 12.7).sin().abs(), 3.0 * (x * 5.1).cos())
        })
        .collect()
}

fn bench_kde(c: &mut Criterion) {
    let mut group = c.benchmark_group("kde");
    group.sample_size(30);
    for n in [16usize, 32, 80] {
        let s = samples(n);
        group.bench_with_input(BenchmarkId::new("train_loo", n), &s, |b, s| {
            b.iter(|| ProductKde2d::new(s, BandwidthSelector::LeaveOneOut).unwrap());
        });
        let kde = ProductKde2d::new(&s, BandwidthSelector::Silverman).unwrap();
        group.bench_with_input(BenchmarkId::new("eval", n), &kde, |b, kde| {
            b.iter(|| kde.log_eval(0.21, -0.4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kde);
criterion_main!(benches);
