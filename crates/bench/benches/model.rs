//! Interference-estimator cost: every [`ModelBackend`] — the exact Eq. 4 kernel sum,
//! the precomputed log-likelihood grid, the parametric Gaussian — across `P`
//! (segments per preamble symbol) and `N_p` (preamble symbols), for both halves of
//! the estimator's life:
//!
//! * `query/…` — one `log_likelihood(bin, observed, candidate)` call, the operation
//!   the sphere decoder performs per candidate × per segment × per bin (the
//!   `O(P·N_p)` term the grid backend turns into an O(1) lookup);
//! * `train/…` — fitting the model from `N_p` synthetic preamble symbols (where the
//!   grid backend pays its precomputation);
//! * `update/…` — absorbing one further preamble with the incremental dirty-bin
//!   refit.
//!
//! The README "Performance" table records the measured exact-vs-grid query speedup;
//! CI runs this bench with `--json BENCH_model.json` and uploads the file as the
//! machine-readable perf-trajectory artifact.

use cprecycle::estimator::ModelBackend;
use cprecycle::segments::SymbolSegments;
use cprecycle::{CpRecycleConfig, InterferenceModel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;

const BACKENDS: [ModelBackend; 3] = [
    ModelBackend::ExactKde,
    ModelBackend::GridKde,
    ModelBackend::Gaussian,
];

/// Synthetic preamble symbols: per occupied bin, per segment, the reference value
/// plus a moderate random interference vector (a busy ACI capture).
fn preambles(engine: &OfdmEngine, p: usize, np: usize, seed: u64) -> Vec<SymbolSegments> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let reference = preamble::ltf_bins(engine.params());
    (0..np)
        .map(|_| {
            let rows: Vec<Vec<Complex>> = (0..p)
                .map(|_| {
                    reference
                        .iter()
                        .map(|r| {
                            if r.norm_sqr() == 0.0 {
                                Complex::zero()
                            } else {
                                *r + Complex::from_polar(
                                    rng.gen_range(0.0..0.8),
                                    rng.gen_range(-3.1..3.1),
                                )
                            }
                        })
                        .collect()
                })
                .collect();
            SymbolSegments::from_rows(rows)
        })
        .collect()
}

fn trained(engine: &OfdmEngine, backend: ModelBackend, p: usize, np: usize) -> InterferenceModel {
    let reference = preamble::ltf_bins(engine.params());
    InterferenceModel::train(
        engine,
        &preambles(engine, p, np, 11),
        &vec![reference; np],
        CpRecycleConfig::with_model(backend),
    )
    .expect("training on synthetic preambles succeeds")
}

fn bench_model(c: &mut Criterion) {
    let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
    let reference = preamble::ltf_bins(engine.params());
    let bin = engine.params().data_bins()[10];

    let mut group = c.benchmark_group("model");
    group.sample_size(30);

    // Query cost: the acceptance target is GridKde ≥ 5× faster than ExactKde per
    // log_likelihood call at P = 16, N_p ≥ 2.
    for (p, np) in [(4, 2), (16, 1), (16, 2), (16, 4)] {
        for backend in BACKENDS {
            let model = trained(&engine, backend, p, np);
            let obs = Complex::new(1.2, 0.3);
            let cand = Complex::new(1.0, 0.0);
            group.bench_with_input(
                BenchmarkId::new(format!("query/{}", backend.label()), format!("P{p}xNp{np}")),
                &model,
                |b, model| {
                    b.iter(|| model.log_likelihood(black_box(bin), black_box(obs), black_box(cand)))
                },
            );
        }
    }

    // Fit cost: batch training (the grid backend's precomputation lives here) and
    // the incremental dirty-bin update.
    let p = 16;
    let np = 2;
    let train_set = preambles(&engine, p, np, 11);
    let train_refs = vec![reference.clone(); np];
    let extra = preambles(&engine, p, 1, 13).remove(0);
    for backend in BACKENDS {
        let config = CpRecycleConfig::with_model(backend);
        group.bench_function(format!("train/{}/P{p}xNp{np}", backend.label()), |b| {
            b.iter(|| InterferenceModel::train(&engine, &train_set, &train_refs, config).unwrap())
        });
        let base = InterferenceModel::train(&engine, &train_set, &train_refs, config).unwrap();
        // Each iteration clones the base model (the compat harness has no
        // iter_batched), so compare `update` numbers across backends rather than
        // against `train`.
        group.bench_function(format!("update/{}/P{p}xNp{np}", backend.label()), |b| {
            b.iter(|| {
                let mut model = base.clone();
                model.update(&engine, &extra, &reference).unwrap();
                model
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
