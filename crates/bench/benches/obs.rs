//! Recorder overhead: the zero-overhead claim of `crates/obs`, measured.
//!
//! Three layers:
//! * raw recorder primitives — a `NoopRecorder` counter/stage call against the
//!   `InMemoryRecorder` equivalents (the former should be nanoseconds-free, the
//!   latter a mutex-protected map update);
//! * a full CPRecycle frame decode through the no-op path, the `decode_frame`
//!   convenience wrapper (which is the no-op path spelled differently) and the
//!   in-memory recorder — the end-to-end cost of instrumentation on the hot loop.

use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use criterion::{criterion_group, criterion_main, Criterion};
use obs::{InMemoryRecorder, NoopRecorder, Recorder, Span, StageTimer};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::FrameInfo;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let noop = NoopRecorder;
    let live = InMemoryRecorder::default();
    group.bench_function("noop_counter_and_timer", |b| {
        b.iter(|| {
            noop.counter("frames", 1);
            let timer = StageTimer::start(&noop, Span::new("decide", "Sphere"));
            timer.finish(&noop);
        });
    });
    group.bench_function("inmemory_counter_and_timer", |b| {
        b.iter(|| {
            live.counter("frames", 1);
            let timer = StageTimer::start(&live, Span::new("decide", "Sphere"));
            timer.finish(&live);
        });
    });
    group.finish();
}

fn bench_instrumented_decode(c: &mut Criterion) {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let payload = vec![0x5A; 400];
    let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
    let info = FrameInfo {
        mcs,
        psdu_len: payload.len() + 4,
    };
    let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());

    let mut group = c.benchmark_group("obs_decode");
    group.sample_size(10);
    group.bench_function("uninstrumented", |b| {
        b.iter(|| rx.decode_frame(&frame.samples, 0, Some(info)).unwrap());
    });
    group.bench_function("noop_recorder", |b| {
        b.iter(|| {
            rx.decode_frame_observed(&frame.samples, 0, Some(info), &NoopRecorder)
                .unwrap()
        });
    });
    let live = InMemoryRecorder::new(0);
    group.bench_function("inmemory_recorder", |b| {
        b.iter(|| {
            rx.decode_frame_observed(&frame.samples, 0, Some(info), &live)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_instrumented_decode);
criterion_main!(benches);
