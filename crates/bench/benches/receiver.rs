//! End-to-end frame-decoding throughput: the standard receiver versus CPRecycle at
//! different segment counts — the computational-scalability claim of the paper's §6
//! ("gracefully degrades to a standard OFDM receiver with one FFT segment").

use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, StandardReceiver};

fn bench_receiver(c: &mut Criterion) {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let payload = vec![0x5A; 400];
    let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
    let info = FrameInfo {
        mcs,
        psdu_len: payload.len() + 4,
    };

    let mut group = c.benchmark_group("frame_decode");
    group.sample_size(10);
    let standard = StandardReceiver::new(params.clone());
    group.bench_function("standard", |b| {
        b.iter(|| {
            standard
                .decode_frame(&frame.samples, 0, Some(info))
                .unwrap()
        });
    });
    for p in [1usize, 4, 8, 16] {
        let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_segments(p));
        group.bench_with_input(BenchmarkId::new("cprecycle", p), &p, |b, _| {
            b.iter(|| rx.decode_frame(&frame.samples, 0, Some(info)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_receiver);
criterion_main!(benches);
