//! Segment-extraction throughput: the sliding-DFT kernel versus the direct
//! per-segment FFT reference, across segment counts `P` — the per-symbol cost that
//! dominates the CPRecycle receiver (paper §3.1 / §6). The README's performance table
//! is filled from this bench.

use cprecycle::segments::{extract_segments_with, SegmentExtraction, SegmentScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::frame::pilot_values;
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

fn symbol_and_estimate(engine: &OfdmEngine, seed: u64) -> (Vec<Complex>, ChannelEstimate) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = Modulation::Qam16;
    let data: Vec<Complex> = (0..engine.params().num_data_subcarriers())
        .map(|_| {
            let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2)).collect();
            m.map(&bits).unwrap()
        })
        .collect();
    let symbol = engine.modulate(&data, &pilot_values(1.0)).unwrap();
    let pdp = PowerDelayProfile::exponential(4, 1.5).unwrap();
    let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
    let estimate = ChannelEstimate {
        h: chan.frequency_response(engine.params().fft_size),
    };
    (symbol, estimate)
}

fn bench_segments(c: &mut Criterion) {
    let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
    let (symbol, estimate) = symbol_and_estimate(&engine, 1);
    let mut group = c.benchmark_group("extract_segments");
    group.sample_size(20);
    let mut scratch = SegmentScratch::new();
    for p in [1usize, 4, 8, 16] {
        for (name, method) in [
            ("sliding", SegmentExtraction::Sliding),
            ("direct", SegmentExtraction::Direct),
        ] {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |b, &p| {
                b.iter(|| {
                    extract_segments_with(&engine, &symbol, &estimate, p, method, &mut scratch)
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_segments);
criterion_main!(benches);
