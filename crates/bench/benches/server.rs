//! Multi-session server throughput: one bursty capture per session, pushed through
//! [`RxServer`] across a sessions × worker-threads × chunk-size grid.
//!
//! The quantity of interest is *aggregate* ingested samples/s: every iteration
//! pushes the whole capture into every session (round-robin chunk interleaving, the
//! access-point shape the `scenarios::stations` driver models), so
//!
//! ```text
//! aggregate Msps = sessions × capture_len / median_ns × 1000
//! ```
//!
//! with `capture_len` printed at startup (the README "Performance" table records
//! the derived figures). The scaling story CI's `BENCH_server.json` tracks: at a
//! fixed session count, `t4` over `t1` shows how much of the per-session decode
//! work the pool actually parallelises; along the session axis it shows aggregate
//! throughput holding as streams multiply. The standard receiver sweeps the full
//! grid (its decode is cheap enough that scheduling overhead is visible); one
//! CPRecycle cell pins the decode-bound regime where the pool pays off most.

use cprecycle::{CpRecycleConfig, CpRecycleReceiver, RxServer, ServerConfig, SessionConfig};
use cprecycle_scenarios::stream::build_burst;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameReceiver, StandardReceiver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfdsp::Complex;

/// A bursty two-frame capture at 28 dB SNR (the equivalence suites' operating
/// point: clean enough that every frame decodes, noisy enough that detection is
/// honest work).
fn station_capture(seed: u64, frames: usize, payload_len: usize) -> Vec<Complex> {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params);
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let mut rng = StdRng::seed_from_u64(seed);
    let (_payloads, victim) =
        build_burst(&tx, mcs, payload_len, frames, (120, 400), &mut rng).unwrap();
    let power = rfdsp::power::signal_power(&victim).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(28.0);
    let mut g = rfdsp::noise::GaussianSource::new();
    let noise = g.complex_vector(&mut rng, victim.len(), noise_var);
    victim
        .iter()
        .zip(noise)
        .map(|(v, n)| Complex::new(v.re + n.re, v.im + n.im))
        .collect()
}

/// Pushes the capture into every session round-robin in `chunk`-sample pieces,
/// barriers on the pool, and drains. Returns the total event count (kept live so
/// the decode work cannot be optimised away).
fn feed_all<R>(
    server: &RxServer<R>,
    handles: &[cprecycle::SessionHandle<R>],
    capture: &[Complex],
    chunk: usize,
) -> usize
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
{
    let mut start = 0;
    while start < capture.len() {
        let end = (start + chunk).min(capture.len());
        for handle in handles {
            handle.push(&capture[start..end]).unwrap();
        }
        start = end;
    }
    server.drain();
    handles.iter().map(|h| h.drain_events().len()).sum()
}

fn bench_server(c: &mut Criterion) {
    let params = OfdmParams::ieee80211ag();
    let capture = station_capture(7, 2, 400);
    eprintln!(
        "server bench: {} samples/session/iteration (aggregate Msps = sessions x {} / median_ns x 1000)",
        capture.len(),
        capture.len()
    );

    let mut group = c.benchmark_group("server");
    group.sample_size(10);

    // Standard receiver: sessions × threads × chunk grid. Servers stand across
    // iterations (sessions return to hunting after each burst), matching a
    // long-running access point's steady state.
    for sessions in [1usize, 4, 8] {
        for threads in [1usize, 4] {
            let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
                threads,
                queue_capacity: 64,
            });
            let handles: Vec<_> = (0..sessions)
                .map(|_| {
                    server.add_session(
                        StandardReceiver::new(params.clone()),
                        SessionConfig::default(),
                    )
                })
                .collect();
            for chunk in [480usize, 4096] {
                group.bench_with_input(
                    BenchmarkId::new(format!("std/s{sessions}xt{threads}"), chunk),
                    &chunk,
                    |b, &chunk| {
                        b.iter(|| {
                            let events = feed_all(&server, &handles, &capture, chunk);
                            assert!(events >= sessions);
                            events
                        });
                    },
                );
            }
            server.shutdown();
        }
    }

    // CPRecycle: the decode-bound regime (sphere ML dominates, ~ms per frame), where
    // worker threads buy near-linear aggregate scaling. One cell keeps the smoke
    // job affordable; shorter payloads bound the per-iteration decode cost.
    let cp_capture = station_capture(11, 1, 120);
    eprintln!(
        "server bench: cprecycle cells ingest {} samples/session/iteration",
        cp_capture.len()
    );
    for threads in [1usize, 4] {
        let sessions = 4usize;
        let server: RxServer<CpRecycleReceiver> = RxServer::new(ServerConfig {
            threads,
            queue_capacity: 64,
        });
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                server.add_session(
                    CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default()),
                    SessionConfig::default(),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("cprecycle/s{sessions}xt{threads}"), 480usize),
            &480usize,
            |b, &chunk| {
                b.iter(|| {
                    let events = feed_all(&server, &handles, &cp_capture, chunk);
                    assert!(events >= sessions);
                    events
                });
            },
        );
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
