//! Multi-session server throughput: one bursty capture per session, pushed through
//! [`RxServer`] across a sessions × worker-threads × chunk-size grid.
//!
//! The quantity of interest is *aggregate* ingested samples/s: every iteration
//! pushes the whole capture into every session (round-robin chunk interleaving, the
//! access-point shape the `scenarios::stations` driver models), so
//!
//! ```text
//! aggregate Msps = sessions × capture_len / median_ns × 1000
//! ```
//!
//! with `capture_len` printed at startup (the README "Performance" table records
//! the derived figures). The scaling story CI's `BENCH_server.json` tracks: at a
//! fixed session count, `t4` over `t1` shows how much of the per-session decode
//! work the pool actually parallelises; along the session axis (up to 256
//! sessions) it shows aggregate throughput holding as streams multiply. The
//! standard receiver sweeps the full grid (its decode is cheap enough that
//! scheduling overhead is visible); one CPRecycle cell pins the decode-bound
//! regime where the pool pays off most.
//!
//! Besides the harness's `measured` records, `--json` gains two companion record
//! kinds from this bench: `samples` (per-cell ingest size, so the checker can
//! derive aggregate Msps) and `latency` (the server's aggregate push→decode
//! p50/p95/p99 from its metrics snapshot). `check_server_bench` consumes all
//! three to gate the scaling trajectory.

use cprecycle::{CpRecycleConfig, CpRecycleReceiver, RxServer, ServerConfig, SessionConfig};
use cprecycle_scenarios::stream::build_burst;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameReceiver, StandardReceiver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfdsp::Complex;
use std::io::Write;
use std::path::PathBuf;

/// The `--json <path>` argument the criterion harness also honours: this bench
/// appends its own companion records (per-cell ingest size, latency percentiles)
/// next to the harness's `measured` records, so `check_server_bench` can derive
/// aggregate Msps and gate the latency distribution from one file.
fn json_path() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn append_json(path: &Option<PathBuf>, line: &str) {
    let Some(path) = path else { return };
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = written {
        eprintln!(
            "warning: could not append bench JSON to {}: {e}",
            path.display()
        );
    }
}

/// Emits the per-cell ingest size: `samples_per_iter / median_ns × 1000` is the
/// cell's aggregate Msps.
fn record_samples(path: &Option<PathBuf>, id: &str, samples_per_iter: usize) {
    append_json(
        path,
        &format!(
            "{{\"group\":\"server\",\"id\":\"{id}\",\"mode\":\"samples\",\
             \"samples_per_iter\":{samples_per_iter}}}"
        ),
    );
}

/// Emits the push→decode latency percentiles a server accumulated over its cells
/// (from the aggregate `push_decode_p*_ns` gauges of the metrics snapshot).
fn record_latency<R>(path: &Option<PathBuf>, id: &str, server: &RxServer<R>)
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
{
    let snap = server.metrics_snapshot();
    let (Some(p50), Some(p95), Some(p99)) = (
        snap.gauge("push_decode_p50_ns"),
        snap.gauge("push_decode_p95_ns"),
        snap.gauge("push_decode_p99_ns"),
    ) else {
        eprintln!("warning: no push_decode latency gauges for {id}");
        return;
    };
    append_json(
        path,
        &format!(
            "{{\"group\":\"server\",\"id\":\"latency/{id}\",\"mode\":\"latency\",\
             \"p50_ns\":{p50},\"p95_ns\":{p95},\"p99_ns\":{p99}}}"
        ),
    );
}

/// A bursty two-frame capture at 28 dB SNR (the equivalence suites' operating
/// point: clean enough that every frame decodes, noisy enough that detection is
/// honest work).
fn station_capture(seed: u64, frames: usize, payload_len: usize) -> Vec<Complex> {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params);
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let mut rng = StdRng::seed_from_u64(seed);
    let (_payloads, victim) =
        build_burst(&tx, mcs, payload_len, frames, (120, 400), &mut rng).unwrap();
    let power = rfdsp::power::signal_power(&victim).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(28.0);
    let mut g = rfdsp::noise::GaussianSource::new();
    let noise = g.complex_vector(&mut rng, victim.len(), noise_var);
    victim
        .iter()
        .zip(noise)
        .map(|(v, n)| Complex::new(v.re + n.re, v.im + n.im))
        .collect()
}

/// Pushes the capture into every session round-robin in `chunk`-sample pieces,
/// barriers on the pool, and drains. Returns the total event count (kept live so
/// the decode work cannot be optimised away).
fn feed_all<R>(
    server: &RxServer<R>,
    handles: &[cprecycle::SessionHandle<R>],
    capture: &[Complex],
    chunk: usize,
) -> usize
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
{
    let mut start = 0;
    while start < capture.len() {
        let end = (start + chunk).min(capture.len());
        for handle in handles {
            handle.push(&capture[start..end]).unwrap();
        }
        start = end;
    }
    server.drain();
    handles.iter().map(|h| h.drain_events().len()).sum()
}

fn bench_server(c: &mut Criterion) {
    let params = OfdmParams::ieee80211ag();
    let capture = station_capture(7, 2, 400);
    eprintln!(
        "server bench: {} samples/session/iteration (aggregate Msps = sessions x {} / median_ns x 1000)",
        capture.len(),
        capture.len()
    );

    let mut group = c.benchmark_group("server");
    group.sample_size(10);

    // Standard receiver: sessions × threads × chunk grid. Servers stand across
    // iterations (sessions return to hunting after each burst), matching a
    // long-running access point's steady state. The high-session cells (64, 256)
    // run the realtime chunk size only — they exist to show aggregate throughput
    // holding as streams multiply, not to re-sweep the chunk axis.
    let json = json_path();
    for sessions in [1usize, 4, 8, 64, 256] {
        let chunks: &[usize] = if sessions >= 64 { &[480] } else { &[480, 4096] };
        for threads in [1usize, 4] {
            let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
                threads,
                queue_capacity: 64,
                ..Default::default()
            });
            let handles: Vec<_> = (0..sessions)
                .map(|_| {
                    server.add_session(
                        StandardReceiver::new(params.clone()),
                        SessionConfig::default(),
                    )
                })
                .collect();
            for &chunk in chunks {
                group.bench_with_input(
                    BenchmarkId::new(format!("std/s{sessions}xt{threads}"), chunk),
                    &chunk,
                    |b, &chunk| {
                        b.iter(|| {
                            let events = feed_all(&server, &handles, &capture, chunk);
                            assert!(events >= sessions);
                            events
                        });
                    },
                );
                record_samples(
                    &json,
                    &format!("std/s{sessions}xt{threads}/{chunk}"),
                    sessions * capture.len(),
                );
            }
            record_latency(&json, &format!("std/s{sessions}xt{threads}"), &server);
            server.shutdown();
        }
    }

    // CPRecycle: the decode-bound regime (sphere ML dominates, ~ms per frame), where
    // worker threads buy near-linear aggregate scaling. One cell keeps the smoke
    // job affordable; shorter payloads bound the per-iteration decode cost.
    let cp_capture = station_capture(11, 1, 120);
    eprintln!(
        "server bench: cprecycle cells ingest {} samples/session/iteration",
        cp_capture.len()
    );
    for threads in [1usize, 4] {
        let sessions = 4usize;
        let server: RxServer<CpRecycleReceiver> = RxServer::new(ServerConfig {
            threads,
            queue_capacity: 64,
            ..Default::default()
        });
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                server.add_session(
                    CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default()),
                    SessionConfig::default(),
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new(format!("cprecycle/s{sessions}xt{threads}"), 480usize),
            &480usize,
            |b, &chunk| {
                b.iter(|| {
                    let events = feed_all(&server, &handles, &cp_capture, chunk);
                    assert!(events >= sessions);
                    events
                });
            },
        );
        record_samples(
            &json,
            &format!("cprecycle/s{sessions}xt{threads}/480"),
            sessions * cp_capture.len(),
        );
        record_latency(&json, &format!("cprecycle/s{sessions}xt{threads}"), &server);
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
