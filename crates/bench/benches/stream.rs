//! Streaming-session throughput: one frame per capture, decoded through
//! [`RxSession`] at several chunk sizes versus the batch path (whole-buffer
//! `Synchronizer::detect` + `decode_frame`).
//!
//! The quantity of interest is samples/s of ingested stream (the capture length over
//! the measured time — the README "Performance" table derives Msamples/s). The
//! acceptance bar for the session layer is ≤ 5 % overhead versus batch at
//! whole-capture chunks; tiny chunks price the state-machine bookkeeping.

use cprecycle::session::RxSession;
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::StandardReceiver;
use ofdmphy::sync::Synchronizer;
use rand::SeedableRng;
use rfdsp::Complex;

fn capture() -> Vec<Complex> {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params);
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let frame = tx.build_frame(&vec![0x5A; 400], mcs, 0x5D).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut g = rfdsp::noise::GaussianSource::new();
    let power = rfdsp::power::signal_power(&frame.samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(30.0);
    let mut capture = g.complex_vector(&mut rng, 300, noise_var);
    capture.extend(frame.samples);
    capture.extend(g.complex_vector(&mut rng, 300, noise_var));
    capture
}

fn bench_stream(c: &mut Criterion) {
    let params = OfdmParams::ieee80211ag();
    let capture = capture();

    let mut group = c.benchmark_group("stream");
    group.sample_size(10);

    // Batch reference: whole-buffer detect + decode at the detected start.
    let sync = Synchronizer::new(params.clone());
    let batch_rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
    group.bench_function("batch/cprecycle", |b| {
        b.iter(|| {
            let s = sync.detect(&capture).unwrap().unwrap();
            batch_rx
                .decode_frame(&capture, s.frame_start, None)
                .unwrap()
        });
    });
    let batch_std = StandardReceiver::new(params.clone());
    group.bench_function("batch/standard", |b| {
        b.iter(|| {
            let s = sync.detect(&capture).unwrap().unwrap();
            batch_std
                .decode_frame(&capture, s.frame_start, None)
                .unwrap()
        });
    });

    // Session: the same capture pushed as one whole chunk or smaller pieces. The
    // session is reused across iterations (it returns to hunting after each frame),
    // matching a long-running receiver's steady state.
    for chunk in [capture.len(), 4096, 480, 64] {
        let label = if chunk == capture.len() {
            "whole".to_string()
        } else {
            chunk.to_string()
        };
        let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        group.bench_with_input(
            BenchmarkId::new("session/cprecycle", &label),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    for piece in capture.chunks(chunk) {
                        session.push(piece).unwrap();
                    }
                    let events = session.drain_events();
                    assert!(!events.is_empty());
                    events
                });
            },
        );
        let rx = StandardReceiver::new(params.clone());
        let mut session = RxSession::new(rx);
        group.bench_with_input(
            BenchmarkId::new("session/standard", &label),
            &chunk,
            |b, &chunk| {
                b.iter(|| {
                    for piece in capture.chunks(chunk) {
                        session.push(piece).unwrap();
                    }
                    let events = session.drain_events();
                    assert!(!events.is_empty());
                    events
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
