//! The real-time throughput budget: decoded **Msps-per-core** for every receiver
//! configuration (standard, CPRecycle P ∈ {4, 8, 16} × {ExactKde, GridKde, Gaussian}).
//!
//! 802.11a/g streams 20 Msamples/s at 20 MHz; a configuration decodes in real time on
//! one core exactly when its Msps-per-core is at or above that line. This bench turns
//! the PR 8 vectorization work into that number and emits it machine-readably so every
//! future PR lands on the same trajectory.
//!
//! Flags (matching the compat Criterion harness so the CI smoke job drives it too):
//! `--test` runs each configuration once, untimed; `--json <path>` appends one
//! JSON-Lines record per configuration with the stable schema
//! `{"config": …, "msps_per_core": …, "ns_per_sample": …}`.
//!
//! Local recipe: `cargo bench -p cprecycle-bench --bench throughput -- --json BENCH_throughput.json`

use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

use cprecycle::estimator::ModelBackend;
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, StandardReceiver};

/// 802.11a/g sample rate in Msamples/s — the real-time line.
const REAL_TIME_MSPS: f64 = 20.0;

/// Times one decode closure: warm-up, then five samples of enough iterations to fill
/// ~20 ms each, reporting the median per-iteration nanoseconds.
fn measure<F: FnMut()>(mut decode: F) -> f64 {
    decode();
    let probe = Instant::now();
    decode();
    let once_ns = probe.elapsed().as_nanos().max(1) as f64;
    let iters = ((20e6 / once_ns) as usize).clamp(1, 10_000);
    let mut samples = [0.0f64; 5];
    for slot in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            decode();
        }
        *slot = start.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
    let payload = vec![0x5A; 400];
    let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
    let info = FrameInfo {
        mcs,
        psdu_len: payload.len() + 4,
    };
    let frame_samples = frame.samples.len() as f64;

    let mut configs: Vec<(String, Box<dyn FnMut()>)> = Vec::new();
    let standard = StandardReceiver::new(params.clone());
    {
        let samples = frame.samples.clone();
        configs.push((
            "standard".into(),
            Box::new(move || {
                black_box(standard.decode_frame(&samples, 0, Some(info)).unwrap());
            }),
        ));
    }
    for p in [4usize, 8, 16] {
        for (tag, backend) in [
            ("exact", ModelBackend::ExactKde),
            ("grid", ModelBackend::GridKde),
            ("gauss", ModelBackend::Gaussian),
        ] {
            let config = CpRecycleConfig::builder()
                .num_segments(p)
                .model(backend)
                .build();
            let rx = CpRecycleReceiver::new(params.clone(), config);
            let samples = frame.samples.clone();
            configs.push((
                format!("cprecycle_p{p}_{tag}"),
                Box::new(move || {
                    black_box(rx.decode_frame(&samples, 0, Some(info)).unwrap());
                }),
            ));
        }
    }

    let mut records = Vec::new();
    for (label, mut decode) in configs {
        if test_mode {
            decode();
            println!("throughput/{label}: test passed (1 iteration, --test)");
            continue;
        }
        let ns_per_frame = measure(&mut decode);
        let ns_per_sample = ns_per_frame / frame_samples;
        let msps_per_core = 1e3 / ns_per_sample;
        let verdict = if msps_per_core >= REAL_TIME_MSPS {
            "real-time"
        } else {
            "below real-time"
        };
        println!(
            "throughput/{label}: {msps_per_core:.3} Msps/core ({ns_per_sample:.2} ns/sample, {verdict} vs {REAL_TIME_MSPS} Msps)"
        );
        records.push((label, msps_per_core, ns_per_sample));
    }

    if let Some(path) = json_path {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        if test_mode {
            // Mirror the compat-Criterion convention: smoke mode records presence only.
            writeln!(file, "{{\"config\":\"throughput\",\"mode\":\"test\"}}").unwrap();
        }
        for (label, msps, ns) in &records {
            writeln!(
                file,
                "{{\"config\":\"{label}\",\"msps_per_core\":{msps},\"ns_per_sample\":{ns}}}"
            )
            .unwrap();
        }
    }
}
