//! Viterbi decoding throughput per code rate — the bit-pipeline cost shared by every
//! receiver in the comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdmphy::convcode::{encode, CodeRate};
use ofdmphy::viterbi::ViterbiDecoder;
use rand::{Rng, SeedableRng};

fn bench_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("viterbi");
    group.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut data: Vec<u8> = (0..1200).map(|_| rng.gen_range(0..2)).collect();
    data.extend_from_slice(&[0; 6]);
    let decoder = ViterbiDecoder::new();
    for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
        let coded = encode(&data, rate).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(rate.name()),
            &coded,
            |b, coded| {
                b.iter(|| decoder.decode(coded, rate).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_viterbi);
criterion_main!(benches);
