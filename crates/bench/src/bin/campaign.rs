//! `campaign` — run, resume and inspect Monte-Carlo campaigns from the command line.
//!
//! ```text
//! campaign list                         # named grids (the figure campaigns)
//! campaign run fig8 --out fig8.json     # run with incremental checkpointing
//! campaign run fig8 --smoke --trials 8  # coarse grid, 8 trials/point
//! campaign resume fig8.json             # finish a half-done campaign
//! campaign inspect fig8.json            # print the checkpoint as a report
//! campaign replay fig8 3 17             # re-run trial 17 of grid point 3 alone
//! ```
//!
//! `run` executes the named figure grid through `cprecycle-engine`, writing the
//! checkpoint after every completed point, so a killed run loses at most one point of
//! work. `resume` reloads the checkpoint, reruns only the missing points (the seed
//! tree makes the result bit-identical to an uninterrupted run) and rewrites the file.

use cprecycle_engine::{
    campaign_snapshot, load_campaign, report, save_campaign, CampaignConfig, CampaignPoint,
    ProgressOptions, RunOptions,
};
use cprecycle_scenarios::figures::{figure_grid, FigureScale, CAMPAIGN_FIGURES};
use cprecycle_scenarios::link::{replay_link_trial, run_link_trial, LinkWorker};
use obs::{InMemoryRecorder, Recorder};
use std::path::PathBuf;
use std::process::exit;

struct Options {
    smoke: bool,
    json: bool,
    quiet: bool,
    trials: Option<usize>,
    threads: Option<usize>,
    seed: Option<u64>,
    out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    positional: Vec<String>,
}

fn parse_args() -> Options {
    let mut options = Options {
        smoke: false,
        json: false,
        quiet: false,
        trials: None,
        threads: None,
        seed: None,
        out: None,
        metrics: None,
        positional: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--json" => options.json = true,
            "--quiet" => options.quiet = true,
            "--trials" => options.trials = Some(parse_num(&take("--trials"))),
            "--threads" => options.threads = Some(parse_num(&take("--threads"))),
            "--seed" => options.seed = Some(parse_num(&take("--seed")) as u64),
            "--out" => options.out = Some(PathBuf::from(take("--out"))),
            "--metrics" => options.metrics = Some(PathBuf::from(take("--metrics"))),
            "--help" | "-h" => {
                usage();
                exit(0);
            }
            other => options.positional.push(other.to_string()),
        }
    }
    options
}

fn parse_num(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid number `{text}`");
        exit(2);
    })
}

fn usage() {
    eprintln!(
        "usage: campaign <command> [options]\n\
         \n\
         commands:\n\
         \x20 list                       list the named campaign grids\n\
         \x20 run <grid>                 run a named grid through the engine\n\
         \x20 resume <checkpoint.json>   finish an interrupted run (grid inferred from the name)\n\
         \x20 inspect <checkpoint.json>  print a checkpoint as a report\n\
         \x20 replay <grid> <point> <trial>  re-run one trial in isolation\n\
         \n\
         options:\n\
         \x20 --smoke          coarse grid + small trial count (default: paper scale)\n\
         \x20 --json           JSON output instead of a text table\n\
         \x20 --quiet          suppress the periodic progress line on stderr\n\
         \x20 --trials N       trials per grid point (default: figure scale)\n\
         \x20 --threads N      worker threads (default: all cores)\n\
         \x20 --seed S         master seed (default: the figure seed)\n\
         \x20 --out FILE       checkpoint file (default: campaign-<grid>.json for run)\n\
         \x20 --metrics FILE   also write a metrics snapshot (stage timing, trial\n\
         \x20                  throughput, worker gauges) as cpjson"
    );
}

fn scale_for(options: &Options) -> FigureScale {
    let mut scale = if options.smoke {
        FigureScale::smoke()
    } else {
        FigureScale::full()
    };
    if let Some(seed) = options.seed {
        scale.seed = seed;
    }
    if let Some(trials) = options.trials {
        scale.packets = trials;
    }
    scale
}

fn config_for(name: &str, scale: &FigureScale, options: &Options) -> CampaignConfig {
    scale.campaign(name).threads(options.threads.unwrap_or(0))
}

fn grid_or_exit(name: &str, scale: &FigureScale) -> Vec<cprecycle_scenarios::link::LinkPoint> {
    figure_grid(name, scale).unwrap_or_else(|| {
        eprintln!(
            "unknown grid `{name}`; available: {}",
            CAMPAIGN_FIGURES.join(", ")
        );
        exit(2);
    })
}

fn emit(result: &cprecycle_engine::CampaignResult, json: bool) {
    if json {
        println!("{}", report::render_json(result));
    } else {
        print!("{}", report::render_text(result));
    }
}

fn run_with_checkpoints(
    name: &str,
    options: &Options,
    resume_from: Option<cprecycle_engine::CampaignResult>,
    out: PathBuf,
) {
    let scale = scale_for(options);
    let config = config_for(name, &scale, options);
    let sink_path = out.clone();
    let sink = move |snapshot: &cprecycle_engine::CampaignResult| {
        if let Err(e) = save_campaign(snapshot, &sink_path) {
            eprintln!("warning: checkpoint write failed: {e}");
        }
    };
    // One recorder feeds the whole run: the executor's per-trial spans and worker
    // gauges plus (for link grids) the receive chain's per-stage decode timing.
    let recorder = options
        .metrics
        .as_ref()
        .map(|_| InMemoryRecorder::default());
    let run_options = RunOptions {
        resume_from: resume_from.as_ref(),
        on_point_complete: Some(&sink),
        progress: (!options.quiet).then(ProgressOptions::default),
        recorder: recorder.as_ref().map(|r| r as &(dyn Recorder + Sync)),
    };
    // fig13 is a neighbor-survey campaign (trials = building realizations) rather than
    // a packet-level link grid; every other name resolves through `figure_grid`.
    let outcome = if name == "fig13" {
        cprecycle_scenarios::neighbors::run_neighbor_campaign(
            &config,
            &cprecycle_scenarios::neighbors::BuildingModel::default(),
            &run_options,
        )
    } else {
        let points = grid_or_exit(name, &scale);
        cprecycle_scenarios::link::run_link_campaign(&config, &points, &run_options)
    };
    match outcome {
        Ok(result) => {
            if let Err(e) = save_campaign(&result, &out) {
                eprintln!("warning: final checkpoint write failed: {e}");
            }
            emit(&result, options.json);
            eprintln!("checkpoint written to {}", out.display());
            if let Some(path) = &options.metrics {
                let snapshot =
                    campaign_snapshot(&result, recorder.as_ref().map(|r| r as &dyn Recorder));
                match std::fs::write(path, snapshot.to_json_string()) {
                    Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
                    Err(e) => eprintln!("warning: metrics write failed: {e}"),
                }
            }
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            exit(1);
        }
    }
}

fn main() {
    let options = parse_args();
    let Some(command) = options.positional.first().cloned() else {
        usage();
        exit(2);
    };
    match command.as_str() {
        "list" => {
            println!("named campaign grids (run with `campaign run <name>`):");
            let scale = scale_for(&options);
            for name in CAMPAIGN_FIGURES {
                let grid = figure_grid(name, &scale).expect("registered grid");
                let arms: usize = grid.iter().map(|p| p.receivers.len()).sum();
                // The decoder set of the grid (deduplicated arm labels): the decision
                // stage is part of every point key, so this names exactly what the
                // campaign sweeps.
                let mut decoders: Vec<String> = Vec::new();
                for point in &grid {
                    for receiver in &point.receivers {
                        let label = receiver.label();
                        if !decoders.contains(&label) {
                            decoders.push(label);
                        }
                    }
                }
                println!(
                    "  {name:<14} {:>3} points, {arms:>3} receiver arms, {} trials/point at this scale",
                    grid.len(),
                    scale.packets,
                );
                println!("  {:<14} decoders: {}", "", decoders.join(" | "));
            }
            println!(
                "  {:<14} {:>3} point,    2 receiver arms (trials = building realizations)",
                "fig13", 1
            );
        }
        "run" => {
            let Some(name) = options.positional.get(1) else {
                eprintln!("run requires a grid name");
                exit(2);
            };
            let out = options
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("campaign-{name}.json")));
            run_with_checkpoints(name, &options, None, out);
        }
        "resume" => {
            let Some(path) = options.positional.get(1) else {
                eprintln!("resume requires a checkpoint path");
                exit(2);
            };
            let path = PathBuf::from(path);
            let prior = match load_campaign(&path) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot load checkpoint: {e}");
                    exit(1);
                }
            };
            let name = prior.name.clone();
            let done = prior.points.iter().filter(|p| p.complete).count();
            eprintln!(
                "resuming campaign `{name}`: {done}/{} points already complete",
                prior.points.len()
            );
            // The checkpoint records the master seed and trial count it was produced
            // with; reuse them so recorded points stay valid.
            let mut options = options;
            options.seed = Some(prior.master_seed);
            options.trials = Some(prior.trials_per_point);
            // The grid scale is not recorded in the checkpoint, and a scale mismatch
            // means no point key matches — the run would silently recompute everything.
            // Detect which scale the recorded keys came from and resume with it.
            if !options.smoke && name != "fig13" {
                let matches = |scale: &FigureScale| {
                    let grid = grid_or_exit(&name, scale);
                    prior
                        .points
                        .iter()
                        .filter(|p| p.complete && grid.iter().any(|g| g.key() == p.key))
                        .count()
                };
                let full_scale = scale_for(&options);
                let mut smoke_scale = FigureScale::smoke();
                smoke_scale.seed = full_scale.seed;
                smoke_scale.packets = full_scale.packets;
                if done > 0 && matches(&full_scale) == 0 && matches(&smoke_scale) > 0 {
                    eprintln!(
                        "note: recorded points match the --smoke grid, not the full grid; \
                         resuming at smoke scale"
                    );
                    options.smoke = true;
                }
            }
            run_with_checkpoints(&name, &options, Some(prior), path);
        }
        "inspect" => {
            let Some(path) = options.positional.get(1) else {
                eprintln!("inspect requires a checkpoint path");
                exit(2);
            };
            match load_campaign(&PathBuf::from(path)) {
                Ok(result) => emit(&result, options.json),
                Err(e) => {
                    eprintln!("cannot load checkpoint: {e}");
                    exit(1);
                }
            }
        }
        "replay" => {
            let (Some(name), Some(point_idx), Some(trial_idx)) = (
                options.positional.get(1),
                options.positional.get(2),
                options.positional.get(3),
            ) else {
                eprintln!("replay requires: <grid> <point index> <trial index>");
                exit(2);
            };
            let scale = scale_for(&options);
            let points = grid_or_exit(name, &scale);
            let point_idx = parse_num(point_idx);
            let trial_idx = parse_num(trial_idx);
            let Some(point) = points.get(point_idx) else {
                eprintln!(
                    "point index {point_idx} out of range (grid has {} points)",
                    points.len()
                );
                exit(2);
            };
            println!(
                "replaying trial {trial_idx} of point {point_idx}: {}",
                point.label
            );
            println!("  key: {}", point.key());
            match replay_link_trial(scale.seed, point, trial_idx) {
                Ok(record) => {
                    for (arm, outcome) in point.arm_labels().iter().zip(&record.arms) {
                        println!(
                            "  {arm:<24} success={} symbol_error_rate={:.4}",
                            outcome.success, outcome.metric
                        );
                    }
                    // Show the replay really is self-contained: a second execution from
                    // the same seed tree agrees exactly.
                    let mut worker = LinkWorker::new();
                    let mut rng =
                        cprecycle_engine::trial_rng(scale.seed, &point.key(), trial_idx as u64);
                    let again = run_link_trial(&mut worker, point, &mut rng)
                        .expect("replay is deterministic");
                    assert_eq!(again, record);
                    println!("  (verified: second replay is bit-identical)");
                }
                Err(e) => {
                    eprintln!("replay failed: {e}");
                    exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
            exit(2);
        }
    }
}
