//! CI trajectory gate for the `server` bench: compares a fresh `BENCH_server.json`
//! against the committed baseline and fails (exit code 1) when the multi-session
//! scaling story regresses beyond the tolerance, or when the latency records the
//! bench is supposed to emit are missing or malformed.
//!
//! ```text
//! check_server_bench <current.json> <baseline.json> [--tolerance 0.25] [--absolute]
//! ```
//!
//! Both files are the server bench's JSON-Lines output: `measured` records from
//! the criterion harness (`median_ns` per iteration), plus the bench's own
//! `samples` records (ingest size per iteration, so Msps is derivable) and
//! `latency` records (aggregate push→decode p50/p95/p99). The gate:
//!
//! * derives **aggregate Msps per cell** (`samples_per_iter / median_ns × 1000`)
//!   and, by default, normalises every cell by the same run's `std/s1xt1/480`
//!   cell before comparing — CI runners vary in raw speed run to run, but the
//!   *shape* of the scaling surface (how 64- and 256-session cells hold up
//!   against the single-session cell) is hardware-independent enough to gate.
//!   Pass `--absolute` on a pinned benchmarking host.
//! * requires every baseline cell to exist in the current run;
//! * requires at least one `latency` record and checks `p50 ≤ p95 ≤ p99 > 0` for
//!   each (the percentiles themselves are not gated — push→decode latency under
//!   a saturating feeder measures queue depth, not server quality).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The within-run normaliser cell: single session, one worker, realtime chunks.
const NORM_CELL: &str = "std/s1xt1/480";

struct BenchFile {
    /// cell id → aggregate Msps.
    msps: BTreeMap<String, f64>,
    /// latency record id → (p50, p95, p99) ns.
    latency: BTreeMap<String, (f64, f64, f64)>,
}

/// Reads one JSON-Lines bench file, joining `measured` records with their
/// `samples` companions into Msps per cell.
fn load(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut median_ns: BTreeMap<String, f64> = BTreeMap::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    let mut latency = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value = cpjson::Value::parse(line)
            .map_err(|e| format!("{path}: bad JSON line {line:?}: {e}"))?;
        let id: String = value
            .field_as("id")
            .map_err(|e| format!("{path}: record without id: {e}"))?;
        let mode: String = value
            .field_as("mode")
            .map_err(|e| format!("{path}: record without mode: {e}"))?;
        let num = |key: &str| -> Result<f64, String> {
            value
                .field_as(key)
                .map_err(|e| format!("{path}: {id}: bad {key}: {e}"))
        };
        match mode.as_str() {
            "measured" => {
                let v = num("median_ns")?;
                median_ns.insert(id, v);
            }
            "samples" => {
                let v = num("samples_per_iter")?;
                samples.insert(id, v);
            }
            "latency" => {
                let v = (num("p50_ns")?, num("p95_ns")?, num("p99_ns")?);
                latency.insert(id, v);
            }
            // `test` smoke markers and future record kinds pass through.
            _ => {}
        }
    }
    let mut msps = BTreeMap::new();
    for (id, ns) in &median_ns {
        if let Some(n) = samples.get(id) {
            if *ns > 0.0 {
                msps.insert(id.clone(), n / ns * 1000.0);
            }
        }
    }
    if msps.is_empty() {
        return Err(format!(
            "{path}: no usable cells (need matching measured + samples records)"
        ));
    }
    Ok(BenchFile { msps, latency })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let absolute = args.iter().any(|a| a == "--absolute");
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.25);
    let mut files = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--tolerance")
        })
        .map(|(_, a)| a.clone());
    let (current_path, baseline_path) = match (files.next(), files.next()) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!(
                "usage: check_server_bench <current.json> <baseline.json> \
                 [--tolerance 0.25] [--absolute]"
            );
            return ExitCode::FAILURE;
        }
    };

    let (current, baseline) = match (load(&current_path), load(&baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let norm = |file: &BenchFile, path: &str| -> Result<f64, String> {
        if absolute {
            return Ok(1.0);
        }
        file.msps
            .get(NORM_CELL)
            .copied()
            .filter(|m| *m > 0.0)
            .ok_or_else(|| format!("{path}: normalised mode needs a positive {NORM_CELL} cell"))
    };
    let (cur_norm, base_norm) = match (
        norm(&current, &current_path),
        norm(&baseline, &baseline_path),
    ) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mode = if absolute {
        "absolute aggregate Msps"
    } else {
        "relative to std/s1xt1/480"
    };
    println!(
        "server scaling gate ({mode}, tolerance {:.0}%):",
        tolerance * 100.0
    );
    let mut failed = false;
    for (cell, &base_msps) in &baseline.msps {
        let base = base_msps / base_norm;
        match current.msps.get(cell) {
            None => {
                println!("  {cell}: MISSING from current run (baseline {base:.4})");
                failed = true;
            }
            Some(&cur_msps) => {
                let cur = cur_msps / cur_norm;
                let delta = cur / base - 1.0;
                let verdict = if delta < -tolerance {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "  {cell}: {cur:.4} vs baseline {base:.4} ({delta:+.1}%) {verdict}",
                    delta = delta * 100.0
                );
            }
        }
    }

    // Latency records: present and internally consistent. The absolute values are
    // runner-dependent, so only the distribution's shape is checked.
    if current.latency.is_empty() {
        println!("  latency: NO latency records in current run");
        failed = true;
    }
    for (id, &(p50, p95, p99)) in &current.latency {
        if p50 <= 0.0 || p50 > p95 || p95 > p99 {
            println!("  {id}: malformed percentiles p50={p50} p95={p95} p99={p99}");
            failed = true;
        } else {
            println!("  {id}: p50={p50:.0}ns p95={p95:.0}ns p99={p99:.0}ns ok");
        }
    }

    if failed {
        eprintln!("server bench gate failed (tolerance {tolerance})");
        ExitCode::FAILURE
    } else {
        println!("server bench gate passed");
        ExitCode::SUCCESS
    }
}
