//! CI trajectory gate for the `throughput` bench: compares a fresh
//! `BENCH_throughput.json` against the committed baseline and fails (exit code 1)
//! when any receiver configuration regresses by more than the tolerance.
//!
//! ```text
//! check_throughput <current.json> <baseline.json> [--tolerance 0.15] [--absolute]
//! ```
//!
//! Both files are the bench's JSON-Lines output
//! (`{"config": …, "msps_per_core": …, "ns_per_sample": …}`). By default each
//! configuration's throughput is **normalised by the `standard` receiver's
//! throughput from the same run** before comparison, so the gate tracks the
//! CPRecycle-vs-standard cost trajectory rather than raw runner speed — CI hardware
//! varies run to run, and an absolute gate would fire on every slow runner. Pass
//! `--absolute` to compare raw Msps-per-core instead (the right mode on a pinned
//! benchmarking host). A configuration present in the baseline but missing from the
//! current run also fails the gate.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Reads the JSON-Lines bench output into `config → msps_per_core`, ignoring
/// records without a throughput figure (e.g. the `--test` smoke marker).
fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut map = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value = cpjson::Value::parse(line)
            .map_err(|e| format!("{path}: bad JSON line {line:?}: {e}"))?;
        let config: String = value
            .field_as("config")
            .map_err(|e| format!("{path}: record without config: {e}"))?;
        if let Some(msps) = value.get("msps_per_core") {
            let msps: f64 = cpjson::FromJson::from_json(msps)
                .map_err(|e| format!("{path}: {config}: bad msps_per_core: {e}"))?;
            map.insert(config, msps);
        }
    }
    if map.is_empty() {
        return Err(format!("{path}: no throughput records"));
    }
    Ok(map)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let absolute = args.iter().any(|a| a == "--absolute");
    let tolerance: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .map(|t| t.parse().expect("--tolerance takes a number"))
        .unwrap_or(0.15);
    let mut files = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--tolerance")
        })
        .map(|(_, a)| a.clone());
    let (current_path, baseline_path) = match (files.next(), files.next()) {
        (Some(c), Some(b)) => (c, b),
        _ => {
            eprintln!(
                "usage: check_throughput <current.json> <baseline.json> [--tolerance 0.15] [--absolute]"
            );
            return ExitCode::FAILURE;
        }
    };

    let (current, baseline) = match (load(&current_path), load(&baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    // In normalised mode every figure becomes a ratio to the same run's standard
    // receiver; the standard row itself then trivially passes and only documents
    // the normaliser.
    let norm = |map: &BTreeMap<String, f64>| -> Result<f64, String> {
        if absolute {
            return Ok(1.0);
        }
        map.get("standard")
            .copied()
            .filter(|m| *m > 0.0)
            .ok_or_else(|| "normalised mode needs a positive 'standard' record".to_string())
    };
    let (cur_norm, base_norm) = match (norm(&current), norm(&baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mode = if absolute {
        "absolute Msps/core"
    } else {
        "relative to the standard receiver"
    };
    println!(
        "throughput trajectory gate ({mode}, tolerance {:.0}%):",
        tolerance * 100.0
    );
    let mut failed = false;
    for (config, &base_msps) in &baseline {
        let base = base_msps / base_norm;
        match current.get(config) {
            None => {
                println!("  {config}: MISSING from current run (baseline {base:.4})");
                failed = true;
            }
            Some(&cur_msps) => {
                let cur = cur_msps / cur_norm;
                let delta = cur / base - 1.0;
                let ok = cur >= base * (1.0 - tolerance);
                println!(
                    "  {config}: baseline {base:.4}  current {cur:.4}  ({:+.1}%)  {}",
                    delta * 100.0,
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
        }
    }
    for config in current.keys().filter(|c| !baseline.contains_key(*c)) {
        println!(
            "  {config}: new configuration (no baseline) — record it on the next baseline refresh"
        );
    }
    if failed {
        eprintln!("throughput regressed more than {:.0}% — investigate or refresh the baseline deliberately", tolerance * 100.0);
        return ExitCode::FAILURE;
    }
    println!("throughput trajectory ok");
    ExitCode::SUCCESS
}
