//! Regenerates the decoder-comparison sweep: every subcarrier-decision stage
//! (Standard / Naive / Oracle / Sphere) vs SIR as one engine campaign. Pass `--smoke`
//! for a fast coarse run, `--json` for JSON output.

fn main() {
    cprecycle_bench::run_figure(cprecycle_scenarios::figures::decoder_comparison);
}
