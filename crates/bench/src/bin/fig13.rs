//! Regenerates Figure 13 of the paper. Pass `--smoke` for a fast coarse run, `--json` for JSON output.

fn main() {
    let cli = cprecycle_bench::FigureCli::from_args();
    let result = cprecycle_scenarios::figures::fig13(&cli.scale());
    cli.emit(&result);
}
