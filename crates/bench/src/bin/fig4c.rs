//! Regenerates Figure 4c of the paper. Pass `--smoke` for a fast coarse run, `--json` for JSON output.

fn main() {
    cprecycle_bench::run_figure(cprecycle_scenarios::figures::fig4c);
}
