//! Regenerates Figure 6a of the paper. Pass `--smoke` for a fast coarse run, `--json` for JSON output.

fn main() {
    let cli = cprecycle_bench::FigureCli::from_args();
    let result = cprecycle_scenarios::figures::fig6a();
    cli.emit(&result);
}
