//! Regenerates the streaming-sessions comparison (per-frame and aggregate PSR vs SIR
//! for bursty traffic through `RxSession`s). Pass `--smoke` for a fast coarse run,
//! `--json` for JSON output.

fn main() {
    cprecycle_bench::run_figure(cprecycle_scenarios::stream::fig_stream);
}
