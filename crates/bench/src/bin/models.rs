//! Regenerates the interference-estimator sweep: every model backend (exact KDE /
//! precomputed grid / parametric Gaussian) plus the standard receiver vs SIR as one
//! engine campaign. Pass `--smoke` for a fast coarse run, `--json` for JSON output.

fn main() {
    cprecycle_bench::run_figure(cprecycle_scenarios::figures::model_comparison);
}
