//! Regenerates Table 1 of the paper. Pass `--smoke` for a fast coarse run, `--json` for JSON output.

fn main() {
    let cli = cprecycle_bench::FigureCli::from_args();
    let result = cprecycle_scenarios::figures::table1();
    cli.emit(&result);
}
