//! Shared plumbing for the figure-regeneration binaries and Criterion benches.
//!
//! Every binary in this crate regenerates one table or figure of the paper by calling
//! the corresponding driver in `cprecycle-scenarios` and printing the result as an
//! aligned text table (pass `--json` for machine-readable output). Pass `--smoke` to
//! run a fast, coarse version of the experiment; the default is the full scale used to
//! fill in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use cprecycle_scenarios::figures::FigureScale;
use cprecycle_scenarios::report::ExperimentResult;
use cprecycle_scenarios::telemetry;
use std::path::PathBuf;

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FigureCli {
    /// Run the coarse/fast version of the experiment.
    pub smoke: bool,
    /// Emit JSON instead of a text table.
    pub json: bool,
    /// Also write a metrics snapshot (campaign stage timing, trial throughput) to
    /// this path as cpjson.
    pub metrics: Option<PathBuf>,
}

impl FigureCli {
    /// Parses the options from `std::env::args` (unknown arguments are ignored so the
    /// binaries stay forgiving when driven from scripts).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let metrics = args
            .iter()
            .position(|a| a == "--metrics")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        FigureCli {
            smoke: args.iter().any(|a| a == "--smoke"),
            json: args.iter().any(|a| a == "--json"),
            metrics,
        }
    }

    /// The figure scale implied by the options.
    pub fn scale(&self) -> FigureScale {
        if self.smoke {
            FigureScale::smoke()
        } else {
            FigureScale::full()
        }
    }

    /// Prints an experiment result in the selected format.
    pub fn emit(&self, result: &ExperimentResult) {
        if self.json {
            println!("{}", result.to_json());
        } else {
            print!("{}", result.to_table());
        }
    }

    /// Writes the process-wide telemetry snapshot to the `--metrics` path, when one
    /// was requested and `telemetry::install` ran before the driver.
    pub fn emit_metrics(&self) {
        let Some(path) = &self.metrics else { return };
        let Some(snapshot) = telemetry::snapshot() else {
            return;
        };
        match std::fs::write(path, snapshot.to_json_string()) {
            Ok(()) => eprintln!("metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("warning: metrics write failed: {e}"),
        }
    }
}

/// Runs one figure driver and prints it, converting errors into a readable message and
/// a non-zero exit code. With `--metrics FILE` the driver's campaigns report into the
/// process-wide telemetry recorder and the snapshot lands in FILE as cpjson.
pub fn run_figure<F>(f: F)
where
    F: FnOnce(&FigureScale) -> cprecycle_scenarios::Result<ExperimentResult>,
{
    let cli = FigureCli::from_args();
    if cli.metrics.is_some() {
        telemetry::install();
    }
    match f(&cli.scale()) {
        Ok(result) => {
            cli.emit(&result);
            cli.emit_metrics();
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_is_full_scale_table_output() {
        let cli = FigureCli::default();
        assert_eq!(cli.scale().packets, FigureScale::full().packets);
        let cli = FigureCli {
            smoke: true,
            json: true,
            ..Default::default()
        };
        assert_eq!(cli.scale().packets, FigureScale::smoke().packets);
    }

    #[test]
    fn emit_table_and_json_do_not_panic() {
        let result = cprecycle_scenarios::figures::table1();
        FigureCli {
            smoke: true,
            json: false,
            ..Default::default()
        }
        .emit(&result);
        FigureCli {
            smoke: true,
            json: true,
            ..Default::default()
        }
        .emit(&result);
    }
}
