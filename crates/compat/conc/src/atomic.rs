//! Instrumented atomic types, API-compatible with `std::sync::atomic`.
//!
//! Each type carries a real std atomic (the *mirror*) plus a lazily
//! registered model location. Outside a model execution every operation is a
//! plain passthrough to the mirror, so code built against these shims behaves
//! identically to std when no checker is driving it (and the shims' own
//! constructors stay `const fn`). Inside [`crate::Builder::check`], every
//! operation becomes a scheduler yield point with the versioned-history weak
//! memory semantics described in [`crate::exec`](crate).

pub use std::sync::atomic::Ordering;

use crate::exec::{self, ModelRef, KIND_ATOMIC};

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $prim:ty, $std:ty) => {
        $(#[$doc])*
        pub struct $name {
            mirror: $std,
            reg: ModelRef,
        }

        impl $name {
            /// Creates a new atomic initialized to `v`.
            pub const fn new(v: $prim) -> $name {
                $name {
                    mirror: <$std>::new(v),
                    reg: ModelRef::new(),
                }
            }

            /// Loads the value with the given ordering. Under the checker a
            /// non-`SeqCst` load may observe any coherence-admissible stale
            /// value (each is a branch of the exploration).
            pub fn load(&self, ord: Ordering) -> $prim {
                match exec::current() {
                    None => self.mirror.load(ord),
                    Some((shared, tid)) => {
                        let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                        let init = self.mirror.load(Ordering::Relaxed) as u64;
                        shared.atomic_load(tid, key, || init, ord) as $prim
                    }
                }
            }

            /// Stores `v` with the given ordering.
            pub fn store(&self, v: $prim, ord: Ordering) {
                match exec::current() {
                    None => self.mirror.store(v, ord),
                    Some((shared, tid)) => {
                        let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                        let init = self.mirror.load(Ordering::Relaxed) as u64;
                        shared.atomic_store(tid, key, || init, ord, v as u64);
                    }
                }
            }

            /// Swaps in `v`, returning the previous value.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match exec::current() {
                    None => self.mirror.swap(v, ord),
                    Some((shared, tid)) => {
                        let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                        let init = self.mirror.load(Ordering::Relaxed) as u64;
                        shared.atomic_rmw(tid, key, || init, ord, |_| v as u64) as $prim
                    }
                }
            }

            /// Adds `v`, returning the previous value (wrapping).
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, move |p| p.wrapping_add(v), |m| m.fetch_add(v, ord))
            }

            /// Subtracts `v`, returning the previous value (wrapping).
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, move |p| p.wrapping_sub(v), |m| m.fetch_sub(v, ord))
            }

            /// Bitwise-ors in `v`, returning the previous value.
            pub fn fetch_or(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, move |p| p | v, |m| m.fetch_or(v, ord))
            }

            /// Bitwise-ands in `v`, returning the previous value.
            pub fn fetch_and(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, move |p| p & v, |m| m.fetch_and(v, ord))
            }

            /// Maximum of the current value and `v`, returning the previous.
            pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, move |p| p.max(v), |m| m.fetch_max(v, ord))
            }

            fn rmw(
                &self,
                ord: Ordering,
                f: impl Fn($prim) -> $prim,
                passthrough: impl FnOnce(&$std) -> $prim,
            ) -> $prim {
                match exec::current() {
                    None => passthrough(&self.mirror),
                    Some((shared, tid)) => {
                        let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                        let init = self.mirror.load(Ordering::Relaxed) as u64;
                        shared
                            .atomic_rmw(tid, key, || init, ord, |p| f(p as $prim) as u64)
                            as $prim
                    }
                }
            }

            /// Compare-exchange. Under the checker the comparison always runs
            /// against the newest version (RMW coherence); a failure returns
            /// that newest value, so there are no modeled spurious failures.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match exec::current() {
                    None => self.mirror.compare_exchange(current, new, success, failure),
                    Some((shared, tid)) => {
                        let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                        let init = self.mirror.load(Ordering::Relaxed) as u64;
                        shared
                            .atomic_cas(
                                tid,
                                key,
                                || init,
                                current as u64,
                                new as u64,
                                success,
                                failure,
                            )
                            .map(|v| v as $prim)
                            .map_err(|v| v as $prim)
                    }
                }
            }

            /// [`compare_exchange`](Self::compare_exchange) that is allowed
            /// to fail spuriously on real hardware; the model treats it as
            /// the strong variant (callers must already loop, and modeling
            /// spurious failure only re-explores the loop body).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match exec::current() {
                    None => self
                        .mirror
                        .compare_exchange_weak(current, new, success, failure),
                    Some(_) => self.compare_exchange(current, new, success, failure),
                }
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Mirror value only: a model-op here would be a schedule point.
                f.debug_tuple(stringify!($name))
                    .field(&self.mirror.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> $name {
                $name::new(v)
            }
        }
    };
}

int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    u64,
    std::sync::atomic::AtomicU64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    u32,
    std::sync::atomic::AtomicU32
);

/// Instrumented [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    mirror: std::sync::atomic::AtomicBool,
    reg: ModelRef,
}

impl AtomicBool {
    /// Creates a new atomic initialized to `v`.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            mirror: std::sync::atomic::AtomicBool::new(v),
            reg: ModelRef::new(),
        }
    }

    fn init(&self) -> u64 {
        self.mirror.load(Ordering::Relaxed) as u64
    }

    /// Loads the value with the given ordering.
    pub fn load(&self, ord: Ordering) -> bool {
        match exec::current() {
            None => self.mirror.load(ord),
            Some((shared, tid)) => {
                let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                let init = self.init();
                shared.atomic_load(tid, key, || init, ord) != 0
            }
        }
    }

    /// Stores `v` with the given ordering.
    pub fn store(&self, v: bool, ord: Ordering) {
        match exec::current() {
            None => self.mirror.store(v, ord),
            Some((shared, tid)) => {
                let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                let init = self.init();
                shared.atomic_store(tid, key, || init, ord, v as u64);
            }
        }
    }

    /// Swaps in `v`, returning the previous value.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match exec::current() {
            None => self.mirror.swap(v, ord),
            Some((shared, tid)) => {
                let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                let init = self.init();
                shared.atomic_rmw(tid, key, || init, ord, |_| v as u64) != 0
            }
        }
    }

    /// Compare-exchange (strong); see [`AtomicUsize::compare_exchange`].
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match exec::current() {
            None => self.mirror.compare_exchange(current, new, success, failure),
            Some((shared, tid)) => {
                let key = self.reg.key(&shared, tid, KIND_ATOMIC);
                let init = self.init();
                shared
                    .atomic_cas(
                        tid,
                        key,
                        || init,
                        current as u64,
                        new as u64,
                        success,
                        failure,
                    )
                    .map(|v| v != 0)
                    .map_err(|v| v != 0)
            }
        }
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.mirror.load(Ordering::Relaxed))
            .finish()
    }
}
