//! Execution core: the deterministic cooperative scheduler, the operational
//! memory model, and the DFS explorer over schedules.
//!
//! # How an execution runs
//!
//! Every *model thread* is a real OS thread ("lane"), but exactly one runs at a
//! time: each instrumented operation (atomic access, mutex acquire, condvar
//! wait, spawn, join, yield) is a **yield point** where the running thread,
//! holding the global [`ExecState`] lock, applies the operation's semantics,
//! consults the schedule controller for any nondeterministic choice, picks the
//! next thread to run, and parks itself until the baton comes back. The
//! controller drives a depth-first search over the choice tree: each run
//! replays a prefix of choices and extends it with defaults; after the run the
//! deepest choice with an unexplored alternative is bumped and everything
//! below it is discarded (classic stateless model checking).
//!
//! # Memory model
//!
//! Interleavings alone cannot catch ordering bugs (every interleaving of
//! sequentially consistent operations *is* SC), so atomic locations keep a
//! bounded **version history** and non-SeqCst loads may nondeterministically
//! read stale values:
//!
//! * every store appends a new version; `Release`/`SeqCst` stores snapshot the
//!   writer's *view* (a per-thread map `location → minimum visible version`);
//! * a `Relaxed`/`Acquire` load may read any version `≥` the reader's view of
//!   that location (per-location coherence) — each admissible version is a
//!   branch in the DFS; an `Acquire` load that reads a `Release` store joins
//!   the attached view into the reader's (the happens-before edge);
//! * a `SeqCst` load must additionally read `≥` the location's latest `SeqCst`
//!   store (the total-order constraint that makes the flag/counter handshakes
//!   in `ParkGate`-style protocols sound);
//! * read-modify-writes always act on the newest version (RMW atomicity), with
//!   acquire/release view propagation per their ordering;
//! * mutex release/acquire and thread spawn/join edges propagate views.
//!
//! This is deliberately an approximation of C11 — strong enough to *refute*
//! the workspace's protocols when an ordering is weakened (see the seeded
//! mutation tests), simple enough to stay exhaustive at small bounds. Known
//! gaps are documented on [`Builder`].
//!
//! # Progress and blocking
//!
//! `spin_loop`/`yield_now` mark the caller *blocked-on-change*: it is not
//! rescheduled until another thread performs a state mutation (store, RMW,
//! unlock, notify, finish). This models "spin until something changes" fairly,
//! keeps spin loops from generating unbounded interleavings, and turns real
//! livelocks into detectable states. If nothing is runnable, blocked-on-change
//! threads are promoted once with *fresh reads* (stale candidates suppressed —
//! eventual visibility); a second promotion with no intervening mutation is
//! reported as a livelock. No runnable and no promotable thread is a deadlock;
//! both failures carry the full choice schedule for replay.

use std::collections::{BTreeMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// Model-thread index.
pub(crate) type Tid = usize;

/// Stable cross-run identity of a model object: `(kind, creating thread,
/// per-thread creation counter)`. Because model threads are deterministic
/// functions of their observations, the n-th object a thread touches first is
/// the same logical object in every run — which is what lets state
/// fingerprints compare across schedules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct Key(u64);

pub(crate) const KIND_ATOMIC: u64 = 0;
pub(crate) const KIND_MUTEX: u64 = 1;
pub(crate) const KIND_CONDVAR: u64 = 2;

impl Key {
    fn new(kind: u64, tid: Tid, counter: u64) -> Key {
        Key(kind << 56 | (tid as u64) << 40 | counter)
    }
}

/// A thread's view: per-location minimum visible version. Missing entry = 0
/// (the initial version is visible to everyone).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub(crate) struct View {
    map: BTreeMap<Key, u64>,
}

impl View {
    fn get(&self, k: Key) -> u64 {
        self.map.get(&k).copied().unwrap_or(0)
    }
    fn raise(&mut self, k: Key, v: u64) {
        let e = self.map.entry(k).or_insert(0);
        if *e < v {
            *e = v;
        }
    }
    fn join(&mut self, other: &View) {
        for (&k, &v) in &other.map {
            self.raise(k, v);
        }
    }
    fn hash_into(&self, h: &mut Fnv) {
        for (&k, &v) in &self.map {
            h.write(k.0);
            h.write(v);
        }
    }
}

/// One published value of an atomic location.
struct VersionEntry {
    version: u64,
    value: u64,
    /// The writer's view at the store, attached for `Release`/`SeqCst` stores;
    /// joined into any acquiring reader.
    view: Option<Arc<View>>,
}

struct Location {
    history: Vec<VersionEntry>,
    /// Version of the latest `SeqCst` store (0 = the initial value counts).
    last_sc: u64,
    next_version: u64,
}

impl Location {
    fn new(initial: u64) -> Location {
        Location {
            history: vec![VersionEntry {
                version: 0,
                value: initial,
                view: None,
            }],
            last_sc: 0,
            next_version: 1,
        }
    }
    fn latest(&self) -> &VersionEntry {
        self.history.last().expect("location history never empty")
    }
}

struct MutexSt {
    owner: Option<Tid>,
    /// View released by the last unlock, acquired by the next lock.
    view: View,
}

struct CvSt {
    /// Parked waiters in arrival order (notify_one is FIFO).
    waiting: Vec<Tid>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting to acquire a mutex.
    Lock(Key),
    /// Parked on a condvar.
    Cv(Key),
    /// Waiting for a thread to finish.
    Join(Tid),
    /// Yielded via `spin_loop`/`yield_now`: runnable again after any mutation.
    Change,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSt {
    status: Status,
    view: View,
    /// Rolling hash of this thread's observation sequence (op kind, location,
    /// value). Deterministic threads with equal observation histories are in
    /// equal local states — the soundness basis of state-fingerprint pruning.
    obs_hash: u64,
    ops: u64,
    /// Next per-thread object-creation counter (feeds [`Key`]).
    key_counter: u64,
    /// Set when promoted out of blocked-on-change: the next loads read only
    /// the newest version (eventual visibility), until the next yield.
    fresh_reads: bool,
}

impl ThreadSt {
    fn new(view: View) -> ThreadSt {
        ThreadSt {
            status: Status::Runnable,
            view,
            obs_hash: 0xcbf2_9ce4_8422_2325,
            ops: 0,
            key_counter: 0,
            fresh_reads: false,
        }
    }
}

/// Why a model run failed. Carried by [`Failure`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the checked code).
    Panic,
    /// No thread can make progress: every live thread is blocked on a lock,
    /// condvar or join that nothing will release.
    Deadlock,
    /// Only spin-waiting threads remain and no state mutation can unblock
    /// them (a spin loop that can never observe its exit condition).
    Livelock,
    /// A single schedule exceeded the per-run operation budget
    /// ([`crate::Builder::max_ops`]) — an unbounded loop in the model.
    OpLimit,
}

/// A failed model run: what went wrong plus the exact choice schedule that
/// reaches it. Feed the schedule to [`crate::Builder::replay`] to re-run that
/// interleaving deterministically (e.g. under a debugger or with prints).
#[derive(Clone, Debug)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable description (panic payload, blocked-thread list, …).
    pub message: String,
    /// The complete choice sequence of the failing run.
    pub schedule: Vec<u32>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model check failed: {:?}: {}", self.kind, self.message)?;
        write!(
            f,
            "failing schedule (replay with Builder::replay): &{:?}",
            self.schedule
        )
    }
}

/// Statistics of a completed exploration.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules (maximal runs) executed.
    pub schedules: u64,
    /// Choice points skipped because their state fingerprint was already
    /// explored.
    pub pruned: u64,
    /// Total instrumented operations executed across all runs.
    pub total_ops: u64,
    /// Whether the DFS exhausted the choice tree within the schedule budget.
    /// `false` means the absence of a failure is *not* a proof.
    pub complete: bool,
    /// Deepest choice stack seen.
    pub max_depth: usize,
}

#[derive(Clone, Debug)]
pub(crate) struct BuilderCfg {
    pub max_preemptions: Option<u32>,
    pub max_schedules: u64,
    pub max_ops: u64,
    pub stale_window: usize,
    pub prune_visited: bool,
}

impl Default for BuilderCfg {
    fn default() -> Self {
        BuilderCfg {
            max_preemptions: None,
            max_schedules: 500_000,
            max_ops: 50_000,
            stale_window: 3,
            prune_visited: true,
        }
    }
}

/// The global model state: memory, threads, scheduler, and the per-run DFS
/// controller. One instance per [`Builder::check`] call, protected by the
/// [`Shared`] mutex; `visited`/counter fields persist across runs.
pub(crate) struct ExecState {
    pub(crate) cfg: BuilderCfg,
    /// Bumped per run so model objects re-register their [`Key`]s.
    pub(crate) generation: u64,
    threads: Vec<ThreadSt>,
    locations: BTreeMap<Key, Location>,
    mutexes: BTreeMap<Key, MutexSt>,
    condvars: BTreeMap<Key, CvSt>,
    current: Tid,
    live_threads: usize,
    preemptions: u32,
    run_ops: u64,
    /// Promotions of blocked-on-change threads since the last mutation; two in
    /// a row with no mutation in between is a livelock.
    stale_promotions: u32,
    // --- DFS controller (per run) ---
    prefix: Vec<u32>,
    taken: Vec<u32>,
    arity: Vec<u32>,
    explorable: Vec<bool>,
    in_visited_subtree: bool,
    // --- persistent across runs ---
    visited: HashSet<u64>,
    pub(crate) schedules: u64,
    pub(crate) pruned: u64,
    pub(crate) total_ops: u64,
    pub(crate) max_depth: usize,
    pub(crate) failure: Option<Failure>,
    pub(crate) abort: bool,
    pub(crate) done: bool,
    lane_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn new(cfg: BuilderCfg) -> ExecState {
        ExecState {
            cfg,
            generation: 0,
            threads: Vec::new(),
            locations: BTreeMap::new(),
            mutexes: BTreeMap::new(),
            condvars: BTreeMap::new(),
            current: 0,
            live_threads: 0,
            preemptions: 0,
            run_ops: 0,
            stale_promotions: 0,
            prefix: Vec::new(),
            taken: Vec::new(),
            arity: Vec::new(),
            explorable: Vec::new(),
            in_visited_subtree: false,
            visited: HashSet::new(),
            schedules: 0,
            pruned: 0,
            total_ops: 0,
            max_depth: 0,
            failure: None,
            abort: false,
            done: false,
            lane_handles: Vec::new(),
        }
    }

    fn reset_for_run(&mut self, prefix: Vec<u32>) {
        self.generation += 1;
        self.threads.clear();
        self.threads.push(ThreadSt::new(View::default()));
        self.locations.clear();
        self.mutexes.clear();
        self.condvars.clear();
        self.current = 0;
        self.live_threads = 1;
        self.preemptions = 0;
        self.run_ops = 0;
        self.stale_promotions = 0;
        self.prefix = prefix;
        self.taken.clear();
        self.arity.clear();
        self.explorable.clear();
        self.in_visited_subtree = false;
        self.failure = None;
        self.abort = false;
        self.done = false;
    }

    pub(crate) fn alloc_key(&mut self, kind: u64, tid: Tid) -> Key {
        let c = self.threads[tid].key_counter;
        self.threads[tid].key_counter += 1;
        Key::new(kind, tid, c)
    }

    /// Registers `key` as an atomic location if unseen, seeded with `initial`.
    fn ensure_location(&mut self, key: Key, initial: impl FnOnce() -> u64) {
        self.locations
            .entry(key)
            .or_insert_with(|| Location::new(initial()));
    }

    /// Drops history entries no live thread can still read (below every
    /// thread's visible frontier), always keeping the newest.
    fn gc_location(&mut self, key: Key) {
        let frontier = self
            .threads
            .iter()
            .filter(|t| t.status != Status::Finished)
            .map(|t| t.view.get(key))
            .min()
            .unwrap_or(u64::MAX);
        let loc = self
            .locations
            .get_mut(&key)
            .expect("gc of unknown location");
        let keep_from = loc
            .history
            .iter()
            .position(|e| e.version >= frontier)
            .unwrap_or(loc.history.len() - 1)
            .min(loc.history.len() - 1);
        if keep_from > 0 {
            loc.history.drain(..keep_from);
        }
    }

    fn record_failure(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                schedule: self.taken.clone(),
            });
        }
        self.abort = true;
        self.done = true;
    }

    /// A state mutation happened: wake every blocked-on-change thread (other
    /// than the mutator) and reset the livelock ratchet.
    fn wake_on_change(&mut self, by: Tid) {
        self.stale_promotions = 0;
        for (t, th) in self.threads.iter_mut().enumerate() {
            if t != by && th.status == Status::Blocked(Block::Change) {
                th.status = Status::Runnable;
            }
        }
    }

    fn wake_blocked_on(&mut self, b: Block) {
        for th in self.threads.iter_mut() {
            if th.status == Status::Blocked(b) {
                th.status = Status::Runnable;
            }
        }
    }

    /// One DFS choice among `n` alternatives. `tag` distinguishes the choice
    /// context (scheduling vs value read at which location) inside the state
    /// fingerprint used for pruning.
    fn choose(&mut self, n: u32, tag: u64) -> u32 {
        debug_assert!(n >= 2);
        let idx = self.taken.len();
        let replaying = idx < self.prefix.len();
        // Visited-state pruning is only consulted *past* the replayed prefix:
        // states along the prefix trivially repeat across backtracking runs,
        // and the backtracker only ever re-enters subtrees whose alternatives
        // it still owns. A fingerprint seen on a genuinely different path
        // means the whole subtree was (or will be, via the first visitor's
        // registered alternatives) explored once already.
        if self.cfg.prune_visited && !replaying && !self.in_visited_subtree {
            let fp = self.fingerprint(tag);
            if !self.visited.insert(fp) {
                self.in_visited_subtree = true;
                self.pruned += 1;
            }
        }
        let c = if replaying {
            self.prefix[idx].min(n - 1)
        } else {
            0
        };
        self.taken.push(c);
        self.arity.push(n);
        // Alternatives below a visited state were all explored from the first
        // visit and must not be registered again; because the flag stops
        // registration for the rest of the run, no backtracking prefix ever
        // extends past a pruned point, so replayed choices are always ones
        // the backtracker legitimately owns.
        self.explorable.push(!self.in_visited_subtree);
        self.max_depth = self.max_depth.max(self.taken.len());
        c
    }

    /// Deterministic fingerprint of the *entire* model state. Two runs
    /// reaching equal fingerprints have behaviourally identical futures
    /// (threads are deterministic in their observation histories), so the
    /// subtree only needs exploring once.
    fn fingerprint(&self, tag: u64) -> u64 {
        let mut h = Fnv::new();
        h.write(tag);
        h.write(self.preemptions as u64);
        h.write(self.current as u64);
        for (k, loc) in &self.locations {
            h.write(k.0);
            h.write(loc.last_sc);
            for e in &loc.history {
                h.write(e.version);
                h.write(e.value);
                match &e.view {
                    None => h.write(0),
                    Some(v) => {
                        h.write(1);
                        v.hash_into(&mut h);
                    }
                }
            }
        }
        for th in &self.threads {
            h.write(match th.status {
                Status::Runnable => 1,
                Status::Finished => 2,
                Status::Blocked(Block::Change) => 3,
                Status::Blocked(Block::Lock(k)) => 4 ^ k.0,
                Status::Blocked(Block::Cv(k)) => 5 ^ k.0,
                Status::Blocked(Block::Join(t)) => 6 ^ ((t as u64) << 8),
            });
            h.write(th.ops);
            h.write(th.obs_hash);
            h.write(th.fresh_reads as u64);
            th.view.hash_into(&mut h);
        }
        for (k, m) in &self.mutexes {
            h.write(k.0);
            h.write(m.owner.map(|t| t as u64 + 1).unwrap_or(0));
            m.view.hash_into(&mut h);
        }
        for (k, cv) in &self.condvars {
            h.write(k.0);
            for &t in &cv.waiting {
                h.write(t as u64);
            }
        }
        h.finish()
    }

    fn observe(&mut self, tid: Tid, op_kind: u64, key: Key, value: u64) {
        let th = &mut self.threads[tid];
        if op_kind != 1 {
            // `fresh_reads` (set when a spin-waiter is promoted under the
            // eventual-visibility rule) covers the re-check loads only; the
            // first non-load op ends the spin re-check and restores normal
            // stale-read nondeterminism.
            th.fresh_reads = false;
        }
        let mut h = Fnv::from(th.obs_hash);
        h.write(op_kind);
        h.write(key.0);
        h.write(value);
        th.obs_hash = h.finish();
        th.ops += 1;
        self.run_ops += 1;
        self.total_ops += 1;
    }
}

/// Reason the op code hands control back to the scheduler.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Came {
    /// Ordinary op; the current thread is still runnable.
    Op,
    /// Current thread just blocked (status already set).
    Blocked,
    /// Current thread finished.
    Finished,
}

/// Panic payload used to unwind model threads out of user code when an
/// execution is aborted (failure found or exploration stopped).
pub(crate) struct AbortToken;

/// Shared handle between the controller, the lanes and the shims.
pub(crate) struct Shared {
    pub(crate) st: Mutex<ExecState>,
    pub(crate) cv: Condvar,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Shared>, Tid)>> =
        const { std::cell::RefCell::new(None) };
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The `(shared, tid)` context of the calling thread, if it is a model thread
/// inside an active execution.
///
/// Returns `None` while the thread is unwinding: destructors that run during
/// a failure unwind (e.g. a ring draining itself) must not re-enter the
/// scheduler — a schedule point there would raise a second panic inside the
/// unwind and abort the process. Their shim ops fall through to the std
/// mirrors instead, which still hold the pre-model state, so tear-down sees a
/// conservative (at worst leaky, never unsound) view.
pub(crate) fn current() -> Option<(Arc<Shared>, Tid)> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// The choice schedule taken so far in the current run (for printing pinned
/// regression schedules from probe sites). Empty outside a model run.
pub fn current_schedule() -> Vec<u32> {
    match current() {
        Some((shared, _)) => shared.st.lock().expect("conc state").taken.clone(),
        None => Vec::new(),
    }
}

fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Shared {
    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Picks and installs the next thread to run. Must be called with the
    /// state lock held; notifies all parked lanes.
    fn schedule_next(&self, st: &mut ExecState, tid: Tid, came: Came) {
        loop {
            let runnable: Vec<Tid> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if !runnable.is_empty() {
                let next = self.pick(st, &runnable, tid, came);
                st.current = next;
                self.cv.notify_all();
                return;
            }
            if st.live_threads == 0 {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            // Nothing plainly runnable: promote spin-waiters once (eventual
            // visibility — their next reads see the newest values); a second
            // promotion with no mutation in between is a livelock.
            let changers: Vec<Tid> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Blocked(Block::Change))
                .map(|(i, _)| i)
                .collect();
            if changers.is_empty() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("thread {} {:?}", i, t.status))
                    .collect();
                st.record_failure(
                    FailureKind::Deadlock,
                    format!("no runnable thread; live: [{}]", blocked.join(", ")),
                );
                self.cv.notify_all();
                return;
            }
            st.stale_promotions += 1;
            if st.stale_promotions > 1 {
                st.record_failure(
                    FailureKind::Livelock,
                    format!(
                        "spin-waiting threads {:?} cannot observe any further state change",
                        changers
                    ),
                );
                self.cv.notify_all();
                return;
            }
            for &t in &changers {
                st.threads[t].status = Status::Runnable;
                st.threads[t].fresh_reads = true;
            }
        }
    }

    fn pick(&self, st: &mut ExecState, runnable: &[Tid], tid: Tid, came: Came) -> Tid {
        let cur_ok = came == Came::Op && runnable.contains(&tid);
        if runnable.len() == 1 {
            return runnable[0];
        }
        if cur_ok {
            if let Some(budget) = st.cfg.max_preemptions {
                if st.preemptions >= budget {
                    return tid; // budget spent: run the current thread on
                }
            }
        }
        // Option 0 is "continue current" when possible, so default-choice
        // paths are the low-preemption ones and bounded DFS visits them first.
        let mut options: Vec<Tid> = Vec::with_capacity(runnable.len());
        if cur_ok {
            options.push(tid);
        }
        options.extend(runnable.iter().copied().filter(|&t| !cur_ok || t != tid));
        let idx = st.choose(options.len() as u32, 0);
        let next = options[idx as usize];
        if cur_ok && next != tid {
            st.preemptions += 1;
        }
        next
    }

    /// Parks the calling lane until the scheduler hands it the baton (or the
    /// execution aborts, in which case the lane unwinds via [`AbortToken`]).
    fn wait_for_turn(&self, mut guard: MutexGuard<'_, ExecState>, tid: Tid) {
        loop {
            if guard.abort {
                drop(guard);
                panic::panic_any(AbortToken);
            }
            if guard.current == tid && guard.threads[tid].status == Status::Runnable {
                return;
            }
            guard = self.cv.wait(guard).expect("conc state poisoned");
        }
    }

    /// Standard op epilogue: schedule the next thread, park until re-granted.
    fn reschedule(&self, mut guard: MutexGuard<'_, ExecState>, tid: Tid, came: Came) {
        if guard.run_ops >= guard.cfg.max_ops {
            let message = format!("run exceeded max_ops = {}", guard.cfg.max_ops);
            guard.record_failure(FailureKind::OpLimit, message);
            self.cv.notify_all();
            drop(guard);
            panic::panic_any(AbortToken);
        }
        self.schedule_next(&mut guard, tid, came);
        if came == Came::Finished {
            return; // the lane is about to exit; nothing to wait for
        }
        self.wait_for_turn(guard, tid);
    }

    // ------------------------------------------------------------------
    // Atomic ops
    // ------------------------------------------------------------------

    pub(crate) fn atomic_load(
        self: &Arc<Self>,
        tid: Tid,
        key: Key,
        init: impl FnOnce() -> u64,
        ord: Ordering,
    ) -> u64 {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.ensure_location(key, init);
        st.gc_location(key);
        let floor = {
            let mut f = st.threads[tid].view.get(key);
            if ord == Ordering::SeqCst {
                f = f.max(st.locations[&key].last_sc);
            }
            f
        };
        let fresh = st.threads[tid].fresh_reads;
        let window = st.cfg.stale_window.max(1);
        let loc = &st.locations[&key];
        // Admissible versions, newest first (choice 0 = the SC-consistent read).
        let mut candidates: Vec<usize> = loc
            .history
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, e)| e.version >= floor)
            .map(|(i, _)| i)
            .take(window)
            .collect();
        if candidates.is_empty() {
            candidates.push(loc.history.len() - 1);
        }
        if fresh {
            candidates.truncate(1);
        }
        let pick = if candidates.len() > 1 {
            let tag = {
                let mut h = Fnv::new();
                h.write(0x10);
                h.write(key.0);
                h.write(ord as u64);
                h.finish()
            };
            st.choose(candidates.len() as u32, tag) as usize
        } else {
            0
        };
        let loc = &st.locations[&key];
        let entry_idx = candidates[pick];
        let (version, value, view) = {
            let e = &loc.history[entry_idx];
            (e.version, e.value, e.view.clone())
        };
        st.threads[tid].view.raise(key, version);
        if is_acquire(ord) {
            if let Some(v) = view {
                st.threads[tid].view.join(&v);
            }
        }
        st.observe(tid, 1, key, value);
        self.reschedule(st, tid, Came::Op);
        value
    }

    pub(crate) fn atomic_store(
        self: &Arc<Self>,
        tid: Tid,
        key: Key,
        init: impl FnOnce() -> u64,
        ord: Ordering,
        value: u64,
    ) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.ensure_location(key, init);
        self.write_version(&mut st, tid, key, value, ord);
        st.observe(tid, 2, key, value);
        self.reschedule(st, tid, Came::Op);
    }

    /// Read-modify-write: always reads the newest version (RMW atomicity),
    /// with acquire/release view propagation per `ord`. Returns the prior
    /// value.
    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        tid: Tid,
        key: Key,
        init: impl FnOnce() -> u64,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.ensure_location(key, init);
        let (prev, prev_view) = {
            let e = st.locations[&key].latest();
            (e.value, e.view.clone())
        };
        if is_acquire(ord) {
            if let Some(v) = prev_view {
                st.threads[tid].view.join(&v);
            }
        }
        let next = f(prev);
        self.write_version(&mut st, tid, key, next, ord);
        st.observe(tid, 3, key, prev);
        self.reschedule(st, tid, Came::Op);
        prev
    }

    /// Compare-exchange. Success is an RMW on the newest version; failure is
    /// a read of the newest version with `fail` ordering (conservative: no
    /// stale failure reads, so a CAS loop converges in the model exactly when
    /// it converges under SC).
    #[allow(clippy::too_many_arguments)] // mirrors compare_exchange's own arity
    pub(crate) fn atomic_cas(
        self: &Arc<Self>,
        tid: Tid,
        key: Key,
        init: impl FnOnce() -> u64,
        expect: u64,
        new: u64,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<u64, u64> {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.ensure_location(key, init);
        let (latest, latest_view, latest_version) = {
            let e = st.locations[&key].latest();
            (e.value, e.view.clone(), e.version)
        };
        let result = if latest == expect {
            if is_acquire(succ) {
                if let Some(v) = latest_view {
                    st.threads[tid].view.join(&v);
                }
            }
            self.write_version(&mut st, tid, key, new, succ);
            Ok(latest)
        } else {
            st.threads[tid].view.raise(key, latest_version);
            if is_acquire(fail) {
                if let Some(v) = latest_view {
                    st.threads[tid].view.join(&v);
                }
            }
            Err(latest)
        };
        st.observe(tid, 4, key, latest);
        self.reschedule(st, tid, Came::Op);
        result
    }

    /// Appends a new version of `key` written by `tid` and wakes
    /// blocked-on-change threads. The caller holds the lock.
    fn write_version(&self, st: &mut ExecState, tid: Tid, key: Key, value: u64, ord: Ordering) {
        let version = {
            let loc = st
                .locations
                .get_mut(&key)
                .expect("write to unknown location");
            let v = loc.next_version;
            loc.next_version += 1;
            v
        };
        st.threads[tid].view.raise(key, version);
        let view = if is_release(ord) {
            Some(Arc::new(st.threads[tid].view.clone()))
        } else {
            None
        };
        let loc = st
            .locations
            .get_mut(&key)
            .expect("write to unknown location");
        loc.history.push(VersionEntry {
            version,
            value,
            view,
        });
        if ord == Ordering::SeqCst {
            loc.last_sc = version;
        }
        st.wake_on_change(tid);
        st.gc_location(key);
    }

    // ------------------------------------------------------------------
    // Mutex / condvar ops
    // ------------------------------------------------------------------

    /// One lock attempt: acquires and returns `true`, or blocks until the
    /// owner unlocks and returns `false` (the shim loops).
    pub(crate) fn mutex_try_lock(self: &Arc<Self>, tid: Tid, key: Key) -> bool {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            return true; // unwinding: exclusivity no longer matters
        }
        st.mutexes.entry(key).or_insert_with(|| MutexSt {
            owner: None,
            view: View::default(),
        });
        let m = st.mutexes.get_mut(&key).expect("mutex registered above");
        if m.owner.is_none() {
            m.owner = Some(tid);
            let mview = m.view.clone();
            st.threads[tid].view.join(&mview);
            st.observe(tid, 5, key, 1);
            self.reschedule(st, tid, Came::Op);
            true
        } else {
            st.threads[tid].status = Status::Blocked(Block::Lock(key));
            st.observe(tid, 5, key, 0);
            self.schedule_next_locked(st, tid);
            false
        }
    }

    /// `schedule_next` + `wait_for_turn` for a thread that just blocked.
    fn schedule_next_locked(&self, mut guard: MutexGuard<'_, ExecState>, tid: Tid) {
        self.schedule_next(&mut guard, tid, Came::Blocked);
        self.wait_for_turn(guard, tid);
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, tid: Tid, key: Key) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            return;
        }
        let tview = st.threads[tid].view.clone();
        let m = st.mutexes.get_mut(&key).expect("unlock of unknown mutex");
        debug_assert_eq!(m.owner, Some(tid), "unlock by non-owner");
        m.owner = None;
        m.view = tview;
        st.wake_blocked_on(Block::Lock(key));
        st.wake_on_change(tid);
        st.observe(tid, 6, key, 0);
        self.reschedule(st, tid, Came::Op);
    }

    /// Atomically: enqueue on the condvar, release the mutex, park. Returns
    /// once notified *and* scheduled; the shim then re-acquires the mutex.
    pub(crate) fn condvar_wait(self: &Arc<Self>, tid: Tid, cv_key: Key, mutex_key: Key) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.condvars.entry(cv_key).or_insert_with(|| CvSt {
            waiting: Vec::new(),
        });
        let tview = st.threads[tid].view.clone();
        let m = st
            .mutexes
            .get_mut(&mutex_key)
            .expect("condvar wait without a locked mutex");
        debug_assert_eq!(m.owner, Some(tid), "condvar wait by non-owner");
        m.owner = None;
        m.view = tview;
        st.wake_blocked_on(Block::Lock(mutex_key));
        st.condvars
            .get_mut(&cv_key)
            .expect("condvar registered above")
            .waiting
            .push(tid);
        st.threads[tid].status = Status::Blocked(Block::Cv(cv_key));
        st.wake_on_change(tid);
        st.observe(tid, 7, cv_key, 0);
        self.schedule_next_locked(st, tid);
    }

    pub(crate) fn condvar_notify(self: &Arc<Self>, tid: Tid, cv_key: Key, all: bool) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            return;
        }
        st.condvars.entry(cv_key).or_insert_with(|| CvSt {
            waiting: Vec::new(),
        });
        let cv = st
            .condvars
            .get_mut(&cv_key)
            .expect("condvar registered above");
        let woken: Vec<Tid> = if all {
            cv.waiting.drain(..).collect()
        } else if cv.waiting.is_empty() {
            Vec::new()
        } else {
            vec![cv.waiting.remove(0)]
        };
        let n = woken.len() as u64;
        for t in woken {
            st.threads[t].status = Status::Runnable;
        }
        st.wake_on_change(tid);
        st.observe(tid, 8, cv_key, n);
        self.reschedule(st, tid, Came::Op);
    }

    // ------------------------------------------------------------------
    // Thread ops
    // ------------------------------------------------------------------

    /// Registers a child thread (inheriting the parent's view — the spawn
    /// happens-before edge) and returns its tid. The caller launches the lane.
    pub(crate) fn thread_create(self: &Arc<Self>, parent: Tid) -> Tid {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        let child = st.threads.len();
        let view = st.threads[parent].view.clone();
        st.threads.push(ThreadSt::new(view));
        st.live_threads += 1;
        child
    }

    /// Yield point right after a spawn (the child is now schedulable).
    pub(crate) fn after_spawn(self: &Arc<Self>, tid: Tid, handle: std::thread::JoinHandle<()>) {
        let mut st = self.st.lock().expect("conc state poisoned");
        st.lane_handles.push(handle);
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.wake_on_change(tid);
        st.observe(tid, 9, Key(0), 0);
        self.reschedule(st, tid, Came::Op);
    }

    /// One join attempt: `true` once the target finished (its final view is
    /// joined — the join happens-before edge), else blocks and returns `false`.
    pub(crate) fn thread_try_join(self: &Arc<Self>, tid: Tid, target: Tid) -> bool {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            return true;
        }
        if st.threads[target].status == Status::Finished {
            let tv = st.threads[target].view.clone();
            st.threads[tid].view.join(&tv);
            st.observe(tid, 10, Key(0), target as u64);
            self.reschedule(st, tid, Came::Op);
            true
        } else {
            st.threads[tid].status = Status::Blocked(Block::Join(target));
            st.observe(tid, 10, Key(0), u64::MAX);
            self.schedule_next_locked(st, tid);
            false
        }
    }

    /// Marks the calling thread finished and schedules on. The lane exits
    /// after this returns.
    pub(crate) fn thread_finish(self: &Arc<Self>, tid: Tid) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            return;
        }
        st.threads[tid].status = Status::Finished;
        st.live_threads -= 1;
        st.wake_blocked_on(Block::Join(tid));
        st.wake_on_change(tid);
        self.schedule_next(&mut st, tid, Came::Finished);
    }

    /// `spin_loop`/`yield_now`: block until another thread mutates state.
    pub(crate) fn yield_op(self: &Arc<Self>, tid: Tid) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[tid].status = Status::Blocked(Block::Change);
        st.threads[tid].fresh_reads = false;
        st.observe(tid, 11, Key(0), 0);
        self.schedule_next_locked(st, tid);
    }

    /// Records a panic from user code as a model failure and aborts the run.
    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model thread panicked".to_string()
        };
        let mut st = self.st.lock().expect("conc state poisoned");
        st.record_failure(FailureKind::Panic, msg);
        self.cv.notify_all();
    }
}

/// Launches a lane OS thread for model thread `tid` running `body`. The lane
/// parks until first scheduled, runs the closure to completion (or abort),
/// and reports finish/panic into the shared state.
pub(crate) fn launch_lane(
    shared: Arc<Shared>,
    tid: Tid,
    body: Box<dyn FnOnce() + Send>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("conc-lane-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), tid)));
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
            let run = {
                let guard = shared.st.lock().expect("conc state poisoned");
                shared.wait_for_turn_entry(guard, tid)
            };
            if run {
                let result = panic::catch_unwind(AssertUnwindSafe(body));
                match result {
                    Ok(()) => shared.thread_finish(tid),
                    Err(payload) => {
                        if !payload.is::<AbortToken>() {
                            shared.record_panic(payload.as_ref());
                        }
                    }
                }
            }
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
            CURRENT.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawn conc lane")
}

impl Shared {
    /// `wait_for_turn` for lane entry, where an abort must *not* panic (the
    /// lane simply never starts the closure). Returns whether to run.
    fn wait_for_turn_entry(&self, mut guard: MutexGuard<'_, ExecState>, tid: Tid) -> bool {
        loop {
            if guard.abort {
                return false;
            }
            if guard.current == tid && guard.threads[tid].status == Status::Runnable {
                return true;
            }
            guard = self.cv.wait(guard).expect("conc state poisoned");
        }
    }

    /// Releases a mutex without a schedule point. Used by guard drops during
    /// a *user* panic unwind, where the thread must reach the lane boundary
    /// (to report the panic) without parking again.
    pub(crate) fn mutex_unlock_raw(self: &Arc<Self>, tid: Tid, key: Key) {
        let mut st = self.st.lock().expect("conc state poisoned");
        if let Some(m) = st.mutexes.get_mut(&key) {
            if m.owner == Some(tid) {
                m.owner = None;
            }
        }
    }

    /// Whether model thread `target` has finished (for `JoinHandle::is_finished`).
    pub(crate) fn thread_finished(&self, target: Tid) -> bool {
        let st = self.st.lock().expect("conc state poisoned");
        st.threads
            .get(target)
            .map(|t| t.status == Status::Finished)
            .unwrap_or(false)
    }
}

/// Lazily registers a model object's [`Key`] once per execution generation.
/// Embedded in every shim type; `const`-constructible so shim `new`s stay
/// `const fn` like their std counterparts.
pub(crate) struct ModelRef {
    slot: Mutex<(u64, Option<Key>)>,
}

impl ModelRef {
    pub(crate) const fn new() -> ModelRef {
        ModelRef {
            slot: Mutex::new((0, None)),
        }
    }

    /// The object's key in the current execution, allocating on first touch.
    /// Keys are `(kind, first-touching tid, per-thread counter)` — a
    /// deterministic function of the toucher's history, hence stable across
    /// runs and usable inside state fingerprints.
    pub(crate) fn key(&self, shared: &Arc<Shared>, tid: Tid, kind: u64) -> Key {
        let mut st = shared.st.lock().expect("conc state poisoned");
        let generation = st.generation;
        let mut slot = self.slot.lock().expect("conc registration poisoned");
        if slot.0 != generation || slot.1.is_none() {
            *slot = (generation, Some(st.alloc_key(kind, tid)));
        }
        slot.1.expect("key registered above")
    }
}

/// Runs the DFS exploration for [`crate::Builder`]. `replay_only` runs exactly
/// one schedule (`initial_prefix`) without exploring alternatives.
pub(crate) fn explore(
    cfg: BuilderCfg,
    f: Arc<dyn Fn() + Send + Sync>,
    initial_prefix: Vec<u32>,
    replay_only: bool,
) -> Result<Report, Failure> {
    install_panic_hook();
    let shared = Arc::new(Shared {
        st: Mutex::new(ExecState::new(cfg.clone())),
        cv: Condvar::new(),
    });
    let mut prefix = initial_prefix;
    loop {
        {
            let mut st = shared.st.lock().expect("conc state poisoned");
            st.reset_for_run(std::mem::take(&mut prefix));
        }
        let root = {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            launch_lane(Arc::clone(&shared), 0, Box::new(move || f()))
        };
        {
            let mut st = shared.st.lock().expect("conc state poisoned");
            st.lane_handles.push(root);
            // The baton was granted to thread 0 by `reset_for_run`, *before*
            // the lane existed — it must not be touched here: the lane may
            // already be mid-run, and re-assigning `current` would hand the
            // baton to a second thread concurrently.
            while !st.done {
                st = shared.cv.wait(st).expect("conc state poisoned");
            }
            // Unwind any still-parked lanes.
            st.abort = true;
            shared.cv.notify_all();
        }
        let handles: Vec<_> = {
            let mut st = shared.st.lock().expect("conc state poisoned");
            st.lane_handles.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = shared.st.lock().expect("conc state poisoned");
        st.schedules += 1;
        if let Some(mut failure) = st.failure.take() {
            failure.schedule = std::mem::take(&mut st.taken);
            return Err(failure);
        }
        if replay_only {
            return Ok(report_of(&st, true));
        }
        // Backtrack: bump the deepest explorable choice with an alternative.
        let mut next_prefix: Option<Vec<u32>> = None;
        for i in (0..st.taken.len()).rev() {
            if st.explorable[i] && st.taken[i] + 1 < st.arity[i] {
                let mut p = st.taken[..i].to_vec();
                p.push(st.taken[i] + 1);
                next_prefix = Some(p);
                break;
            }
        }
        match next_prefix {
            None => return Ok(report_of(&st, true)),
            Some(p) => {
                if st.schedules >= st.cfg.max_schedules {
                    return Ok(report_of(&st, false));
                }
                prefix = p;
            }
        }
    }
}

fn report_of(st: &ExecState, complete: bool) -> Report {
    Report {
        schedules: st.schedules,
        pruned: st.pruned,
        total_ops: st.total_ops,
        complete,
        max_depth: st.max_depth,
    }
}

/// FNV-1a, used everywhere a deterministic (non-randomized) hash is needed.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn from(state: u64) -> Fnv {
        Fnv(state)
    }
    pub(crate) fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}
