//! Instrumented [`std::hint`] subset.

use crate::exec;

/// Instrumented [`std::hint::spin_loop`]. In the model this is identical to
/// [`crate::thread::yield_now`]: the spinner blocks until another thread
/// mutates shared state, so busy-wait loops terminate and genuine livelocks
/// (spins whose exit condition can never become visible) are detected.
pub fn spin_loop() {
    match exec::current() {
        None => std::hint::spin_loop(),
        Some((shared, tid)) => shared.yield_op(tid),
    }
}
