//! `conc` — an offline, dependency-free, loom-style deterministic model
//! checker for the workspace's hand-rolled concurrency primitives.
//!
//! The crate provides drop-in shims for the `std` sync vocabulary the engine
//! uses — [`atomic`], [`sync`] (`Mutex`/`Condvar`), [`thread`]
//! (`spawn`/`join`), [`hint`] — plus a [`Builder`] that runs a closure under
//! **exhaustive bounded exploration**: every instrumented operation is a
//! scheduler yield point, a DFS enumerates thread interleavings (and, for
//! non-`SeqCst` atomics, the coherence-admissible stale values a load may
//! return), sound state-fingerprint pruning collapses isomorphic branches,
//! and any failure (assertion panic, deadlock, livelock) is reported with the
//! exact choice schedule that reaches it, replayable via [`Builder::replay`].
//!
//! Outside a model run the shims pass straight through to `std`, so one
//! source tree serves production and checking (the engine swaps its
//! `engine::sync` facade onto this crate under `cfg(cprecycle_conc)`).
//!
//! # Example
//!
//! ```
//! use conc::{model, atomic::{AtomicUsize, Ordering}};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             conc::thread::spawn(move || {
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! # What the model does and does not cover
//!
//! Covered exhaustively (at the configured bounds): all interleavings at
//! instrumented operations, bounded-stale reads for `Relaxed`/`Acquire`
//! loads, release/acquire view propagation, a per-location `SeqCst`
//! total-order constraint, RMW atomicity, mutex/condvar blocking semantics
//! (including lost-wakeup deadlocks), spawn/join edges, livelock detection
//! for spin loops.
//!
//! Known approximations (all *under*-approximate reorderings, so the checker
//! can miss exotic weak-memory bugs but never reports a false failure):
//! compare-exchange failures read the newest value (no stale failure loads),
//! `compare_exchange_weak` never fails spuriously, condvars have no spurious
//! wakeups, and the `SeqCst` order is per-location rather than a single
//! global total order across locations (IRIW-style distinctions are not
//! modeled).

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod exec;

pub mod atomic;
pub mod hint;
pub mod sync;
pub mod thread;

use std::sync::Arc;

pub use exec::{current_schedule, Failure, FailureKind, Report};

use exec::BuilderCfg;

/// Configures and runs a model-checking exploration.
///
/// Defaults: unbounded preemptions, 500 000 schedules, 50 000 ops per
/// schedule, stale-read window 3, visited-state pruning on.
#[derive(Clone, Debug, Default)]
pub struct Builder {
    cfg: BuilderCfg,
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Bounds *involuntary* context switches per schedule (voluntary blocking
    /// never counts). Most real concurrency bugs manifest within 2–3
    /// preemptions; a small bound keeps exploration fast while `None`
    /// (default) is exhaustive.
    pub fn max_preemptions(mut self, n: u32) -> Builder {
        self.cfg.max_preemptions = Some(n);
        self
    }

    /// Caps the number of schedules explored; hitting the cap yields
    /// [`Report::complete`]` == false` rather than an error.
    pub fn max_schedules(mut self, n: u64) -> Builder {
        self.cfg.max_schedules = n;
        self
    }

    /// Caps instrumented ops in a single schedule; exceeding it is reported
    /// as a [`FailureKind::OpLimit`] failure (an unbounded loop).
    pub fn max_ops(mut self, n: u64) -> Builder {
        self.cfg.max_ops = n;
        self
    }

    /// How many distinct stale versions a non-`SeqCst` load may branch over
    /// (newest-first). 1 makes loads effectively sequentially consistent.
    pub fn stale_window(mut self, n: usize) -> Builder {
        self.cfg.stale_window = n.max(1);
        self
    }

    /// Toggles sound visited-state pruning (on by default; turning it off is
    /// only useful for debugging the checker itself).
    pub fn prune_visited(mut self, on: bool) -> Builder {
        self.cfg.prune_visited = on;
        self
    }

    /// Explores every schedule of `f` (within bounds). `f` is run once per
    /// schedule and must be deterministic apart from the instrumented ops.
    /// Returns the exploration [`Report`], or the first [`Failure`] with its
    /// replayable schedule.
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        exec::explore(self.cfg.clone(), Arc::new(f), Vec::new(), false)
    }

    /// Re-runs exactly one schedule (as printed in a [`Failure`]) — for
    /// debugging a failure with prints/debuggers, and for pinning known-hairy
    /// interleavings as fast regression tests.
    pub fn replay<F>(&self, schedule: &[u32], f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        exec::explore(self.cfg.clone(), Arc::new(f), schedule.to_vec(), true)
    }
}

/// Checks `f` under the default bounds, panicking on any failure (with the
/// failing schedule in the message) and on incomplete exploration. The usual
/// entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    match Builder::new().check(f) {
        Err(failure) => panic!("{failure}"),
        Ok(report) => assert!(
            report.complete,
            "model exploration hit the schedule cap before completing: {report:?}"
        ),
    }
}
