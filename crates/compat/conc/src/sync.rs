//! Instrumented `Mutex`/`Condvar`, API-compatible with `std::sync`.
//!
//! Outside a model execution these delegate to an embedded std mutex/condvar
//! (passthrough). Inside one, lock acquisition, release, wait and notify are
//! scheduler operations: the model tracks ownership and waiter queues
//! explicitly, blocking is a scheduler state rather than an OS park, and the
//! release→acquire view propagation gives the usual happens-before edge.
//!
//! Model condvars have **no spurious wakeups** — callers looping on a
//! predicate (as all std-correct code must) lose no coverage, but a caller
//! relying on a spurious wakeup for progress would deadlock here first.
//!
//! Poisoning is not modeled: lock results are always `Ok`, matching how the
//! engine treats poisoning (unwrap) while keeping the std signatures.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

pub use std::sync::{LockResult, PoisonError, WaitTimeoutResult};

use crate::exec::{self, Key, ModelRef, Shared, Tid, KIND_CONDVAR, KIND_MUTEX};

/// Instrumented [`std::sync::Mutex`].
pub struct Mutex<T> {
    reg: ModelRef,
    /// Provides real mutual exclusion (and a condvar anchor) in passthrough.
    real: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: `Mutex<T>` hands out `&T`/`&mut T` only through `MutexGuard`, whose
// existence implies exclusive ownership — via the held std guard in
// passthrough mode, or via the model scheduler's single-owner bookkeeping in
// model mode (`mutex_try_lock` blocks every other thread until unlock). That
// is exactly the std::sync::Mutex contract, so the same bounds apply.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: see the `Send` impl above; `&Mutex<T>` only exposes `T` under the
// exclusion protocol, so sharing the handle across threads is sound for any
// `T: Send` (same bound as std).
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            reg: ModelRef::new(),
            real: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the mutex, blocking (in the model: parking the thread in the
    /// scheduler) until it is free. Never returns `Err`: poisoning is not
    /// modeled and passthrough poison is swallowed.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current() {
            None => {
                let real = self.real.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    real: Some(real),
                    model: None,
                })
            }
            Some((shared, tid)) => {
                let key = self.reg.key(&shared, tid, KIND_MUTEX);
                while !shared.mutex_try_lock(tid, key) {}
                Ok(MutexGuard {
                    lock: self,
                    real: None,
                    model: Some((shared, tid, key)),
                })
            }
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never inspects the data: that would need a lock (a schedule point).
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; unlocks on drop. `!Send` (it embeds an
/// `Option<std::sync::MutexGuard>`), like the std guard.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    real: Option<std::sync::MutexGuard<'a, ()>>,
    model: Option<(Arc<Shared>, Tid, Key)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: a live guard means this thread holds the mutex (std guard
        // in passthrough, scheduler ownership in the model), so no other
        // reference to the data can exist.
        #[allow(unsafe_code)]
        unsafe {
            &*self.lock.data.get()
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard certifies exclusive ownership
        // for its whole lifetime.
        #[allow(unsafe_code)]
        unsafe {
            &mut *self.lock.data.get()
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((shared, tid, key)) = self.model.take() {
            if std::thread::panicking() {
                // A user panic is unwinding through the guard: release
                // ownership without a schedule point so the unwind reaches
                // the lane boundary and gets reported as the model failure.
                shared.mutex_unlock_raw(tid, key);
            } else {
                shared.mutex_unlock(tid, key);
            }
        }
    }
}

/// Instrumented [`std::sync::Condvar`].
pub struct Condvar {
    reg: ModelRef,
    real: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            reg: ModelRef::new(),
            real: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified, then
    /// re-acquires the mutex before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            Some((shared, tid, mutex_key)) => {
                let cv_key = self.reg.key(&shared, tid, KIND_CONDVAR);
                shared.condvar_wait(tid, cv_key, mutex_key);
                while !shared.mutex_try_lock(tid, mutex_key) {}
                guard.model = Some((shared, tid, mutex_key));
                Ok(guard)
            }
            None => {
                let real = guard.real.take().expect("guard is passthrough or model");
                let real = self.real.wait(real).unwrap_or_else(|e| e.into_inner());
                guard.real = Some(real);
                Ok(guard)
            }
        }
    }

    /// [`wait`](Self::wait) in a loop while `condition` holds.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self
                .wait(guard)
                .unwrap_or_else(|_| unreachable!("wait never errs"));
        }
        Ok(guard)
    }

    /// Wakes one waiter (FIFO in the model).
    pub fn notify_one(&self) {
        match exec::current() {
            None => self.real.notify_one(),
            Some((shared, tid)) => {
                let cv_key = self.reg.key(&shared, tid, KIND_CONDVAR);
                shared.condvar_notify(tid, cv_key, false);
            }
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match exec::current() {
            None => self.real.notify_all(),
            Some((shared, tid)) => {
                let cv_key = self.reg.key(&shared, tid, KIND_CONDVAR);
                shared.condvar_notify(tid, cv_key, true);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
