//! Instrumented thread spawn/join, API-compatible with the subset of
//! `std::thread` the engine uses.
//!
//! In a model execution, `spawn` registers a *model thread* (inheriting the
//! parent's memory view — the spawn happens-before edge) whose closure runs
//! on a dedicated OS lane under the cooperative scheduler; `join` is a
//! blocking scheduler op that propagates the child's final view. Outside a
//! model execution everything passes through to std.

use std::sync::{Arc, Mutex};

use crate::exec::{self, AbortToken, Shared, Tid};

/// Instrumented [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        shared: Arc<Shared>,
        target: Tid,
        result: Arc<Mutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. In the model
    /// this is a scheduler join (with view propagation); a child that never
    /// produced a value means the execution is aborting, and the join
    /// unwinds with the abort token instead of returning.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model {
                shared,
                target,
                result,
            } => {
                let (cur_shared, tid) = exec::current().expect("model join from non-model thread");
                debug_assert!(Arc::ptr_eq(&cur_shared, &shared));
                while !shared.thread_try_join(tid, target) {}
                match result.lock().expect("result slot poisoned").take() {
                    Some(v) => Ok(v),
                    None => std::panic::panic_any(AbortToken),
                }
            }
        }
    }

    /// Whether the thread has finished (without blocking).
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Std(h) => h.is_finished(),
            Inner::Model { shared, target, .. } => shared.thread_finished(*target),
        }
    }
}

/// Instrumented [`std::thread::Builder`] (name-only subset).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Names the thread (used for the OS lane in both modes).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread. Model-mode spawning cannot fail.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match exec::current() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle {
                    inner: Inner::Std(h),
                })
            }
            Some((shared, parent)) => {
                let target = shared.thread_create(parent);
                let result = Arc::new(Mutex::new(None));
                let slot = Arc::clone(&result);
                let lane = exec::launch_lane(
                    Arc::clone(&shared),
                    target,
                    Box::new(move || {
                        let v = f();
                        *slot.lock().expect("result slot poisoned") = Some(v);
                    }),
                );
                shared.after_spawn(parent, lane);
                Ok(JoinHandle {
                    inner: Inner::Model {
                        shared,
                        target,
                        result,
                    },
                })
            }
        }
    }
}

/// Instrumented [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Instrumented [`std::thread::yield_now`]. In the model the caller blocks
/// until another thread mutates shared state (the fair reading of "yield so
/// someone else can make progress"), which keeps spin loops finite and makes
/// true livelocks detectable.
pub fn yield_now() {
    match exec::current() {
        None => std::thread::yield_now(),
        Some((shared, tid)) => shared.yield_op(tid),
    }
}
