//! Litmus tests for the model checker itself: classic weak-memory and
//! scheduling shapes where the expected verdict (bug found / verified absent)
//! is known from first principles. These run in tier-1 CI and are the
//! evidence that the engine model suites' green results mean something.

use std::sync::Arc;

use conc::atomic::{AtomicBool, AtomicUsize, Ordering};
use conc::sync::{Condvar, Mutex};
use conc::{model, Builder, FailureKind};

/// Two increments from two threads with a CAS loop: exactly-once semantics,
/// verified over every interleaving.
#[test]
fn cas_counter_exactly_once() {
    model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                conc::thread::spawn(move || loop {
                    let cur = counter.load(Ordering::Relaxed);
                    if counter
                        .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

/// Message passing with Release/Acquire: the reader that observes the flag
/// must observe the data. Verified absent of stale-data reads.
#[test]
fn message_passing_release_acquire_safe() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = conc::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire must publish data"
            );
        }
        producer.join().unwrap();
    });
}

/// The same shape with Relaxed on the flag: the data read may be stale. The
/// checker must find the violating schedule.
#[test]
fn message_passing_all_relaxed_caught() {
    let result = Builder::new().check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = conc::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data observed");
        }
        producer.join().unwrap();
    });
    let failure = result.expect_err("relaxed message passing must be refutable");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("stale data observed"),
        "unexpected failure: {failure}"
    );
}

/// Store buffering: with Relaxed stores and loads, both threads can read the
/// other's flag as 0 (each load sees the pre-store version).
#[test]
fn store_buffering_relaxed_found() {
    let result = Builder::new().check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = conc::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let saw_x = x.load(Ordering::Relaxed);
        let saw_y = t.join().unwrap();
        assert!(saw_x == 1 || saw_y == 1, "both threads read 0");
    });
    let failure = result.expect_err("relaxed store buffering must exhibit 0/0");
    assert!(failure.message.contains("both threads read 0"));
}

/// Store buffering with SeqCst everywhere: the 0/0 outcome is impossible per
/// location-wise SC (each load must see the latest SeqCst store to its own
/// location once ordered after it — at least one thread runs second).
#[test]
fn store_buffering_seqcst_safe() {
    model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = conc::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let saw_x = x.load(Ordering::SeqCst);
        let saw_y = t.join().unwrap();
        assert!(saw_x == 1 || saw_y == 1, "SeqCst forbids 0/0");
    });
}

/// ABBA lock ordering: the checker must find the deadlock.
#[test]
fn abba_deadlock_found() {
    let result = Builder::new().check(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = conc::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    });
    let failure = result.expect_err("ABBA must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(!failure.schedule.is_empty(), "schedule must be replayable");
}

/// Classic lost wakeup: the waiter checks the flag *outside* the mutex, then
/// parks; the notifier can fire between check and park. Must be detected as
/// a deadlock.
#[test]
fn condvar_lost_wakeup_found() {
    let result = Builder::new().check(|| {
        let ready = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (r2, p2) = (Arc::clone(&ready), Arc::clone(&pair));
        let notifier = conc::thread::spawn(move || {
            r2.store(true, Ordering::SeqCst);
            p2.1.notify_all();
        });
        // BUG: flag check races with the park; correct code re-checks the
        // predicate under the same mutex the notifier takes.
        if !ready.load(Ordering::SeqCst) {
            let guard = pair.0.lock().unwrap();
            if !ready.load(Ordering::SeqCst) {
                let _guard = pair.1.wait(guard).unwrap();
            }
        }
        notifier.join().unwrap();
    });
    let failure = result.expect_err("lost wakeup must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// The corrected protocol — notifier takes the mutex before notifying — has
/// no lost wakeup in any schedule.
#[test]
fn condvar_handshake_safe() {
    model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let notifier = conc::thread::spawn(move || {
            *s2.0.lock().unwrap() = true;
            s2.1.notify_all();
        });
        let guard = state.0.lock().unwrap();
        let _guard = state.1.wait_while(guard, |done| !*done).unwrap();
        notifier.join().unwrap();
    });
}

/// A replayed failing schedule reproduces the identical failure, and replay
/// runs exactly one schedule.
#[test]
fn replay_reproduces_failure() {
    let shape = || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = conc::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    };
    let failure = Builder::new().check(shape).expect_err("ABBA deadlocks");
    let replayed = Builder::new()
        .replay(&failure.schedule, shape)
        .expect_err("replay must hit the same deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

/// A spin loop whose exit condition is eventually written terminates under
/// the blocked-on-change semantics (no false livelock).
#[test]
fn spin_wait_terminates() {
    model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = conc::thread::spawn(move || {
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            conc::hint::spin_loop();
        }
        t.join().unwrap();
    });
}

/// A spin loop that can never observe its exit condition is reported as a
/// livelock, not explored forever.
#[test]
fn hopeless_spin_is_livelock() {
    let result = Builder::new().check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = conc::thread::spawn(move || {
            while !f2.load(Ordering::Acquire) {
                conc::hint::spin_loop();
            }
        });
        // Nobody ever sets the flag.
        t.join().unwrap();
    });
    let failure = result.expect_err("unsatisfiable spin must be flagged");
    assert!(
        matches!(failure.kind, FailureKind::Livelock | FailureKind::Deadlock),
        "got {failure}"
    );
}

/// Exploration statistics are sane: a two-thread interleaving problem has
/// more than one schedule, completes, and pruning fires.
#[test]
fn report_counts_schedules() {
    let report = Builder::new()
        .check(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = conc::thread::spawn(move || {
                x2.fetch_add(1, Ordering::SeqCst);
                x2.fetch_add(1, Ordering::SeqCst);
            });
            x.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 3);
        })
        .expect("counter shape is correct");
    assert!(report.complete, "small shape must be exhausted: {report:?}");
    assert!(
        report.schedules > 1,
        "interleavings must branch: {report:?}"
    );
    assert!(report.total_ops > 0);
}

/// Passthrough mode: outside `check`, the shims behave as plain std types
/// across real threads.
#[test]
fn passthrough_outside_model() {
    let counter = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let counter = Arc::clone(&counter);
            let gate = Arc::clone(&gate);
            conc::thread::spawn(move || {
                let guard = gate.0.lock().unwrap();
                let _guard = gate.1.wait_while(guard, |open| !*open).unwrap();
                counter.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    {
        let mut open = gate.0.lock().unwrap();
        *open = true;
    }
    gate.1.notify_all();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 4);
}

/// Preemption bounding: with 0 preemptions the buggy relaxed message-passing
/// interleaving disappears (each thread runs to completion), with the default
/// unbounded search it is found — the bound is a real knob.
#[test]
fn preemption_bound_is_effective() {
    let shape = || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = conc::thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 1);
        }
        producer.join().unwrap();
    };
    // Unbounded: found. (Stale reads need no preemption here — the parent
    // runs first, reads the flag late via join-free interleaving — so use
    // the report only as a smoke check that both modes terminate.)
    assert!(
        Builder::new().check(shape).is_err()
            || Builder::new().max_preemptions(0).check(shape).is_ok()
    );
    let bounded = Builder::new()
        .max_preemptions(0)
        .stale_window(1)
        .check(shape);
    assert!(
        bounded.is_ok(),
        "no-preemption SC search must not see the stale read"
    );
}
