//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate reimplements the small
//! part of the criterion API the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], the `criterion_group!` /
//! `criterion_main!` macros and [`black_box`].
//!
//! Measurement strategy: each benchmark is auto-calibrated so one sample takes roughly
//! [`TARGET_SAMPLE_NANOS`], then `sample_size` samples are collected (bounded by a
//! per-benchmark time budget) and the median, minimum and maximum per-iteration times
//! are printed. No plots, no statistics beyond that — enough for regression eyeballing
//! and for CI smoke runs, not for publication-grade statistics.
//!
//! Machine-readable results: `cargo bench … -- --json <path>` additionally appends
//! one JSON object per benchmark to `<path>` (JSON Lines, so several bench binaries
//! of one `cargo bench` invocation can share a file — remove it first for a clean
//! snapshot). CI uses this to record the perf trajectory as a build artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one sample (batch of iterations).
pub const TARGET_SAMPLE_NANOS: u64 = 20_000_000;

/// Hard per-benchmark time budget, so whole suites stay fast.
pub const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Prevents the optimizer from deleting a value or the computation producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group, e.g. `cprecycle/16`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered as `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Smoke mode (upstream criterion's `--test` flag): run the closure once to prove
    /// it executes, skip calibration and measurement entirely.
    test_mode: bool,
    /// Median/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibration: find an iteration count that makes one sample ~TARGET_SAMPLE_NANOS.
        let mut iters = 1u64;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed > 1_000_000 || iters >= 1 << 20 {
                break (elapsed.max(1)) as f64 / iters as f64;
            }
            iters *= 4;
        };
        let iters_per_sample =
            ((TARGET_SAMPLE_NANOS as f64 / per_iter_estimate).ceil() as u64).clamp(1, 1 << 24);
        self.iters_per_sample = iters_per_sample;

        let budget_start = Instant::now();
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            per_iter.push(nanos / iters_per_sample as f64);
            if budget_start.elapsed() > BENCH_BUDGET {
                break;
            }
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = *per_iter.last().expect("at least one sample");
        self.result = Some((median, min, max));
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let test_mode = self.criterion.test_mode;
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: self.sample_size,
            test_mode,
            result: None,
        };
        f(&mut bencher);
        if test_mode {
            println!("{}/{}: test passed (1 iteration, --test)", self.name, id);
            self.criterion.record_json(&self.name, id, None, 1);
            return;
        }
        match bencher.result {
            Some((median, min, max)) => {
                println!(
                    "{:<40} time: [{} {} {}]  ({} iters/sample)",
                    format!("{}/{}", self.name, id),
                    format_nanos(min),
                    format_nanos(median),
                    format_nanos(max),
                    bencher.iters_per_sample,
                );
                self.criterion.record_json(
                    &self.name,
                    id,
                    Some((median, min, max)),
                    bencher.iters_per_sample,
                );
            }
            None => println!("{}/{}: closure never called iter()", self.name, id),
        }
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream criterion computes group statistics here; this
    /// implementation prints per-benchmark lines eagerly, so it is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
///
/// `Default` reads the process arguments: `--test` (upstream criterion's smoke flag,
/// `cargo bench -- --test`) switches every benchmark to a single untimed iteration so
/// CI can prove bench code still runs without paying for measurement, and
/// `--json <path>` appends one JSON-Lines record per benchmark to `<path>`.
pub struct Criterion {
    test_mode: bool,
    json_path: Option<PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let json_path = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        Criterion {
            test_mode: args.iter().any(|a| a == "--test"),
            json_path,
        }
    }
}

/// Minimal JSON string escaping for benchmark ids (quotes, backslashes, control
/// characters — ids are plain identifiers in practice).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Appends one benchmark record to the `--json` file, if configured. `timing` is
    /// `(median, min, max)` nanoseconds per iteration, absent in `--test` mode.
    fn record_json(
        &mut self,
        group: &str,
        id: &str,
        timing: Option<(f64, f64, f64)>,
        iters_per_sample: u64,
    ) {
        let Some(path) = &self.json_path else {
            return;
        };
        let line = match timing {
            Some((median, min, max)) => format!(
                "{{\"group\":\"{}\",\"id\":\"{}\",\"mode\":\"measured\",\
                 \"median_ns\":{median},\"min_ns\":{min},\"max_ns\":{max},\
                 \"iters_per_sample\":{iters_per_sample}}}",
                escape_json(group),
                escape_json(id),
            ),
            None => format!(
                "{{\"group\":\"{}\",\"id\":\"{}\",\"mode\":\"test\"}}",
                escape_json(group),
                escape_json(id),
            ),
        };
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = written {
            eprintln!(
                "warning: could not append bench JSON to {}: {e}",
                path.display()
            );
        }
    }

    /// Benchmarks a single closure outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("-", f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, n| {
            b.iter(|| (0..*n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn json_records_are_appended_and_escaped() {
        let path =
            std::env::temp_dir().join(format!("criterion-json-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut c = Criterion {
                test_mode: false,
                json_path: Some(path.clone()),
            };
            let mut group = c.benchmark_group("json");
            group.sample_size(2);
            group.bench_function("mul", |b| b.iter(|| black_box(3u64) * black_box(7u64)));
            group.finish();
            // Test mode emits a record too, so the CI smoke run proves the wiring.
            let mut smoke = Criterion {
                test_mode: true,
                json_path: Some(path.clone()),
            };
            smoke.bench_function("quo\"te", |b| b.iter(|| black_box(1)));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"group\":\"json\""));
        assert!(lines[0].contains("\"mode\":\"measured\""));
        assert!(lines[0].contains("\"median_ns\":"));
        assert!(lines[1].contains("\"mode\":\"test\""));
        assert!(lines[1].contains("quo\\\"te"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            test_mode: true,
            json_path: None,
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 1, "--test must run the closure exactly once");
    }
}
