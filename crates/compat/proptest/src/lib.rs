//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate reimplements the part
//! of the proptest API the workspace's property tests use: the [`proptest!`] macro,
//! range and collection [`Strategy`]s, `prop_map`, [`any`], `prop::sample::Index`,
//! and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * inputs are generated from a fixed per-test seed (an FNV-1a hash of the test
//!   name), so runs are fully deterministic and CI never flakes on random inputs;
//! * there is no shrinking — a failing case panics with the standard assertion
//!   message, and the deterministic seed means it reproduces exactly;
//! * `prop_assume!` skips the offending case without replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A strategy producing a constant value (used by `Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(
    /// The value every case receives.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        sample::Index { raw: rng.gen() }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range of permissible collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Smallest permitted length.
        pub min: usize,
        /// Largest permitted length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length falls in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// A position into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Resolves the index against a concrete collection length.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// The `prop` namespace (`prop::collection::vec`, `prop::sample::Index`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

#[doc(hidden)]
pub use rand as __rand;

/// Seeds a deterministic generator from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pattern in strategy, …) { body }` becomes a
/// `#[test]` that runs the body over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                let mut case = || {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                case();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..10, y in -5.0f64..5.0) {
            prop_assert!(x < 10);
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(mut v in prop::collection::vec(0usize..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            v.push(0);
            prop_assert!(v.iter().all(|x| *x < 3));
        }

        #[test]
        fn tuples_and_map_compose(p in (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) + (b as u16))) {
            prop_assert!(p <= 6);
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn any_and_index_work(b in any::<u8>(), idx in any::<prop::sample::Index>()) {
            let v = [10, 20, 30];
            let chosen = v[idx.index(v.len())];
            prop_assert!(chosen % 10 == 0);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = crate::collection::vec(0u64..1000, 3..=3);
        let mut a = StdRng::seed_from_u64(crate::seed_for("x"));
        let mut b = StdRng::seed_from_u64(crate::seed_for("x"));
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
