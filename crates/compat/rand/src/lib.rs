//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so the
//! workspace vendors the small part of the `rand` 0.8 API surface it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] — every experiment derives its randomness from an
//!   explicit `u64` seed;
//! * [`rngs::StdRng`] — the default deterministic generator (here xoshiro256**
//!   seeded through SplitMix64, *not* the ChaCha12 of upstream `rand`; streams are
//!   deterministic and portable but intentionally not bit-compatible with upstream);
//! * the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//!
//! Determinism contract: for a fixed seed the sample stream depends only on the
//! sequence of calls, never on platform, pointer values or global state. The
//! `cprecycle-engine` campaign engine builds its replayable per-trial seed tree on top
//! of this property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from its full domain (the subset of `rand`'s
/// `Standard` distribution this workspace uses). Floats sample uniformly from `[0, 1)`.
pub trait SampleValue: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` with a widening multiply (Lemire reduction
/// without the rejection step; the bias is below 2^-64 · span and irrelevant for
/// simulation workloads).
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = mul_shift(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = mul_shift(rng.next_u64(), span + 1);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = SampleValue::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: $t = SampleValue::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from the full domain of `T` (floats from `[0, 1)`).
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The SplitMix64 finalizer: a bijective avalanche mix used for seeding and for the
/// campaign engine's seed-tree derivation.
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256** with its
    /// 256-bit state expanded from the `u64` seed by SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix64(&mut sm);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..1000 {
            let v = rng.gen_range(1..=127u8);
            assert!((1..=127).contains(&v));
        }
        let mut lo = false;
        let mut hi = false;
        for _ in 0..2000 {
            match rng.gen_range(0..2u8) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn works_through_dyn_like_generic_bounds() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_generic(&mut rng);
    }
}
