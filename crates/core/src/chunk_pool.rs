//! Pooled sample-chunk buffers for the server ingress path.
//!
//! Every [`crate::server::SessionHandle::push`] copies the caller's chunk into a
//! server-owned buffer (the producer keeps ownership of its slice; the backpressure
//! contract says a rejected push consumes nothing). PR 7 allocated a fresh `Vec`
//! per push; at 10k sessions that is an allocation *and* a free on every chunk of
//! the hot path. [`ChunkPool`] replaces it with a lock-free freelist of
//! fixed-capacity `Box<[Complex]>` buffers recycled by the worker that services the
//! chunk:
//!
//! ```text
//!  producer: acquire ──copy──▶ IngressRing ──pop──▶ worker: session.push(&buf)
//!      ▲                                                     │ release
//!      └————————————————— freelist (MpmcRing) ◀——————————————┘
//! ```
//!
//! Buffers are **size-classed**: freelists at power-of-two capacities from
//! [`MIN_CLASS_SAMPLES`] up to the configured maximum, and a chunk draws from the
//! smallest class that fits. One class would be simpler, but then every buffer
//! is the worst case — at the realtime chunk size (480 samples) that retains
//! 64 KiB per pooled 7.7 KiB chunk and drags a 64 KiB-strided working set
//! through the cache (zeroing worst-case buffers on miss alone measured ~30%
//! aggregate throughput loss at 256 sessions). Size classes keep the per-chunk
//! footprint proportional to the chunk, and misses allocate *without
//! initializing* (`Vec::with_capacity` + `extend_from_slice`), so the miss path
//! touches only the chunk's own bytes — the same cost as the plain
//! `Vec`-per-push it replaces, while hits touch nothing but the copy.
//!
//! The pool starts empty and *grows on demand*: a miss allocates a buffer of the
//! chunk's class, and the buffer joins its class's freelist after the first trip,
//! so steady state reaches zero allocations without a large up-front reservation
//! (the `server_alloc.rs` counting-allocator test pins this). Chunks larger than
//! the largest class are carried in an exact-size one-shot allocation and never
//! pooled — they would otherwise bloat a pooled class to the worst case. All
//! traffic is counted ([`ChunkPoolStats`]) and surfaced as `chunk_pool_*`
//! counters in the server's metrics snapshot.

use cprecycle_engine::ring::MpmcRing;
// Atomics come through the engine's concurrency facade so the model-check
// suite (tests/conc_chunk_pool.rs, built with --cfg cprecycle_conc) explores
// this source under instrumented atomics.
use cprecycle_engine::sync::atomic::{AtomicU64, Ordering};
use rfdsp::Complex;

/// Default capacity of the largest pooled buffer class, in samples. Sized for
/// the chunk sizes the bench grid and scenarios use (≤ 4096); larger pushes fall
/// back to exact one-shot allocations.
pub const DEFAULT_POOL_BUFFER_SAMPLES: usize = 4096;

/// Smallest buffer class, in samples. Chunks below this still use a
/// `MIN_CLASS_SAMPLES` buffer (512 samples = 8 KiB — small enough that the
/// overshoot is noise, large enough that tiny chunks don't fragment the pool
/// into many classes).
pub const MIN_CLASS_SAMPLES: usize = 512;

/// A recyclable chunk buffer: a class-capacity allocation holding exactly the
/// chunk it currently carries (spare capacity stays uninitialized — it is never
/// read). Dereferences to the live samples.
///
/// # Initialization contract (audited, PR 10)
///
/// The pool's uninitialized-allocation miss path never touches `set_len` or
/// `MaybeUninit`: a miss does `Vec::with_capacity` (len 0, nothing
/// initialized) and the *only* operation that ever grows a buffer's length is
/// `extend_from_slice(chunk)`, which initializes every element it adds.
/// Recycling is `data.clear()` — len back to 0, capacity and allocation
/// preserved, contents abandoned in place but unreachable, since `len` always
/// equals the initialized prefix. So a [`PooledBuf`] invariantly derefs to
/// fully-initialized memory and exactly the chunk of its current trip; the
/// uninitialized spare capacity `len..capacity` is never exposed by any path.
/// (`tests::recycling_contract_len_zero_capacity_preserved` pins this, and
/// the Miri CI job runs this module's tests under the UB checker.)
#[derive(Debug)]
pub struct PooledBuf {
    data: Vec<Complex>,
    /// Index into the pool's `classes`, or `None` for oversize one-shots.
    class: Option<usize>,
}

impl std::ops::Deref for PooledBuf {
    type Target = [Complex];
    fn deref(&self) -> &[Complex] {
        &self.data
    }
}

/// Traffic counters for a [`ChunkPool`] (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkPoolStats {
    /// Acquires served from the freelist (no allocation).
    pub hits: u64,
    /// Acquires that allocated a class-capacity buffer because the freelist was dry.
    pub misses: u64,
    /// Acquires that allocated an exact-size buffer for an oversize chunk.
    pub oversize: u64,
    /// Releases that returned a buffer to the freelist.
    pub recycled: u64,
    /// Releases that dropped the buffer (oversize, or freelist at capacity).
    pub dropped: u64,
}

/// One power-of-two buffer class: a freelist of empty `Vec`s of exactly
/// `samples` capacity.
#[derive(Debug)]
struct SizeClass {
    samples: usize,
    free: MpmcRing<Vec<Complex>>,
}

/// A lock-free, size-classed freelist of sample buffers.
///
/// `acquire` copies a chunk into a recycled (or, on miss, freshly allocated)
/// buffer from the smallest class that fits; `release` returns the buffer to its
/// class after servicing. Both are a single lock-free ring operation plus the
/// copy — safe on the per-push hot path from any number of threads.
#[derive(Debug)]
pub struct ChunkPool {
    /// Ascending capacities; the last entry is `buffer_samples`.
    classes: Box<[SizeClass]>,
    buffer_samples: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    oversize: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

impl ChunkPool {
    /// A pool retaining at most `max_buffers` free buffers *per class*, with
    /// classes doubling from [`MIN_CLASS_SAMPLES`] up to `buffer_samples`
    /// (minimums 1 / 1). The pool holds no buffers until releases populate it, so
    /// only classes the traffic actually uses consume memory.
    pub fn new(max_buffers: usize, buffer_samples: usize) -> Self {
        let buffer_samples = buffer_samples.max(1);
        let mut sizes = Vec::new();
        let mut s = MIN_CLASS_SAMPLES;
        while s < buffer_samples {
            sizes.push(s);
            s *= 2;
        }
        sizes.push(buffer_samples);
        let classes: Vec<SizeClass> = sizes
            .into_iter()
            .map(|samples| SizeClass {
                samples,
                free: MpmcRing::new(max_buffers.max(1)),
            })
            .collect();
        ChunkPool {
            classes: classes.into_boxed_slice(),
            buffer_samples,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The largest pooled-buffer capacity in samples.
    pub fn buffer_samples(&self) -> usize {
        self.buffer_samples
    }

    /// Buffers currently sitting in the freelists, across all classes.
    pub fn free_buffers(&self) -> usize {
        self.classes.iter().map(|c| c.free.len()).sum()
    }

    /// Copies `chunk` into a pooled buffer (freelist hit in the smallest class
    /// that fits, or a fresh buffer of that class on miss; oversize chunks get an
    /// exact-size one-shot buffer).
    pub fn acquire(&self, chunk: &[Complex]) -> PooledBuf {
        let class_idx = self.classes.iter().position(|c| chunk.len() <= c.samples);
        if let Some(i) = class_idx {
            let mut data = match self.classes[i].free.try_pop() {
                Some(data) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    data
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(self.classes[i].samples)
                }
            };
            data.extend_from_slice(chunk);
            PooledBuf {
                data,
                class: Some(i),
            }
        } else {
            self.oversize.fetch_add(1, Ordering::Relaxed);
            PooledBuf {
                data: chunk.to_vec(),
                class: None,
            }
        }
    }

    /// Returns a serviced buffer to its class's freelist (class buffers only;
    /// oversize or overflow buffers are dropped and counted).
    ///
    /// The buffer re-enters the freelist with `len == 0` and only its capacity
    /// preserved (see the [`PooledBuf`] initialization contract): `clear()`
    /// here, not truncation to the next chunk's size, because the next chunk's
    /// size is unknown and `extend_from_slice` on the next trip re-initializes
    /// exactly what it appends.
    pub fn release(&self, buf: PooledBuf) {
        if let Some(i) = buf.class {
            let mut data = buf.data;
            data.clear();
            if self.classes[i].free.try_push(data).is_ok() {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A coherent-enough copy of the traffic counters.
    pub fn stats(&self) -> ChunkPoolStats {
        ChunkPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            oversize: self.oversize.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize, tag: f64) -> Vec<Complex> {
        (0..n).map(|i| Complex::new(i as f64, tag)).collect()
    }

    #[test]
    fn acquire_copies_and_release_recycles() {
        let pool = ChunkPool::new(4, 16);
        let chunk = samples(10, 1.0);
        let buf = pool.acquire(&chunk);
        assert_eq!(&*buf, &chunk[..], "acquired buffer carries the chunk");
        assert_eq!(pool.stats().misses, 1, "first acquire allocates");
        pool.release(buf);
        assert_eq!(pool.free_buffers(), 1);
        let again = pool.acquire(&samples(16, 2.0));
        assert_eq!(pool.stats().hits, 1, "second acquire reuses the buffer");
        assert_eq!(again.len(), 16);
        assert_eq!(again[15], Complex::new(15.0, 2.0), "no stale data");
        pool.release(again);
        assert_eq!(pool.stats().recycled, 2);
    }

    #[test]
    fn oversize_chunks_bypass_the_freelist() {
        let pool = ChunkPool::new(4, 8);
        let big = pool.acquire(&samples(20, 3.0));
        assert_eq!(big.len(), 20);
        assert_eq!(pool.stats().oversize, 1);
        pool.release(big);
        assert_eq!(pool.free_buffers(), 0, "oversize buffers are not pooled");
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn size_classes_keep_footprint_proportional() {
        let pool = ChunkPool::new(4, 4096);
        let small = pool.acquire(&samples(480, 1.0));
        assert_eq!(
            small.data.capacity(),
            MIN_CLASS_SAMPLES,
            "a realtime chunk draws from the smallest class, not the 4096 max"
        );
        let big = pool.acquire(&samples(3000, 2.0));
        assert_eq!(
            big.data.capacity(),
            4096,
            "largest class absorbs big chunks"
        );
        assert_eq!(pool.stats().misses, 2, "classes grow independently");
        pool.release(small);
        pool.release(big);
        assert_eq!(pool.free_buffers(), 2);
        let again = pool.acquire(&samples(100, 3.0));
        assert_eq!(pool.stats().hits, 1, "recycled within its class");
        assert_eq!(again.data.capacity(), MIN_CLASS_SAMPLES);
        assert_eq!(again.len(), 100, "carries exactly the live chunk");
        pool.release(again);
    }

    #[test]
    fn recycling_contract_len_zero_capacity_preserved() {
        // Pins the initialization contract from the `PooledBuf` docs: a
        // recycled buffer comes back len-0 with its class capacity intact, and
        // a shorter follow-up chunk can never see the longer previous
        // occupant's tail (stale samples or — if recycling ever forgot to
        // clear — uninitialized spare capacity).
        let pool = ChunkPool::new(2, 8);
        let long = pool.acquire(&samples(8, 7.0));
        assert_eq!(long.data.len(), 8);
        let cap = long.data.capacity();
        pool.release(long);
        let short = pool.acquire(&samples(3, 1.5));
        assert_eq!(pool.stats().hits, 1, "the recycled buffer is reused");
        assert_eq!(
            short.data.len(),
            3,
            "recycled buffer carries exactly the new chunk, not the old len"
        );
        assert_eq!(
            short.data.capacity(),
            cap,
            "recycling preserves the class allocation"
        );
        assert_eq!(&*short, &samples(3, 1.5)[..], "no stale tail is reachable");
        pool.release(short);
    }

    #[test]
    fn freelist_capacity_bounds_retention() {
        let pool = ChunkPool::new(2, 4);
        let bufs: Vec<PooledBuf> = (0..5)
            .map(|i| pool.acquire(&samples(4, i as f64)))
            .collect();
        assert_eq!(pool.stats().misses, 5);
        for b in bufs {
            pool.release(b);
        }
        assert_eq!(pool.free_buffers(), 2, "retention capped at max_buffers");
        let s = pool.stats();
        assert_eq!(s.recycled, 2);
        assert_eq!(s.dropped, 3);
    }
}
