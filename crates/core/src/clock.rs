//! Monotonic timestamps for server metrics, stubbed deterministic under Miri.
//!
//! The server reads the clock in exactly two places — the push→decode latency
//! span and the `samples_per_sec` gauge — and both are *observability*, not
//! control flow: no scheduling or protocol decision ever branches on elapsed
//! time. That makes the clock safe to stub wholesale under
//! [Miri](https://github.com/rust-lang/miri), whose isolated mode rejects
//! `Instant::now()` as a nondeterministic host syscall. [`Stamp`] is a
//! zero-cost `Instant` wrapper on real builds and a unit struct returning
//! zeros under `cfg(miri)`, so the Miri CI job runs the full ingress path
//! without `-Zmiri-disable-isolation` and the gauges read as zero there.

/// A monotonic timestamp (a real [`std::time::Instant`] except under Miri).
#[derive(Debug, Clone, Copy)]
pub struct Stamp {
    #[cfg(not(miri))]
    at: std::time::Instant,
}

impl Stamp {
    /// The current instant (a fixed dummy under Miri).
    pub fn now() -> Stamp {
        Stamp {
            #[cfg(not(miri))]
            at: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since this stamp, saturating at `u64::MAX` (0 under Miri).
    pub fn elapsed_nanos(&self) -> u64 {
        #[cfg(not(miri))]
        {
            u64::try_from(self.at.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(miri)]
        {
            0
        }
    }

    /// Seconds since this stamp as a float (0.0 under Miri).
    pub fn elapsed_secs_f64(&self) -> f64 {
        #[cfg(not(miri))]
        {
            self.at.elapsed().as_secs_f64()
        }
        #[cfg(miri)]
        {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let s = Stamp::now();
        let a = s.elapsed_nanos();
        let b = s.elapsed_nanos();
        assert!(b >= a, "elapsed never goes backwards");
        assert!(s.elapsed_secs_f64() >= 0.0);
    }
}
