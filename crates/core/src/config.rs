//! Configuration of the CPRecycle receiver.

use crate::estimator::ModelBackend;
use crate::segments::SegmentExtraction;
use rfdsp::kde::BandwidthSelector;

/// Which decoder runs the subcarrier-decision stage (paper §3–§4): the receiver
/// pipeline — sync → extract → **decide** → bit pipeline — is identical for every
/// variant; only the [`SubcarrierDecoder`] dispatched per symbol changes.
///
/// Because the stage is part of [`CpRecycleConfig`], it flows into the campaign
/// engine's point keys: one campaign sweeps decoders alongside SNR and `P`, and
/// `campaign list`/`replay` print which decoder each arm ran.
///
/// ```
/// use cprecycle::{CpRecycleConfig, CpRecycleReceiver, DecisionStage};
/// use ofdmphy::params::OfdmParams;
///
/// // The default is the paper's fixed-sphere ML decoder at R = 2 minimum distances…
/// let sphere = CpRecycleConfig::default();
/// assert!(matches!(
///     sphere.decision,
///     DecisionStage::Sphere { radius_min_distances } if radius_min_distances == 2.0
/// ));
///
/// // …and any other stage is one builder call away: the same receiver, frame layout
/// // and bit pipeline, with the naive Eq. 3 decoder (or `Oracle`, or `Standard`)
/// // slotted into the decision stage.
/// let naive = CpRecycleConfig::builder()
///     .decision(DecisionStage::Naive)
///     .build();
/// let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), naive);
/// assert_eq!(rx.config().decision.label(), "Naive");
/// ```
///
/// [`SubcarrierDecoder`]: crate::decision::SubcarrierDecoder
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionStage {
    /// Fixed-sphere ML over all `P` observations, scored by the preamble-trained
    /// interference model (§4.2, Eq. 5) — the paper's receiver and the default.
    Sphere {
        /// Sphere radius `R` in units of the constellation's minimum distance.
        radius_min_distances: f64,
    },
    /// Minimum average Euclidean distance over all `P` observations (§3.3, Eq. 3 —
    /// the ShiftFFT strawman; [`crate::decision::NaiveCentroidDecoder`]).
    Naive,
    /// Genie-aided best-segment selection from the interference-only waveform (§3.2;
    /// [`crate::decision::OracleSegmentDecoder`]). Requires the interference-only
    /// capture, i.e. [`CpRecycleReceiver::decode_frame_genie`].
    ///
    /// [`CpRecycleReceiver::decode_frame_genie`]: crate::receiver::CpRecycleReceiver::decode_frame_genie
    Oracle,
    /// Nearest lattice point on the standard FFT window only
    /// ([`crate::decision::StandardNearestDecoder`]) — the conventional receiver's
    /// decision, as an explicit arm for decoder sweeps.
    Standard,
}

impl Default for DecisionStage {
    fn default() -> Self {
        DecisionStage::Sphere {
            radius_min_distances: 2.0,
        }
    }
}

impl DecisionStage {
    /// Short human-readable name ("Sphere(R=2)", "Naive", …), used in campaign arm
    /// labels and reports.
    pub fn label(&self) -> String {
        match self {
            DecisionStage::Sphere {
                radius_min_distances,
            } => format!("Sphere(R={radius_min_distances})"),
            DecisionStage::Naive => "Naive".into(),
            DecisionStage::Oracle => "Oracle".into(),
            DecisionStage::Standard => "Standard".into(),
        }
    }

    /// Static stage-family name ("Sphere", "Naive", …) without the tuning
    /// parameters [`label`](Self::label) appends — the allocation-free key the
    /// observability layer uses for its stage spans.
    pub fn kind_label(&self) -> &'static str {
        match self {
            DecisionStage::Sphere { .. } => "Sphere",
            DecisionStage::Naive => "Naive",
            DecisionStage::Oracle => "Oracle",
            DecisionStage::Standard => "Standard",
        }
    }

    /// Whether this stage scores candidates with the preamble-trained interference
    /// model (and the receiver therefore needs to train one).
    pub fn needs_interference_model(&self) -> bool {
        matches!(self, DecisionStage::Sphere { .. })
    }

    /// Whether this stage needs the genie interference-only capture.
    pub fn needs_genie(&self) -> bool {
        matches!(self, DecisionStage::Oracle)
    }
}

/// Floating-point width of the vectorized inner kernels (PR 8): the sliding-DFT
/// slide updates and the grid-KDE batched queries.
///
/// [`F64`](Self::F64) is the reference — every kernel's scalar counterpart runs in
/// `f64`, and the vectorized `f64` paths are pinned to it bit-for-bit (or ≤ 1e-9
/// where operation order changes). [`F32`](Self::F32) halves the memory traffic of
/// those inner loops and doubles the SIMD lane count; its error is bounded by
/// property tests (per-bin spectra within `1e-3`, grid log-likelihoods within
/// `1e-3`) and a whole-frame decision-equivalence test at the Fig. 14 operating
/// point. Precision only affects the *inner* kernels — seeding FFTs, model
/// fitting and the exact-KDE scoring stay `f64` under either setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPrecision {
    /// Full-width kernels — the reference and the default.
    #[default]
    F64,
    /// Half-width inner kernels: f32 sliding-DFT slides and f32 grid queries.
    F32,
}

impl KernelPrecision {
    /// Short name used in campaign arm labels and reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelPrecision::F64 => "F64",
            KernelPrecision::F32 => "F32",
        }
    }
}

/// Tuning knobs of the CPRecycle receiver (the paper's `B_a`, `B_φ`, `R` and `P`
/// parameters from Algorithm 1, plus the bandwidth-selection strategy of §4.1).
///
/// The struct is `#[non_exhaustive]`: fields keep being added as the receiver grows
/// (the extraction kernel in PR 2, the decision stage in PR 3, the estimator backend
/// in PR 4), and every addition used to break every external struct-literal
/// construction site. Downstream crates construct configurations through
/// [`CpRecycleConfig::builder`] (or the `with_*` one-field conveniences), which stay
/// source-compatible across field additions:
///
/// ```
/// use cprecycle::{CpRecycleConfig, DecisionStage};
///
/// let config = CpRecycleConfig::builder()
///     .num_segments(8)
///     .decision(DecisionStage::Naive)
///     .build();
/// assert_eq!(config.num_segments, 8);
/// assert_eq!(config.decision, DecisionStage::Naive);
/// // Untouched knobs keep their defaults.
/// assert_eq!(config.model, CpRecycleConfig::default().model);
/// ```
#[derive(Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CpRecycleConfig {
    /// Maximum number of FFT segments `P` to use per symbol. The effective number is
    /// `min(num_segments, ISI-free samples + 1)`; tuning this down trades interference
    /// mitigation for computation (paper Fig. 14) and `1` degrades gracefully to the
    /// standard receiver.
    pub num_segments: usize,
    /// Amplitude-axis kernel bandwidth `B_a`. `None` selects it from the preamble data
    /// (Silverman / leave-one-out, depending on `data_driven_bandwidth`).
    pub bandwidth_amplitude: Option<f64>,
    /// Phase-axis kernel bandwidth `B_φ`. `None` selects it from the preamble data.
    pub bandwidth_phase: Option<f64>,
    /// Use the data-driven (leave-one-out) bandwidth selection the paper recommends when
    /// at least two preambles are available; otherwise Silverman's rule is used.
    pub data_driven_bandwidth: bool,
    /// The subcarrier-decision stage the receiver dispatches per symbol: the paper's
    /// fixed-sphere ML decoder (with its radius `R`), the naive Eq. 3 decoder, the
    /// genie-aided Oracle or the conventional standard-window decision.
    pub decision: DecisionStage,
    /// Assumed ISI-free samples in the CP when the receiver is told rather than
    /// detecting it (e.g. from a long-term delay-spread estimate). `None` means "use the
    /// whole CP", the correct choice for the indoor delay spreads the paper targets.
    pub isi_free_samples: Option<usize>,
    /// Lower bound on the amplitude-axis kernel bandwidth. Protects the model against
    /// degenerate densities when the preamble happens to be almost interference-free
    /// (all deviations ≈ 0): without a floor the KDE collapses to a spike and every
    /// data-symbol likelihood underflows. Expressed in units of the unit-power
    /// constellation scale.
    pub min_bandwidth_amplitude: f64,
    /// Lower bound on the phase-axis kernel bandwidth, in radians (see
    /// `min_bandwidth_amplitude` for the rationale; the phase of a near-zero error
    /// vector is numerically meaningless, so an un-floored phase bandwidth is even more
    /// fragile).
    pub min_bandwidth_phase: f64,
    /// Which kernel extracts the per-symbol FFT segments: the `O(F)`-per-segment
    /// sliding DFT (default) or the direct per-segment FFT reference implementation.
    /// The two agree to ≤ 1e-9 (property-tested); the switch exists for validation and
    /// A/B timing.
    pub extraction: SegmentExtraction,
    /// Which interference-estimator backend the receiver fits from the preamble
    /// ([`crate::estimator`]): the paper's exact per-sample kernel sum (default, the
    /// reference), the precomputed log-likelihood grid with O(1) lookups, or the cheap
    /// parametric Gaussian fit. Like the decision stage, the backend is part of every
    /// campaign point key, so estimator sweeps are ordinary grid dimensions.
    pub model: ModelBackend,
    /// Floating-point width of the vectorized inner kernels (sliding-DFT slides,
    /// grid-KDE batched queries). [`KernelPrecision::F64`] is the reference and the
    /// default; [`KernelPrecision::F32`] trades ≤ 1e-3 per-query error for roughly
    /// double the SIMD throughput on those loops.
    pub precision: KernelPrecision,
}

// Hand-written so the default `precision: F64` is *omitted*: campaign point keys
// embed this Debug representation (`scenarios::LinkPoint::key`), and the derived
// form would silently re-key — and re-seed — every existing F64 campaign the
// moment the field was added. Only a non-default `F32` shows up, as a new key
// dimension should. Keep the field order in sync with the struct.
impl std::fmt::Debug for CpRecycleConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("CpRecycleConfig");
        s.field("num_segments", &self.num_segments)
            .field("bandwidth_amplitude", &self.bandwidth_amplitude)
            .field("bandwidth_phase", &self.bandwidth_phase)
            .field("data_driven_bandwidth", &self.data_driven_bandwidth)
            .field("decision", &self.decision)
            .field("isi_free_samples", &self.isi_free_samples)
            .field("min_bandwidth_amplitude", &self.min_bandwidth_amplitude)
            .field("min_bandwidth_phase", &self.min_bandwidth_phase)
            .field("extraction", &self.extraction)
            .field("model", &self.model);
        if self.precision != KernelPrecision::F64 {
            s.field("precision", &self.precision);
        }
        s.finish()
    }
}

impl Default for CpRecycleConfig {
    fn default() -> Self {
        CpRecycleConfig {
            num_segments: 16,
            bandwidth_amplitude: None,
            bandwidth_phase: None,
            data_driven_bandwidth: true,
            decision: DecisionStage::default(),
            isi_free_samples: None,
            min_bandwidth_amplitude: 0.05,
            min_bandwidth_phase: 0.2,
            extraction: SegmentExtraction::default(),
            model: ModelBackend::default(),
            precision: KernelPrecision::default(),
        }
    }
}

impl CpRecycleConfig {
    /// A builder starting from the default configuration — the construction path for
    /// code outside this crate (the struct is `#[non_exhaustive]`, so struct literals
    /// don't compose across field additions).
    pub fn builder() -> CpRecycleConfigBuilder {
        CpRecycleConfigBuilder::new()
    }

    /// A configuration with a fixed number of segments (used by the Fig. 14 sweep).
    pub fn with_segments(num_segments: usize) -> Self {
        CpRecycleConfig {
            num_segments,
            ..Default::default()
        }
    }

    /// A configuration with an explicit decision stage (used by the decoder sweeps).
    pub fn with_decision(decision: DecisionStage) -> Self {
        CpRecycleConfig {
            decision,
            ..Default::default()
        }
    }

    /// A configuration with an explicit interference-estimator backend (used by the
    /// `models` campaign sweep).
    pub fn with_model(model: ModelBackend) -> Self {
        CpRecycleConfig {
            model,
            ..Default::default()
        }
    }

    /// The bandwidth-selection strategy implied by this configuration for one axis.
    pub fn bandwidth_selector(&self, fixed: Option<f64>) -> BandwidthSelector {
        match fixed {
            Some(b) => BandwidthSelector::Fixed(b),
            None if self.data_driven_bandwidth => BandwidthSelector::LeaveOneOut,
            None => BandwidthSelector::Silverman,
        }
    }
}

/// Builder for [`CpRecycleConfig`]: each method overrides one knob, everything else
/// keeps its default. Unlike struct literals with functional update, the builder keeps
/// compiling (and keeps meaning the same thing) when new fields are added to the
/// config — see the PR 3/PR 4 churn the `#[non_exhaustive]` note on the struct
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpRecycleConfigBuilder {
    config: CpRecycleConfig,
}

impl CpRecycleConfigBuilder {
    /// A builder holding the default configuration.
    pub fn new() -> Self {
        CpRecycleConfigBuilder::default()
    }

    /// Sets the maximum number of FFT segments `P`.
    pub fn num_segments(mut self, num_segments: usize) -> Self {
        self.config.num_segments = num_segments;
        self
    }

    /// Fixes the amplitude-axis kernel bandwidth `B_a` (`None` = select from data).
    pub fn bandwidth_amplitude(mut self, bandwidth: Option<f64>) -> Self {
        self.config.bandwidth_amplitude = bandwidth;
        self
    }

    /// Fixes the phase-axis kernel bandwidth `B_φ` (`None` = select from data).
    pub fn bandwidth_phase(mut self, bandwidth: Option<f64>) -> Self {
        self.config.bandwidth_phase = bandwidth;
        self
    }

    /// Enables/disables data-driven (leave-one-out) bandwidth selection.
    pub fn data_driven_bandwidth(mut self, data_driven: bool) -> Self {
        self.config.data_driven_bandwidth = data_driven;
        self
    }

    /// Sets the subcarrier-decision stage.
    pub fn decision(mut self, decision: DecisionStage) -> Self {
        self.config.decision = decision;
        self
    }

    /// Tells the receiver how many ISI-free CP samples to assume (`None` = whole CP).
    pub fn isi_free_samples(mut self, isi_free_samples: Option<usize>) -> Self {
        self.config.isi_free_samples = isi_free_samples;
        self
    }

    /// Sets the amplitude-axis bandwidth floor.
    pub fn min_bandwidth_amplitude(mut self, floor: f64) -> Self {
        self.config.min_bandwidth_amplitude = floor;
        self
    }

    /// Sets the phase-axis bandwidth floor (radians).
    pub fn min_bandwidth_phase(mut self, floor: f64) -> Self {
        self.config.min_bandwidth_phase = floor;
        self
    }

    /// Selects the segment-extraction kernel.
    pub fn extraction(mut self, extraction: SegmentExtraction) -> Self {
        self.config.extraction = extraction;
        self
    }

    /// Selects the interference-estimator backend.
    pub fn model(mut self, model: ModelBackend) -> Self {
        self.config.model = model;
        self
    }

    /// Selects the floating-point width of the vectorized inner kernels.
    pub fn precision(mut self, precision: KernelPrecision) -> Self {
        self.config.precision = precision;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CpRecycleConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_whole_cp_and_data_driven_bandwidths() {
        let c = CpRecycleConfig::default();
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.extraction, SegmentExtraction::Sliding);
        assert!(c.data_driven_bandwidth);
        assert!(c.isi_free_samples.is_none());
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::LeaveOneOut);
        assert_eq!(
            c.bandwidth_selector(Some(0.3)),
            BandwidthSelector::Fixed(0.3)
        );
    }

    #[test]
    fn with_segments_overrides_only_p() {
        let c = CpRecycleConfig::with_segments(4);
        assert_eq!(c.num_segments, 4);
        assert_eq!(c.decision, CpRecycleConfig::default().decision);
    }

    #[test]
    fn with_decision_overrides_only_the_stage() {
        let c = CpRecycleConfig::with_decision(DecisionStage::Oracle);
        assert_eq!(c.decision, DecisionStage::Oracle);
        assert_eq!(c.num_segments, CpRecycleConfig::default().num_segments);
    }

    #[test]
    fn with_model_overrides_only_the_backend() {
        assert_eq!(CpRecycleConfig::default().model, ModelBackend::ExactKde);
        let c = CpRecycleConfig::with_model(ModelBackend::GridKde);
        assert_eq!(c.model, ModelBackend::GridKde);
        assert_eq!(c.decision, CpRecycleConfig::default().decision);
        assert_eq!(c.num_segments, CpRecycleConfig::default().num_segments);
    }

    #[test]
    fn decision_stage_labels_and_requirements() {
        assert_eq!(DecisionStage::default().label(), "Sphere(R=2)");
        assert_eq!(
            DecisionStage::Sphere {
                radius_min_distances: 0.5
            }
            .label(),
            "Sphere(R=0.5)"
        );
        assert_eq!(DecisionStage::Naive.label(), "Naive");
        assert_eq!(DecisionStage::Oracle.label(), "Oracle");
        assert_eq!(DecisionStage::Standard.label(), "Standard");
        assert_eq!(DecisionStage::default().kind_label(), "Sphere");
        assert_eq!(DecisionStage::Naive.kind_label(), "Naive");
        assert_eq!(DecisionStage::Oracle.kind_label(), "Oracle");
        assert_eq!(DecisionStage::Standard.kind_label(), "Standard");
        assert!(DecisionStage::default().needs_interference_model());
        assert!(!DecisionStage::Naive.needs_interference_model());
        assert!(DecisionStage::Oracle.needs_genie());
        assert!(!DecisionStage::Standard.needs_genie());
    }

    #[test]
    fn builder_overrides_compose_and_default_to_default() {
        assert_eq!(
            CpRecycleConfig::builder().build(),
            CpRecycleConfig::default()
        );
        let c = CpRecycleConfig::builder()
            .num_segments(4)
            .bandwidth_amplitude(Some(0.3))
            .bandwidth_phase(Some(0.7))
            .data_driven_bandwidth(false)
            .decision(DecisionStage::Oracle)
            .isi_free_samples(Some(9))
            .min_bandwidth_amplitude(0.01)
            .min_bandwidth_phase(0.02)
            .extraction(SegmentExtraction::Direct)
            .model(crate::estimator::ModelBackend::Gaussian)
            .build();
        assert_eq!(c.num_segments, 4);
        assert_eq!(c.bandwidth_amplitude, Some(0.3));
        assert_eq!(c.bandwidth_phase, Some(0.7));
        assert!(!c.data_driven_bandwidth);
        assert_eq!(c.decision, DecisionStage::Oracle);
        assert_eq!(c.isi_free_samples, Some(9));
        assert_eq!(c.min_bandwidth_amplitude, 0.01);
        assert_eq!(c.min_bandwidth_phase, 0.02);
        assert_eq!(c.extraction, SegmentExtraction::Direct);
        assert_eq!(c.model, crate::estimator::ModelBackend::Gaussian);
        // The builder agrees with the one-field conveniences.
        assert_eq!(
            CpRecycleConfig::builder().num_segments(7).build(),
            CpRecycleConfig::with_segments(7)
        );
        assert_eq!(
            CpRecycleConfig::builder()
                .decision(DecisionStage::Naive)
                .build(),
            CpRecycleConfig::with_decision(DecisionStage::Naive)
        );
    }

    #[test]
    fn precision_defaults_to_f64_and_stays_out_of_the_default_key() {
        let c = CpRecycleConfig::default();
        assert_eq!(c.precision, KernelPrecision::F64);
        assert_eq!(KernelPrecision::F64.label(), "F64");
        assert_eq!(KernelPrecision::F32.label(), "F32");
        // The Debug form — embedded in campaign point keys — must not change for
        // F64 configs when the precision field is at its default…
        let key = format!("{c:?}");
        assert!(
            !key.contains("precision"),
            "default key must omit precision: {key}"
        );
        assert!(key.starts_with("CpRecycleConfig {"));
        assert!(key.contains("model: ExactKde"));
        // …and an explicit F32 must show up as a new key dimension.
        let f32_cfg = CpRecycleConfig::builder()
            .precision(KernelPrecision::F32)
            .build();
        assert!(format!("{f32_cfg:?}").contains("precision: F32"));
        assert_eq!(
            CpRecycleConfig::builder()
                .precision(KernelPrecision::F64)
                .build(),
            CpRecycleConfig::default()
        );
    }

    #[test]
    fn silverman_when_data_driven_disabled() {
        let c = CpRecycleConfig {
            data_driven_bandwidth: false,
            ..Default::default()
        };
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::Silverman);
    }
}
