//! Configuration of the CPRecycle receiver.

use crate::segments::SegmentExtraction;
use rfdsp::kde::BandwidthSelector;

/// Tuning knobs of the CPRecycle receiver (the paper's `B_a`, `B_φ`, `R` and `P`
/// parameters from Algorithm 1, plus the bandwidth-selection strategy of §4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpRecycleConfig {
    /// Maximum number of FFT segments `P` to use per symbol. The effective number is
    /// `min(num_segments, ISI-free samples + 1)`; tuning this down trades interference
    /// mitigation for computation (paper Fig. 14) and `1` degrades gracefully to the
    /// standard receiver.
    pub num_segments: usize,
    /// Amplitude-axis kernel bandwidth `B_a`. `None` selects it from the preamble data
    /// (Silverman / leave-one-out, depending on `data_driven_bandwidth`).
    pub bandwidth_amplitude: Option<f64>,
    /// Phase-axis kernel bandwidth `B_φ`. `None` selects it from the preamble data.
    pub bandwidth_phase: Option<f64>,
    /// Use the data-driven (leave-one-out) bandwidth selection the paper recommends when
    /// at least two preambles are available; otherwise Silverman's rule is used.
    pub data_driven_bandwidth: bool,
    /// Fixed-sphere radius `R` for the ML decoder, in units of the minimum distance of
    /// the constellation in use (a radius of 2.0 means "lattice points within twice the
    /// nearest-neighbour spacing of the centroid").
    pub sphere_radius_min_distances: f64,
    /// Assumed ISI-free samples in the CP when the receiver is told rather than
    /// detecting it (e.g. from a long-term delay-spread estimate). `None` means "use the
    /// whole CP", the correct choice for the indoor delay spreads the paper targets.
    pub isi_free_samples: Option<usize>,
    /// Lower bound on the amplitude-axis kernel bandwidth. Protects the model against
    /// degenerate densities when the preamble happens to be almost interference-free
    /// (all deviations ≈ 0): without a floor the KDE collapses to a spike and every
    /// data-symbol likelihood underflows. Expressed in units of the unit-power
    /// constellation scale.
    pub min_bandwidth_amplitude: f64,
    /// Lower bound on the phase-axis kernel bandwidth, in radians (see
    /// `min_bandwidth_amplitude` for the rationale; the phase of a near-zero error
    /// vector is numerically meaningless, so an un-floored phase bandwidth is even more
    /// fragile).
    pub min_bandwidth_phase: f64,
    /// Which kernel extracts the per-symbol FFT segments: the `O(F)`-per-segment
    /// sliding DFT (default) or the direct per-segment FFT reference implementation.
    /// The two agree to ≤ 1e-9 (property-tested); the switch exists for validation and
    /// A/B timing.
    pub extraction: SegmentExtraction,
}

impl Default for CpRecycleConfig {
    fn default() -> Self {
        CpRecycleConfig {
            num_segments: 16,
            bandwidth_amplitude: None,
            bandwidth_phase: None,
            data_driven_bandwidth: true,
            sphere_radius_min_distances: 2.0,
            isi_free_samples: None,
            min_bandwidth_amplitude: 0.05,
            min_bandwidth_phase: 0.2,
            extraction: SegmentExtraction::default(),
        }
    }
}

impl CpRecycleConfig {
    /// A configuration with a fixed number of segments (used by the Fig. 14 sweep).
    pub fn with_segments(num_segments: usize) -> Self {
        CpRecycleConfig {
            num_segments,
            ..Default::default()
        }
    }

    /// The bandwidth-selection strategy implied by this configuration for one axis.
    pub fn bandwidth_selector(&self, fixed: Option<f64>) -> BandwidthSelector {
        match fixed {
            Some(b) => BandwidthSelector::Fixed(b),
            None if self.data_driven_bandwidth => BandwidthSelector::LeaveOneOut,
            None => BandwidthSelector::Silverman,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_whole_cp_and_data_driven_bandwidths() {
        let c = CpRecycleConfig::default();
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.extraction, SegmentExtraction::Sliding);
        assert!(c.data_driven_bandwidth);
        assert!(c.isi_free_samples.is_none());
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::LeaveOneOut);
        assert_eq!(
            c.bandwidth_selector(Some(0.3)),
            BandwidthSelector::Fixed(0.3)
        );
    }

    #[test]
    fn with_segments_overrides_only_p() {
        let c = CpRecycleConfig::with_segments(4);
        assert_eq!(c.num_segments, 4);
        assert_eq!(
            c.sphere_radius_min_distances,
            CpRecycleConfig::default().sphere_radius_min_distances
        );
    }

    #[test]
    fn silverman_when_data_driven_disabled() {
        let c = CpRecycleConfig {
            data_driven_bandwidth: false,
            ..Default::default()
        };
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::Silverman);
    }
}
