//! Configuration of the CPRecycle receiver.

use crate::estimator::ModelBackend;
use crate::segments::SegmentExtraction;
use rfdsp::kde::BandwidthSelector;

/// Which decoder runs the subcarrier-decision stage (paper §3–§4): the receiver
/// pipeline — sync → extract → **decide** → bit pipeline — is identical for every
/// variant; only the [`SubcarrierDecoder`] dispatched per symbol changes.
///
/// Because the stage is part of [`CpRecycleConfig`], it flows into the campaign
/// engine's point keys: one campaign sweeps decoders alongside SNR and `P`, and
/// `campaign list`/`replay` print which decoder each arm ran.
///
/// ```
/// use cprecycle::{CpRecycleConfig, CpRecycleReceiver, DecisionStage};
/// use ofdmphy::params::OfdmParams;
///
/// // The default is the paper's fixed-sphere ML decoder at R = 2 minimum distances…
/// let sphere = CpRecycleConfig::default();
/// assert!(matches!(
///     sphere.decision,
///     DecisionStage::Sphere { radius_min_distances } if radius_min_distances == 2.0
/// ));
///
/// // …and any other stage is one field away: the same receiver, frame layout and bit
/// // pipeline, with the naive Eq. 3 decoder (or `Oracle`, or `Standard`) slotted into
/// // the decision stage.
/// let naive = CpRecycleConfig {
///     decision: DecisionStage::Naive,
///     ..Default::default()
/// };
/// let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), naive);
/// assert_eq!(rx.config().decision.label(), "Naive");
/// ```
///
/// [`SubcarrierDecoder`]: crate::decision::SubcarrierDecoder
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionStage {
    /// Fixed-sphere ML over all `P` observations, scored by the preamble-trained
    /// interference model (§4.2, Eq. 5) — the paper's receiver and the default.
    Sphere {
        /// Sphere radius `R` in units of the constellation's minimum distance.
        radius_min_distances: f64,
    },
    /// Minimum average Euclidean distance over all `P` observations (§3.3, Eq. 3 —
    /// the ShiftFFT strawman; [`crate::decision::NaiveCentroidDecoder`]).
    Naive,
    /// Genie-aided best-segment selection from the interference-only waveform (§3.2;
    /// [`crate::decision::OracleSegmentDecoder`]). Requires the interference-only
    /// capture, i.e. [`CpRecycleReceiver::decode_frame_genie`].
    ///
    /// [`CpRecycleReceiver::decode_frame_genie`]: crate::receiver::CpRecycleReceiver::decode_frame_genie
    Oracle,
    /// Nearest lattice point on the standard FFT window only
    /// ([`crate::decision::StandardNearestDecoder`]) — the conventional receiver's
    /// decision, as an explicit arm for decoder sweeps.
    Standard,
}

impl Default for DecisionStage {
    fn default() -> Self {
        DecisionStage::Sphere {
            radius_min_distances: 2.0,
        }
    }
}

impl DecisionStage {
    /// Short human-readable name ("Sphere(R=2)", "Naive", …), used in campaign arm
    /// labels and reports.
    pub fn label(&self) -> String {
        match self {
            DecisionStage::Sphere {
                radius_min_distances,
            } => format!("Sphere(R={radius_min_distances})"),
            DecisionStage::Naive => "Naive".into(),
            DecisionStage::Oracle => "Oracle".into(),
            DecisionStage::Standard => "Standard".into(),
        }
    }

    /// Whether this stage scores candidates with the preamble-trained interference
    /// model (and the receiver therefore needs to train one).
    pub fn needs_interference_model(&self) -> bool {
        matches!(self, DecisionStage::Sphere { .. })
    }

    /// Whether this stage needs the genie interference-only capture.
    pub fn needs_genie(&self) -> bool {
        matches!(self, DecisionStage::Oracle)
    }
}

/// Tuning knobs of the CPRecycle receiver (the paper's `B_a`, `B_φ`, `R` and `P`
/// parameters from Algorithm 1, plus the bandwidth-selection strategy of §4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpRecycleConfig {
    /// Maximum number of FFT segments `P` to use per symbol. The effective number is
    /// `min(num_segments, ISI-free samples + 1)`; tuning this down trades interference
    /// mitigation for computation (paper Fig. 14) and `1` degrades gracefully to the
    /// standard receiver.
    pub num_segments: usize,
    /// Amplitude-axis kernel bandwidth `B_a`. `None` selects it from the preamble data
    /// (Silverman / leave-one-out, depending on `data_driven_bandwidth`).
    pub bandwidth_amplitude: Option<f64>,
    /// Phase-axis kernel bandwidth `B_φ`. `None` selects it from the preamble data.
    pub bandwidth_phase: Option<f64>,
    /// Use the data-driven (leave-one-out) bandwidth selection the paper recommends when
    /// at least two preambles are available; otherwise Silverman's rule is used.
    pub data_driven_bandwidth: bool,
    /// The subcarrier-decision stage the receiver dispatches per symbol: the paper's
    /// fixed-sphere ML decoder (with its radius `R`), the naive Eq. 3 decoder, the
    /// genie-aided Oracle or the conventional standard-window decision.
    pub decision: DecisionStage,
    /// Assumed ISI-free samples in the CP when the receiver is told rather than
    /// detecting it (e.g. from a long-term delay-spread estimate). `None` means "use the
    /// whole CP", the correct choice for the indoor delay spreads the paper targets.
    pub isi_free_samples: Option<usize>,
    /// Lower bound on the amplitude-axis kernel bandwidth. Protects the model against
    /// degenerate densities when the preamble happens to be almost interference-free
    /// (all deviations ≈ 0): without a floor the KDE collapses to a spike and every
    /// data-symbol likelihood underflows. Expressed in units of the unit-power
    /// constellation scale.
    pub min_bandwidth_amplitude: f64,
    /// Lower bound on the phase-axis kernel bandwidth, in radians (see
    /// `min_bandwidth_amplitude` for the rationale; the phase of a near-zero error
    /// vector is numerically meaningless, so an un-floored phase bandwidth is even more
    /// fragile).
    pub min_bandwidth_phase: f64,
    /// Which kernel extracts the per-symbol FFT segments: the `O(F)`-per-segment
    /// sliding DFT (default) or the direct per-segment FFT reference implementation.
    /// The two agree to ≤ 1e-9 (property-tested); the switch exists for validation and
    /// A/B timing.
    pub extraction: SegmentExtraction,
    /// Which interference-estimator backend the receiver fits from the preamble
    /// ([`crate::estimator`]): the paper's exact per-sample kernel sum (default, the
    /// reference), the precomputed log-likelihood grid with O(1) lookups, or the cheap
    /// parametric Gaussian fit. Like the decision stage, the backend is part of every
    /// campaign point key, so estimator sweeps are ordinary grid dimensions.
    pub model: ModelBackend,
}

impl Default for CpRecycleConfig {
    fn default() -> Self {
        CpRecycleConfig {
            num_segments: 16,
            bandwidth_amplitude: None,
            bandwidth_phase: None,
            data_driven_bandwidth: true,
            decision: DecisionStage::default(),
            isi_free_samples: None,
            min_bandwidth_amplitude: 0.05,
            min_bandwidth_phase: 0.2,
            extraction: SegmentExtraction::default(),
            model: ModelBackend::default(),
        }
    }
}

impl CpRecycleConfig {
    /// A configuration with a fixed number of segments (used by the Fig. 14 sweep).
    pub fn with_segments(num_segments: usize) -> Self {
        CpRecycleConfig {
            num_segments,
            ..Default::default()
        }
    }

    /// A configuration with an explicit decision stage (used by the decoder sweeps).
    pub fn with_decision(decision: DecisionStage) -> Self {
        CpRecycleConfig {
            decision,
            ..Default::default()
        }
    }

    /// A configuration with an explicit interference-estimator backend (used by the
    /// `models` campaign sweep).
    pub fn with_model(model: ModelBackend) -> Self {
        CpRecycleConfig {
            model,
            ..Default::default()
        }
    }

    /// The bandwidth-selection strategy implied by this configuration for one axis.
    pub fn bandwidth_selector(&self, fixed: Option<f64>) -> BandwidthSelector {
        match fixed {
            Some(b) => BandwidthSelector::Fixed(b),
            None if self.data_driven_bandwidth => BandwidthSelector::LeaveOneOut,
            None => BandwidthSelector::Silverman,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_whole_cp_and_data_driven_bandwidths() {
        let c = CpRecycleConfig::default();
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.extraction, SegmentExtraction::Sliding);
        assert!(c.data_driven_bandwidth);
        assert!(c.isi_free_samples.is_none());
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::LeaveOneOut);
        assert_eq!(
            c.bandwidth_selector(Some(0.3)),
            BandwidthSelector::Fixed(0.3)
        );
    }

    #[test]
    fn with_segments_overrides_only_p() {
        let c = CpRecycleConfig::with_segments(4);
        assert_eq!(c.num_segments, 4);
        assert_eq!(c.decision, CpRecycleConfig::default().decision);
    }

    #[test]
    fn with_decision_overrides_only_the_stage() {
        let c = CpRecycleConfig::with_decision(DecisionStage::Oracle);
        assert_eq!(c.decision, DecisionStage::Oracle);
        assert_eq!(c.num_segments, CpRecycleConfig::default().num_segments);
    }

    #[test]
    fn with_model_overrides_only_the_backend() {
        assert_eq!(CpRecycleConfig::default().model, ModelBackend::ExactKde);
        let c = CpRecycleConfig::with_model(ModelBackend::GridKde);
        assert_eq!(c.model, ModelBackend::GridKde);
        assert_eq!(c.decision, CpRecycleConfig::default().decision);
        assert_eq!(c.num_segments, CpRecycleConfig::default().num_segments);
    }

    #[test]
    fn decision_stage_labels_and_requirements() {
        assert_eq!(DecisionStage::default().label(), "Sphere(R=2)");
        assert_eq!(
            DecisionStage::Sphere {
                radius_min_distances: 0.5
            }
            .label(),
            "Sphere(R=0.5)"
        );
        assert_eq!(DecisionStage::Naive.label(), "Naive");
        assert_eq!(DecisionStage::Oracle.label(), "Oracle");
        assert_eq!(DecisionStage::Standard.label(), "Standard");
        assert!(DecisionStage::default().needs_interference_model());
        assert!(!DecisionStage::Naive.needs_interference_model());
        assert!(DecisionStage::Oracle.needs_genie());
        assert!(!DecisionStage::Standard.needs_genie());
    }

    #[test]
    fn silverman_when_data_driven_disabled() {
        let c = CpRecycleConfig {
            data_driven_bandwidth: false,
            ..Default::default()
        };
        assert_eq!(c.bandwidth_selector(None), BandwidthSelector::Silverman);
    }
}
