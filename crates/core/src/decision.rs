//! The subcarrier-decision stage: one trait, four decoders.
//!
//! The paper's receivers differ *only* in how they map a subcarrier's `P` segment
//! observations to a lattice point — the fixed-sphere ML search of §4.2 (Eq. 5), the
//! naive average-distance decoder of §3.3 (Eq. 3), the genie-aided Oracle of §3.2 and
//! the conventional single-window nearest-point decision. [`SubcarrierDecoder`] makes
//! that stage a first-class extension point: every decoder consumes the bin-major
//! observation slices of [`SymbolSegments`], emits `u16` lattice indices into the
//! cached [`Modulation::lattice`] table (no per-candidate bit-vector clones), and
//! shares one [`DecoderScratch`] so candidate enumeration is allocation-free after
//! warm-up.
//!
//! Which decoder runs is selected by [`crate::config::DecisionStage`] and dispatched
//! by [`crate::receiver::CpRecycleReceiver`]; future receivers (soft-decision,
//! learned equalizers) slot in by implementing the trait.
//!
//! The sphere decoder itself lives in [`crate::sphere_ml`]; this module holds the
//! trait, the scratch and the three lattice-geometry decoders.

use crate::segments::{SegmentPowers, SymbolSegments};
use ofdmphy::modulation::{Lattice, Modulation};
use rfdsp::Complex;

/// One decided lattice point: its index into [`Modulation::lattice`] plus the
/// constellation value. The index is the stable identity (the bits of index `i` are
/// `i` itself, MSB first), so downstream stages can recover bits without cloning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticePoint {
    /// Index into the modulation's lattice table.
    pub index: u16,
    /// The constellation value at that index.
    pub value: Complex,
}

impl LatticePoint {
    /// The bits this point encodes under `modulation`, borrowed from the cached
    /// lattice table.
    pub fn bits(self, modulation: Modulation) -> &'static [u8] {
        modulation.lattice().bits_of(self.index)
    }
}

/// Reusable decision buffers: the candidate lattice-index buffer and the
/// per-candidate log-likelihood buffer.
///
/// Construct one per worker (the receiver threads the one inside
/// [`crate::segments::SegmentScratch`]) and pass it to every
/// [`SubcarrierDecoder::decide`] call; after the first symbol of a given modulation
/// the buffers are at full lattice capacity and never reallocate — the regression
/// test in `crates/core/tests/decision_equivalence.rs` pins this across a
/// 1000-symbol decode.
#[derive(Debug, Clone, Default)]
pub struct DecoderScratch {
    /// Candidate lattice indices of the current subcarrier.
    pub(crate) candidates: Vec<u16>,
    /// Log-likelihood score of each candidate, parallel to `candidates`.
    pub(crate) scores: Vec<f64>,
    /// Candidate-major deviation amplitudes (`candidates.len() × P` entries) — the
    /// batched sphere decoder hoists every candidate/observation deviation here so
    /// one `log_likelihood_batch` call scores them all.
    pub(crate) dev_amp: Vec<f64>,
    /// Deviation phases, parallel to `dev_amp`.
    pub(crate) dev_phase: Vec<f64>,
    /// Per-query log-likelihoods, parallel to `dev_amp`; summed in chunks of `P` to
    /// produce `scores`.
    pub(crate) log_likes: Vec<f64>,
}

impl DecoderScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        DecoderScratch::default()
    }

    /// Clears the buffers and reserves the worst case (the full lattice of
    /// `modulation`) so subsequent pushes cannot reallocate.
    pub(crate) fn prepare(&mut self, modulation: Modulation) {
        let n = modulation.num_points();
        self.candidates.clear();
        self.candidates.reserve(n);
        self.scores.clear();
        self.scores.reserve(n);
    }

    /// Current capacity of the candidate buffer — a diagnostic for the
    /// zero-reallocation regression test.
    pub fn candidate_capacity(&self) -> usize {
        self.candidates.capacity()
    }
}

/// A subcarrier-decision stage: maps the `P` segment observations of one FFT bin to a
/// lattice point of its modulation.
///
/// Contract shared by all implementations:
///
/// * `observations` is the bin-major slice [`SymbolSegments::bin_observations`]
///   (segment `P − 1` last — the standard receiver's window) and is never empty;
/// * `bin` is the FFT bin index, for decoders with per-subcarrier state (the sphere
///   decoder's interference model, the Oracle's power table);
/// * decisions are deterministic and allocation-free given a warmed-up scratch.
pub trait SubcarrierDecoder {
    /// The modulation whose lattice this decoder decides over.
    fn modulation(&self) -> Modulation;

    /// Decides one subcarrier from its `P` segment observations.
    fn decide(
        &self,
        bin: usize,
        observations: &[Complex],
        scratch: &mut DecoderScratch,
    ) -> LatticePoint;

    /// Decides a whole symbol: every FFT bin in `bins` (increasing order) is decided
    /// from its contiguous observation slice; the decided constellation values are
    /// returned in the same order, ready for the shared `ofdmphy` bit pipeline.
    fn decide_symbol(
        &self,
        segments: &SymbolSegments,
        bins: &[usize],
        scratch: &mut DecoderScratch,
    ) -> Vec<Complex> {
        let mut out = Vec::with_capacity(bins.len());
        self.decide_symbol_into(segments, bins, scratch, &mut out);
        out
    }

    /// [`decide_symbol`](Self::decide_symbol) into a caller-owned buffer (cleared
    /// first) — the fully allocation-free batched path.
    fn decide_symbol_into(
        &self,
        segments: &SymbolSegments,
        bins: &[usize],
        scratch: &mut DecoderScratch,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        out.reserve(bins.len());
        for &bin in bins {
            out.push(
                self.decide(bin, segments.bin_observations(bin), scratch)
                    .value,
            );
        }
    }
}

/// The naive multi-segment decoder (paper §3.3, Eq. 3) — the authors' earlier
/// ShiftFFT approach and the strawman CPRecycle improves upon.
///
/// For each subcarrier it picks the lattice point with the minimum *average Euclidean
/// distance* to the `P` segment observations:
///
/// ```text
/// l* = argmin_{l ∈ L} Σ_j |X̂_j − l|
/// ```
///
/// The paper identifies three weaknesses (sensitivity of the arithmetic mean to
/// outliers, the assumption that clean observations sit exactly on the lattice point,
/// and ignoring phase structure); the tests below reproduce the outlier failure mode
/// that motivates the KDE + ML design.
#[derive(Debug, Clone, Copy)]
pub struct NaiveCentroidDecoder {
    modulation: Modulation,
    lattice: &'static Lattice,
}

impl NaiveCentroidDecoder {
    /// Creates a naive decoder for `modulation`.
    pub fn new(modulation: Modulation) -> Self {
        NaiveCentroidDecoder {
            modulation,
            lattice: modulation.lattice(),
        }
    }
}

impl SubcarrierDecoder for NaiveCentroidDecoder {
    fn modulation(&self) -> Modulation {
        self.modulation
    }

    fn decide(
        &self,
        _bin: usize,
        observations: &[Complex],
        _scratch: &mut DecoderScratch,
    ) -> LatticePoint {
        let mut best = 0u16;
        let mut best_metric = f64::INFINITY;
        for (i, point) in self.lattice.points().iter().enumerate() {
            let metric: f64 = observations.iter().map(|o| (*o - *point).norm()).sum();
            if metric < best_metric {
                best_metric = metric;
                best = i as u16;
            }
        }
        LatticePoint {
            index: best,
            value: self.lattice.point(best),
        }
    }
}

/// The conventional receiver's decision: nearest lattice point on the standard FFT
/// window (the last segment), ignoring the other `P − 1` observations. This is what a
/// CP-discarding receiver computes, made available as a [`SubcarrierDecoder`] so the
/// receiver sweep can include it as an arm and so `P = 1` configurations have an
/// explicit non-ML reference.
#[derive(Debug, Clone, Copy)]
pub struct StandardNearestDecoder {
    modulation: Modulation,
    lattice: &'static Lattice,
}

impl StandardNearestDecoder {
    /// Creates a standard-window decoder for `modulation`.
    pub fn new(modulation: Modulation) -> Self {
        StandardNearestDecoder {
            modulation,
            lattice: modulation.lattice(),
        }
    }
}

impl SubcarrierDecoder for StandardNearestDecoder {
    fn modulation(&self) -> Modulation {
        self.modulation
    }

    fn decide(
        &self,
        _bin: usize,
        observations: &[Complex],
        _scratch: &mut DecoderScratch,
    ) -> LatticePoint {
        let standard = *observations
            .last()
            .expect("at least one segment observation");
        let index = self.lattice.nearest_index(standard);
        LatticePoint {
            index,
            value: self.lattice.point(index),
        }
    }
}

/// The Oracle segment selector (paper §3.2): with perfect knowledge of the
/// per-segment interference power (a [`SegmentPowers`] measured from the
/// interference-only waveform), each subcarrier takes the observation of its
/// least-interfered segment and maps it to the nearest lattice point.
///
/// Impractical — the whole point of CPRecycle is to approach it without the genie —
/// but it upper-bounds the achievable gain and generates Fig. 4a / Fig. 5. Bind a
/// fresh decoder per symbol: it only borrows that symbol's power table, so
/// construction is free of allocation.
#[derive(Debug, Clone, Copy)]
pub struct OracleSegmentDecoder<'p> {
    modulation: Modulation,
    lattice: &'static Lattice,
    powers: &'p SegmentPowers,
}

impl<'p> OracleSegmentDecoder<'p> {
    /// Creates an Oracle decoder over the interference powers of one symbol.
    pub fn new(modulation: Modulation, powers: &'p SegmentPowers) -> Self {
        OracleSegmentDecoder {
            modulation,
            lattice: modulation.lattice(),
            powers,
        }
    }

    /// The genie-selected (minimum-interference) segment of one bin; the first
    /// minimum wins on ties, matching [`crate::oracle::select_best_segments`].
    pub fn best_segment(&self, bin: usize) -> usize {
        let mut best = 0usize;
        let mut min_power = f64::INFINITY;
        for (j, &p) in self.powers.bin_powers(bin).iter().enumerate() {
            if p < min_power {
                min_power = p;
                best = j;
            }
        }
        best
    }
}

impl SubcarrierDecoder for OracleSegmentDecoder<'_> {
    fn modulation(&self) -> Modulation {
        self.modulation
    }

    fn decide(
        &self,
        bin: usize,
        observations: &[Complex],
        _scratch: &mut DecoderScratch,
    ) -> LatticePoint {
        let segment = self.best_segment(bin).min(observations.len() - 1);
        let index = self.lattice.nearest_index(observations[segment]);
        LatticePoint {
            index,
            value: self.lattice.point(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::SymbolSegments;

    fn scratch() -> DecoderScratch {
        DecoderScratch::new()
    }

    #[test]
    fn naive_decodes_clean_observations() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            let dec = NaiveCentroidDecoder::new(m);
            assert_eq!(dec.modulation(), m);
            let mut s = scratch();
            for (i, (point, bits)) in m.constellation().into_iter().enumerate() {
                let obs = vec![point; 5];
                let decided = dec.decide(0, &obs, &mut s);
                assert_eq!(decided.index, i as u16);
                assert!((decided.value - point).norm() < 1e-12);
                assert_eq!(decided.bits(m), &bits[..]);
            }
        }
    }

    #[test]
    fn naive_averages_out_moderate_noise() {
        let m = Modulation::Qpsk;
        let dec = NaiveCentroidDecoder::new(m);
        let target = m.points()[2];
        // Small, zero-mean perturbations around the target.
        let obs: Vec<Complex> = [
            Complex::new(0.1, 0.05),
            Complex::new(-0.1, -0.05),
            Complex::new(0.05, -0.1),
            Complex::new(-0.05, 0.1),
            Complex::new(0.0, 0.0),
        ]
        .iter()
        .map(|d| target + *d)
        .collect();
        let decided = dec.decide(0, &obs, &mut scratch());
        assert!((decided.value - target).norm() < 1e-12);
    }

    #[test]
    fn strong_interference_on_most_segments_breaks_the_naive_decoder() {
        // Reproduces the failure mode of paper §3.3 / Fig. 4c: the transmitted BPSK
        // point is +1, two segments observe it cleanly, but three segments are hit by a
        // strong interference vector that drags the observation past the decision
        // boundary. The average-distance metric is dominated by the corrupted majority
        // and flips the decision — even though the clean segments (plus knowledge of
        // the interference statistics) would identify +1, which is what the CPRecycle
        // ML decoder does in `sphere_ml::tests`.
        let dec = NaiveCentroidDecoder::new(Modulation::Bpsk);
        let true_point = Complex::new(1.0, 0.0);
        let obs = vec![
            Complex::new(1.02, 0.01),
            Complex::new(0.99, -0.02),
            Complex::new(-2.1, 0.15), // +1 plus an interference vector of amplitude ≈ 3.1
            Complex::new(-2.05, -0.1),
            Complex::new(-2.12, 0.05),
        ];
        let decided = dec.decide(0, &obs, &mut scratch());
        assert!(
            (decided.value - true_point).norm() > 1.0,
            "expected the naive decoder to be fooled, got {}",
            decided.value
        );
    }

    #[test]
    fn naive_decide_symbol_maps_each_subcarrier() {
        let m = Modulation::Qam16;
        let dec = NaiveCentroidDecoder::new(m);
        let points = m.points();
        // Three identical segments over an 8-bin toy FFT, one constellation point per
        // bin.
        let row: Vec<Complex> = points.iter().take(8).copied().collect();
        let segments = SymbolSegments::from_rows(vec![row.clone(), row.clone(), row]);
        let bins: Vec<usize> = (0..8).collect();
        let decided = dec.decide_symbol(&segments, &bins, &mut scratch());
        assert_eq!(decided.len(), 8);
        for (d, p) in decided.iter().zip(points.iter().take(8)) {
            assert!((*d - *p).norm() < 1e-12);
        }
    }

    #[test]
    fn standard_decoder_uses_only_the_last_segment() {
        let m = Modulation::Bpsk;
        let dec = StandardNearestDecoder::new(m);
        assert_eq!(dec.modulation(), m);
        // Early segments point at −1, the standard window at +1: the standard decision
        // must follow the last segment alone.
        let obs = vec![
            Complex::new(-1.0, 0.0),
            Complex::new(-1.0, 0.0),
            Complex::new(0.9, 0.1),
        ];
        let decided = dec.decide(0, &obs, &mut scratch());
        assert!((decided.value - Complex::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn oracle_decoder_picks_the_least_interfered_segment() {
        let m = Modulation::Bpsk;
        // Two segments over a 4-bin toy FFT: segment 0 is clean, segment 1 is heavily
        // corrupted on bins 0..2.
        let clean = vec![
            Complex::new(1.0, 0.0),
            Complex::new(-1.0, 0.0),
            Complex::new(1.0, 0.0),
            Complex::new(-1.0, 0.0),
        ];
        let corrupted = vec![
            Complex::new(-2.0, 0.5),
            Complex::new(2.0, -0.5),
            Complex::new(-2.0, 0.0),
            Complex::new(-1.0, 0.0),
        ];
        let segments = SymbolSegments::from_rows(vec![clean.clone(), corrupted]);
        // Genie powers: segment 0 quiet on bins 0..2, segment 1 quiet on bin 3.
        let powers =
            SegmentPowers::from_rows(vec![vec![0.1, 0.1, 0.1, 5.0], vec![4.0, 4.0, 4.0, 0.2]]);
        let dec = OracleSegmentDecoder::new(m, &powers);
        assert_eq!(dec.modulation(), m);
        assert_eq!(dec.best_segment(0), 0);
        assert_eq!(dec.best_segment(3), 1);
        let decided = dec.decide_symbol(&segments, &[0, 1, 2, 3], &mut scratch());
        for (d, c) in decided.iter().zip(&clean) {
            assert!((*d - *c).norm() < 1e-12);
        }
    }

    #[test]
    fn oracle_decoder_clamps_the_selection_to_available_segments() {
        // A power table with more segments than the observation set (e.g. a truncated
        // extraction) must not index out of bounds: the selection clamps to the last
        // available segment.
        let m = Modulation::Bpsk;
        let segments = SymbolSegments::from_rows(vec![vec![Complex::new(1.0, 0.0)]]);
        let powers = SegmentPowers::from_rows(vec![vec![5.0], vec![0.1]]);
        let dec = OracleSegmentDecoder::new(m, &powers);
        assert_eq!(dec.best_segment(0), 1);
        let decided = dec.decide(0, segments.bin_observations(0), &mut scratch());
        assert!((decided.value - Complex::new(1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn decide_symbol_into_reuses_the_output_buffer() {
        let m = Modulation::Qpsk;
        let dec = NaiveCentroidDecoder::new(m);
        let row: Vec<Complex> = m.points().into_iter().cycle().take(8).collect();
        let segments = SymbolSegments::from_rows(vec![row.clone(), row]);
        let bins: Vec<usize> = (0..8).collect();
        let mut s = scratch();
        let mut out = Vec::new();
        dec.decide_symbol_into(&segments, &bins, &mut s, &mut out);
        assert_eq!(out.len(), 8);
        let capacity = out.capacity();
        let first = out.clone();
        dec.decide_symbol_into(&segments, &bins, &mut s, &mut out);
        assert_eq!(out, first);
        assert_eq!(
            out.capacity(),
            capacity,
            "output buffer must not reallocate"
        );
    }
}
