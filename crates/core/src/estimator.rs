//! The pluggable interference-estimator subsystem.
//!
//! The paper's §4.1 density model — one bivariate product KDE per subcarrier — is
//! what the ML decoder evaluates per candidate × per segment × per bin, and the
//! `decision` bench shows that scoring dominates decode cost at large `P`. This
//! module makes the estimator a first-class, swappable stage: the
//! [`InterferenceEstimator`] trait (train / update / `log_likelihood`) with three
//! backends behind [`ModelBackend`]:
//!
//! * [`ExactKdeEstimator`] — the reference: the paper's per-sample kernel sum
//!   (Eq. 4), `O(P·N_p)` per query;
//! * [`GridKdeEstimator`] — at refit time, precompute a 2-D log-likelihood lookup
//!   table over (amplitude, phase) deviation per bin ([`GridKde2d`]) and answer
//!   queries with an O(1) bilinear interpolation in the log domain;
//! * [`GaussianEstimator`] — a cheap parametric per-bin bivariate Gaussian fit
//!   ([`BivariateGaussian`]), a deliberately coarser accuracy/speed arm to sweep
//!   (related work replaces the density model wholesale; this is the smallest such
//!   replacement).
//!
//! [`crate::InterferenceModel`] owns the per-bin deviation samples
//! ([`BinSamples`]) and the dirty-bin bookkeeping; backends only fit and answer
//! queries. The backend is a field of [`CpRecycleConfig`], so it flows into every
//! campaign point key and sweeps like any other receiver parameter.

use crate::config::{CpRecycleConfig, KernelPrecision};
use crate::interference_model::deviation;
use crate::Result;
use rfdsp::kde::{select_bandwidth_scratch, GridKde2d, GridSpec, ProductKde2d};
use rfdsp::stats::BivariateGaussian;
use rfdsp::Complex;

/// Which interference-estimator backend the receiver fits from the preamble — a
/// field of [`CpRecycleConfig`], so campaigns sweep it alongside SNR, `P` and the
/// decision stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelBackend {
    /// The paper's exact per-sample kernel sum (Eq. 4) — the reference backend and
    /// the default.
    #[default]
    ExactKde,
    /// Precomputed per-bin log-likelihood grid with O(1) bilinear lookup.
    GridKde,
    /// Parametric per-bin bivariate Gaussian fit.
    Gaussian,
}

impl ModelBackend {
    /// Short name used in campaign arm labels and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelBackend::ExactKde => "ExactKde",
            ModelBackend::GridKde => "GridKde",
            ModelBackend::Gaussian => "Gaussian",
        }
    }
}

/// The (amplitude, phase) deviation samples of one FFT bin, stored as two parallel
/// axis vectors so bandwidth selection and the parametric fit read each axis as a
/// slice without collecting temporaries.
#[derive(Debug, Clone, Default)]
pub struct BinSamples {
    amp: Vec<f64>,
    phase: Vec<f64>,
}

impl BinSamples {
    /// Appends one deviation sample.
    pub fn push(&mut self, amplitude: f64, phase: f64) {
        self.amp.push(amplitude);
        self.phase.push(phase);
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.amp.len()
    }

    /// Whether the bin has collected no samples.
    pub fn is_empty(&self) -> bool {
        self.amp.is_empty()
    }

    /// The amplitude coordinates.
    pub fn amplitudes(&self) -> &[f64] {
        &self.amp
    }

    /// The phase coordinates.
    pub fn phases(&self) -> &[f64] {
        &self.phase
    }
}

/// A swappable interference-estimator backend: fits per-bin densities from the
/// deviation samples the model collects and scores observations for the ML decoder.
///
/// Contract shared by all implementations:
///
/// * [`update`](Self::update) (re)fits exactly the listed bins from their **full**
///   sample sets — so an incremental dirty-bin refit after absorbing a preamble
///   produces a model identical to batch training on the same preambles (pinned by
///   the `estimator_equivalence` property tests);
/// * [`log_likelihood`](Self::log_likelihood) answers with the shared
///   [`fallback_log_likelihood`] for bins without a fitted density (the model-level
///   dispatch short-circuits that case, but backends are public API and must be
///   safe to query directly) and must be finite and strictly ordered in the far
///   tail, so distant lattice candidates never tie;
/// * [`log_likelihood_batch`](Self::log_likelihood_batch) agrees with the scalar
///   query to ≤ 1e-9 per element (bit-for-bit for the grid and Gaussian backends,
///   whose batch paths run the identical arithmetic);
/// * queries are allocation-free.
pub trait InterferenceEstimator {
    /// Which backend this is (for labels and diagnostics).
    fn backend(&self) -> ModelBackend;

    /// Whether a fitted density exists for `bin`.
    fn has_model(&self, bin: usize) -> bool;

    /// Log-likelihood of one precomputed (amplitude, phase) deviation on `bin` —
    /// the primitive query both [`log_likelihood`](Self::log_likelihood) and
    /// [`log_likelihood_batch`](Self::log_likelihood_batch) reduce to. The
    /// deviation convention is [`deviation`]'s (phase pinned to `0` for
    /// numerically-zero error vectors).
    fn log_likelihood_deviation(&self, bin: usize, amplitude: f64, phase: f64) -> f64;

    /// Log-likelihood of observing `observed` on `bin` given that lattice point
    /// `candidate` was transmitted — `ln P(X̂^j | X)` of Eq. 5 for one segment.
    fn log_likelihood(&self, bin: usize, observed: Complex, candidate: Complex) -> f64 {
        let (a, p) = deviation(observed, candidate);
        self.log_likelihood_deviation(bin, a, p)
    }

    /// Scores a whole plane of precomputed deviations against `bin`'s density in
    /// one call, writing `log_likes[i]` for query `(amplitudes[i], phases[i])`.
    ///
    /// This is the sphere decoder's hot path: all candidate × segment pairs of a
    /// subcarrier go through a single batch call, so KDE backends can amortise
    /// per-query setup and run their lane-parallel kernels
    /// ([`ProductKde2d::log_eval_batch`], [`GridKde2d::log_eval_batch`]). The
    /// default implementation is the scalar loop — correct for any backend.
    ///
    /// # Panics
    ///
    /// Panics if the query planes or the output have mismatched lengths.
    fn log_likelihood_batch(
        &self,
        bin: usize,
        amplitudes: &[f64],
        phases: &[f64],
        log_likes: &mut [f64],
    ) {
        assert_eq!(
            amplitudes.len(),
            phases.len(),
            "query planes must have equal lengths"
        );
        assert_eq!(
            amplitudes.len(),
            log_likes.len(),
            "output must match the query count"
        );
        for ((a, p), o) in amplitudes.iter().zip(phases).zip(log_likes.iter_mut()) {
            *o = self.log_likelihood_deviation(bin, *a, *p);
        }
    }

    /// Refits the listed bins from their current sample sets (bins with no samples
    /// are skipped). This is the §4.3 incremental path: after a preamble update only
    /// the bins that received samples are passed in.
    fn update(
        &mut self,
        samples: &[BinSamples],
        bins: &[usize],
        config: &CpRecycleConfig,
    ) -> Result<()>;

    /// Fits every non-empty bin from scratch — batch training.
    fn train(&mut self, samples: &[BinSamples], config: &CpRecycleConfig) -> Result<()> {
        let all: Vec<usize> = (0..samples.len()).collect();
        self.update(samples, &all, config)
    }
}

/// Log-likelihood of a bin no estimator has a fitted density for (e.g. a bin that
/// carried nothing during the preamble): a Gaussian-like distance penalty on the
/// deviation amplitude, so the ML decoder always has a usable metric. One shared
/// policy — [`crate::InterferenceModel`] and every backend route through it.
#[inline]
pub fn fallback_log_likelihood(observed: Complex, candidate: Complex) -> f64 {
    let (a, _) = deviation(observed, candidate);
    fallback_log_likelihood_deviation(a)
}

/// [`fallback_log_likelihood`] for a precomputed deviation amplitude — the form the
/// batched query paths use once deviations have been hoisted out of the per-backend
/// dispatch.
#[inline]
pub fn fallback_log_likelihood_deviation(amplitude: f64) -> f64 {
    -0.5 * amplitude * amplitude
}

/// The shared unfitted-bin batch fallback: the Gaussian-like distance penalty over a
/// whole deviation plane.
#[inline]
fn fallback_batch(amplitudes: &[f64], log_likes: &mut [f64]) {
    assert_eq!(
        amplitudes.len(),
        log_likes.len(),
        "output must match the query count"
    );
    for (a, o) in amplitudes.iter().zip(log_likes.iter_mut()) {
        *o = fallback_log_likelihood_deviation(*a);
    }
}

/// Per-axis kernel bandwidths for one bin: the configured selector, floored by the
/// config's minimum bandwidths (shared by the exact and grid backends).
fn bin_bandwidths(
    samples: &BinSamples,
    config: &CpRecycleConfig,
    scratch: &mut Vec<f64>,
) -> Result<(f64, f64)> {
    let selector_a = config.bandwidth_selector(config.bandwidth_amplitude);
    let selector_p = config.bandwidth_selector(config.bandwidth_phase);
    let ba = select_bandwidth_scratch(samples.amplitudes(), selector_a, scratch)?
        .max(config.min_bandwidth_amplitude);
    let bp = select_bandwidth_scratch(samples.phases(), selector_p, scratch)?
        .max(config.min_bandwidth_phase);
    Ok((ba, bp))
}

/// The reference backend: one [`ProductKde2d`] per bin, evaluated exactly.
#[derive(Debug, Clone, Default)]
pub struct ExactKdeEstimator {
    kdes: Vec<Option<ProductKde2d>>,
    /// Bandwidth-selection sort scratch, reused across bins and refits.
    scratch: Vec<f64>,
}

impl ExactKdeEstimator {
    /// An untrained estimator for an FFT of `fft_size` bins.
    pub fn new(fft_size: usize) -> Self {
        ExactKdeEstimator {
            kdes: vec![None; fft_size],
            scratch: Vec::new(),
        }
    }

    /// The fitted KDE of a bin, if any (diagnostics; the Fig. 6b driver reads it).
    pub fn kde(&self, bin: usize) -> Option<&ProductKde2d> {
        self.kdes.get(bin).and_then(|k| k.as_ref())
    }
}

impl InterferenceEstimator for ExactKdeEstimator {
    fn backend(&self) -> ModelBackend {
        ModelBackend::ExactKde
    }

    fn has_model(&self, bin: usize) -> bool {
        self.kdes.get(bin).map(|k| k.is_some()).unwrap_or(false)
    }

    fn log_likelihood_deviation(&self, bin: usize, amplitude: f64, phase: f64) -> f64 {
        match self.kde(bin) {
            Some(kde) => kde.log_eval(amplitude, phase),
            None => fallback_log_likelihood_deviation(amplitude),
        }
    }

    fn log_likelihood_batch(
        &self,
        bin: usize,
        amplitudes: &[f64],
        phases: &[f64],
        log_likes: &mut [f64],
    ) {
        match self.kde(bin) {
            // The lane-parallel Eq. 4 kernel: one hoisted normalisation, polynomial
            // exp over LANES-wide chunks (agrees with the scalar sum to ≤ 1e-9).
            Some(kde) => kde.log_eval_batch(amplitudes, phases, log_likes),
            None => fallback_batch(amplitudes, log_likes),
        }
    }

    fn update(
        &mut self,
        samples: &[BinSamples],
        bins: &[usize],
        config: &CpRecycleConfig,
    ) -> Result<()> {
        for &bin in bins {
            let s = &samples[bin];
            if s.is_empty() {
                continue;
            }
            let (ba, bp) = bin_bandwidths(s, config, &mut self.scratch)?;
            match &mut self.kdes[bin] {
                // Refit in place: the KDE's sample buffers are reused, so a refit
                // allocates only when the bin's sample count outgrows them.
                Some(kde) => kde.refit_axes(s.amplitudes(), s.phases(), ba, bp)?,
                slot => *slot = Some(ProductKde2d::from_axes(s.amplitudes(), s.phases(), ba, bp)?),
            }
        }
        Ok(())
    }
}

/// The precomputed-grid backend: at refit time each bin's exact log density is
/// tabulated on a (amplitude, phase) grid; queries are O(1) bilinear lookups.
#[derive(Debug, Clone)]
pub struct GridKdeEstimator {
    grids: Vec<Option<GridKde2d>>,
    spec: GridSpec,
    scratch: Vec<f64>,
    /// Width of the batched lookup kernel; scalar queries always run the f64
    /// reference path.
    precision: KernelPrecision,
}

impl GridKdeEstimator {
    /// An untrained estimator with the default [`GridSpec`].
    pub fn new(fft_size: usize) -> Self {
        Self::with_spec(fft_size, GridSpec::default())
    }

    /// An untrained estimator with an explicit resolution/extent policy.
    pub fn with_spec(fft_size: usize, spec: GridSpec) -> Self {
        Self::with_spec_precision(fft_size, spec, KernelPrecision::F64)
    }

    /// An untrained estimator with an explicit grid policy and batched-kernel
    /// precision: under [`KernelPrecision::F32`] the batched queries run the
    /// all-f32 bilinear kernel ([`GridKde2d::log_eval_batch_f32`]) — roughly twice
    /// the SIMD throughput for ≤ 1e-3 per-query error. Scalar queries are
    /// unaffected.
    pub fn with_spec_precision(
        fft_size: usize,
        spec: GridSpec,
        precision: KernelPrecision,
    ) -> Self {
        GridKdeEstimator {
            grids: vec![None; fft_size],
            spec,
            scratch: Vec::new(),
            precision,
        }
    }

    /// The batched-kernel precision this estimator queries with.
    pub fn precision(&self) -> KernelPrecision {
        self.precision
    }

    /// The fitted grid of a bin, if any.
    pub fn grid(&self, bin: usize) -> Option<&GridKde2d> {
        self.grids.get(bin).and_then(|g| g.as_ref())
    }
}

impl InterferenceEstimator for GridKdeEstimator {
    fn backend(&self) -> ModelBackend {
        ModelBackend::GridKde
    }

    fn has_model(&self, bin: usize) -> bool {
        self.grids.get(bin).map(|g| g.is_some()).unwrap_or(false)
    }

    fn log_likelihood_deviation(&self, bin: usize, amplitude: f64, phase: f64) -> f64 {
        match self.grid(bin) {
            Some(grid) => grid.log_eval(amplitude, phase),
            None => fallback_log_likelihood_deviation(amplitude),
        }
    }

    fn log_likelihood_batch(
        &self,
        bin: usize,
        amplitudes: &[f64],
        phases: &[f64],
        log_likes: &mut [f64],
    ) {
        match self.grid(bin) {
            Some(grid) => match self.precision {
                // Bit-for-bit with the scalar lookup (same ops, same order).
                KernelPrecision::F64 => grid.log_eval_batch(amplitudes, phases, log_likes),
                KernelPrecision::F32 => grid.log_eval_batch_f32(amplitudes, phases, log_likes),
            },
            None => fallback_batch(amplitudes, log_likes),
        }
    }

    fn update(
        &mut self,
        samples: &[BinSamples],
        bins: &[usize],
        config: &CpRecycleConfig,
    ) -> Result<()> {
        for &bin in bins {
            let s = &samples[bin];
            if s.is_empty() {
                continue;
            }
            let (ba, bp) = bin_bandwidths(s, config, &mut self.scratch)?;
            self.grids[bin] = Some(GridKde2d::from_axes(
                s.amplitudes(),
                s.phases(),
                ba,
                bp,
                &self.spec,
            )?);
        }
        Ok(())
    }
}

/// The parametric backend: one [`BivariateGaussian`] per bin. Far cheaper to fit
/// and query than any KDE, but blind to the multi-modal deviation structure strong
/// bursty interference produces — the accuracy/speed trade-off the `models`
/// campaign sweep measures.
#[derive(Debug, Clone, Default)]
pub struct GaussianEstimator {
    fits: Vec<Option<BivariateGaussian>>,
}

impl GaussianEstimator {
    /// An untrained estimator for an FFT of `fft_size` bins.
    pub fn new(fft_size: usize) -> Self {
        GaussianEstimator {
            fits: vec![None; fft_size],
        }
    }

    /// The fitted Gaussian of a bin, if any.
    pub fn fit(&self, bin: usize) -> Option<&BivariateGaussian> {
        self.fits.get(bin).and_then(|f| f.as_ref())
    }
}

impl InterferenceEstimator for GaussianEstimator {
    fn backend(&self) -> ModelBackend {
        ModelBackend::Gaussian
    }

    fn has_model(&self, bin: usize) -> bool {
        self.fits.get(bin).map(|f| f.is_some()).unwrap_or(false)
    }

    fn log_likelihood_deviation(&self, bin: usize, amplitude: f64, phase: f64) -> f64 {
        match self.fit(bin) {
            Some(g) => g.log_pdf(amplitude, phase),
            None => fallback_log_likelihood_deviation(amplitude),
        }
    }

    fn update(
        &mut self,
        samples: &[BinSamples],
        bins: &[usize],
        config: &CpRecycleConfig,
    ) -> Result<()> {
        for &bin in bins {
            let s = &samples[bin];
            if s.is_empty() {
                continue;
            }
            self.fits[bin] = Some(BivariateGaussian::fit(
                s.amplitudes(),
                s.phases(),
                config.min_bandwidth_amplitude,
                config.min_bandwidth_phase,
            )?);
        }
        Ok(())
    }
}

/// The concrete backend dispatch [`crate::InterferenceModel`] embeds: an enum (not
/// a boxed trait object) so the model stays `Clone` and the per-query dispatch is a
/// branch instead of a vtable call. Each variant also implements
/// [`InterferenceEstimator`] on its own, so external receivers can use a backend
/// directly.
#[derive(Debug, Clone)]
pub enum EstimatorState {
    /// Exact per-sample kernel sums.
    Exact(ExactKdeEstimator),
    /// Precomputed log-likelihood grids.
    Grid(GridKdeEstimator),
    /// Parametric bivariate Gaussians.
    Gaussian(GaussianEstimator),
}

impl EstimatorState {
    /// An untrained estimator of the given backend for `fft_size` bins, querying at
    /// the reference [`KernelPrecision::F64`].
    pub fn new(backend: ModelBackend, fft_size: usize) -> Self {
        Self::with_precision(backend, fft_size, KernelPrecision::F64)
    }

    /// An untrained estimator with an explicit batched-kernel precision. Only the
    /// grid backend has an f32 query kernel; the exact and Gaussian backends score
    /// in f64 under either setting.
    pub fn with_precision(
        backend: ModelBackend,
        fft_size: usize,
        precision: KernelPrecision,
    ) -> Self {
        match backend {
            ModelBackend::ExactKde => EstimatorState::Exact(ExactKdeEstimator::new(fft_size)),
            ModelBackend::GridKde => EstimatorState::Grid(GridKdeEstimator::with_spec_precision(
                fft_size,
                GridSpec::default(),
                precision,
            )),
            ModelBackend::Gaussian => EstimatorState::Gaussian(GaussianEstimator::new(fft_size)),
        }
    }
}

impl InterferenceEstimator for EstimatorState {
    fn backend(&self) -> ModelBackend {
        match self {
            EstimatorState::Exact(e) => e.backend(),
            EstimatorState::Grid(e) => e.backend(),
            EstimatorState::Gaussian(e) => e.backend(),
        }
    }

    fn has_model(&self, bin: usize) -> bool {
        match self {
            EstimatorState::Exact(e) => e.has_model(bin),
            EstimatorState::Grid(e) => e.has_model(bin),
            EstimatorState::Gaussian(e) => e.has_model(bin),
        }
    }

    fn log_likelihood_deviation(&self, bin: usize, amplitude: f64, phase: f64) -> f64 {
        match self {
            EstimatorState::Exact(e) => e.log_likelihood_deviation(bin, amplitude, phase),
            EstimatorState::Grid(e) => e.log_likelihood_deviation(bin, amplitude, phase),
            EstimatorState::Gaussian(e) => e.log_likelihood_deviation(bin, amplitude, phase),
        }
    }

    fn log_likelihood(&self, bin: usize, observed: Complex, candidate: Complex) -> f64 {
        match self {
            EstimatorState::Exact(e) => e.log_likelihood(bin, observed, candidate),
            EstimatorState::Grid(e) => e.log_likelihood(bin, observed, candidate),
            EstimatorState::Gaussian(e) => e.log_likelihood(bin, observed, candidate),
        }
    }

    fn log_likelihood_batch(
        &self,
        bin: usize,
        amplitudes: &[f64],
        phases: &[f64],
        log_likes: &mut [f64],
    ) {
        match self {
            EstimatorState::Exact(e) => e.log_likelihood_batch(bin, amplitudes, phases, log_likes),
            EstimatorState::Grid(e) => e.log_likelihood_batch(bin, amplitudes, phases, log_likes),
            EstimatorState::Gaussian(e) => {
                e.log_likelihood_batch(bin, amplitudes, phases, log_likes)
            }
        }
    }

    fn update(
        &mut self,
        samples: &[BinSamples],
        bins: &[usize],
        config: &CpRecycleConfig,
    ) -> Result<()> {
        match self {
            EstimatorState::Exact(e) => e.update(samples, bins, config),
            EstimatorState::Grid(e) => e.update(samples, bins, config),
            EstimatorState::Gaussian(e) => e.update(samples, bins, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_samples(fft_size: usize, per_bin: usize) -> Vec<BinSamples> {
        let mut samples = vec![BinSamples::default(); fft_size];
        for (bin, s) in samples.iter_mut().enumerate().take(12).skip(2) {
            for j in 0..per_bin {
                let a = 0.1 + 0.05 * ((bin * 7 + j * 3) % 11) as f64;
                let p = -1.0 + 0.2 * ((bin * 5 + j) % 10) as f64;
                s.push(a, p);
            }
        }
        samples
    }

    #[test]
    fn backend_labels() {
        assert_eq!(ModelBackend::ExactKde.label(), "ExactKde");
        assert_eq!(ModelBackend::GridKde.label(), "GridKde");
        assert_eq!(ModelBackend::Gaussian.label(), "Gaussian");
        assert_eq!(ModelBackend::default(), ModelBackend::ExactKde);
    }

    #[test]
    fn bin_samples_push_and_axes() {
        let mut s = BinSamples::default();
        assert!(s.is_empty());
        s.push(0.5, -0.2);
        s.push(0.7, 0.1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.amplitudes(), &[0.5, 0.7]);
        assert_eq!(s.phases(), &[-0.2, 0.1]);
    }

    #[test]
    fn every_backend_trains_and_scores() {
        let samples = synthetic_samples(64, 10);
        let config = CpRecycleConfig::default();
        for backend in [
            ModelBackend::ExactKde,
            ModelBackend::GridKde,
            ModelBackend::Gaussian,
        ] {
            let mut est = EstimatorState::new(backend, 64);
            assert_eq!(est.backend(), backend);
            assert!(!est.has_model(5));
            est.train(&samples, &config).unwrap();
            assert!(est.has_model(5), "{backend:?}");
            assert!(
                !est.has_model(40),
                "{backend:?}: empty bin stays unmodelled"
            );
            // Scoring prefers the transmitted point over a distant one.
            let obs = Complex::new(1.1, 0.1);
            let near = est.log_likelihood(5, obs, Complex::new(1.0, 0.0));
            let far = est.log_likelihood(5, obs, Complex::new(-3.0, 0.0));
            assert!(near.is_finite() && far.is_finite(), "{backend:?}");
            assert!(near > far, "{backend:?}: near {near}, far {far}");
        }
    }

    #[test]
    fn grid_tracks_exact_on_trained_bins() {
        let samples = synthetic_samples(64, 16);
        let config = CpRecycleConfig::default();
        let mut exact = ExactKdeEstimator::new(64);
        exact.train(&samples, &config).unwrap();
        let mut grid = GridKdeEstimator::new(64);
        grid.train(&samples, &config).unwrap();
        for bin in 2..12 {
            for k in 0..8 {
                let obs = Complex::new(1.0 + 0.04 * k as f64, 0.03 * k as f64);
                let cand = Complex::new(1.0, 0.0);
                let e = exact.log_likelihood(bin, obs, cand);
                let g = grid.log_likelihood(bin, obs, cand);
                assert!((e - g).abs() < 0.1, "bin {bin}: exact {e}, grid {g}");
            }
        }
    }

    #[test]
    fn batched_scoring_matches_scalar_for_every_backend() {
        let samples = synthetic_samples(64, 12);
        let config = CpRecycleConfig::default();
        // Deviation queries spanning the fitted support and its tails, with a length
        // that leaves an unaligned lane remainder.
        let amps: Vec<f64> = (0..13).map(|i| 0.05 + 0.11 * i as f64).collect();
        let phases: Vec<f64> = (0..13).map(|i| -1.4 + 0.23 * i as f64).collect();
        let mut batch = vec![0.0; amps.len()];
        for backend in [
            ModelBackend::ExactKde,
            ModelBackend::GridKde,
            ModelBackend::Gaussian,
        ] {
            let mut est = EstimatorState::new(backend, 64);
            est.train(&samples, &config).unwrap();
            // Trained bin: batch must agree with the scalar query path.
            est.log_likelihood_batch(5, &amps, &phases, &mut batch);
            for (i, (&a, &p)) in amps.iter().zip(&phases).enumerate() {
                let scalar = est.log_likelihood_deviation(5, a, p);
                assert!(
                    (batch[i] - scalar).abs() < 1e-9,
                    "{backend:?} query {i}: batch {} vs scalar {scalar}",
                    batch[i]
                );
            }
            // Unfitted bin: bit-for-bit the shared fallback penalty.
            est.log_likelihood_batch(40, &amps, &phases, &mut batch);
            for (i, &a) in amps.iter().enumerate() {
                assert_eq!(
                    batch[i].to_bits(),
                    fallback_log_likelihood_deviation(a).to_bits(),
                    "{backend:?} fallback query {i}"
                );
            }
        }
    }

    #[test]
    fn f32_grid_batch_tracks_the_f64_batch() {
        let samples = synthetic_samples(64, 16);
        let config = CpRecycleConfig::default();
        let mut f64_est = GridKdeEstimator::new(64);
        f64_est.train(&samples, &config).unwrap();
        let mut f32_est =
            GridKdeEstimator::with_spec_precision(64, GridSpec::default(), KernelPrecision::F32);
        assert_eq!(f32_est.precision(), KernelPrecision::F32);
        f32_est.train(&samples, &config).unwrap();
        let amps: Vec<f64> = (0..9).map(|i| 0.1 + 0.09 * i as f64).collect();
        let phases: Vec<f64> = (0..9).map(|i| -0.8 + 0.21 * i as f64).collect();
        let mut want = vec![0.0; amps.len()];
        let mut got = vec![0.0; amps.len()];
        f64_est.log_likelihood_batch(5, &amps, &phases, &mut want);
        f32_est.log_likelihood_batch(5, &amps, &phases, &mut got);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert!((w - g).abs() < 1e-3, "query {i}: f64 {w} vs f32 {g}");
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn batch_scoring_rejects_mismatched_output() {
        let est = EstimatorState::new(ModelBackend::Gaussian, 8);
        let mut out = [0.0; 2];
        est.log_likelihood_batch(0, &[0.1], &[0.0], &mut out);
    }

    #[test]
    fn dirty_bin_update_refits_only_the_listed_bins() {
        let mut samples = synthetic_samples(64, 8);
        let config = CpRecycleConfig::default();
        let mut est = ExactKdeEstimator::new(64);
        est.train(&samples, &config).unwrap();
        let before_len = est.kde(3).unwrap().len();
        // New samples land on bin 5 only; bin 3 is not in the dirty list.
        samples[5].push(0.9, 0.4);
        est.update(&samples, &[5], &config).unwrap();
        assert_eq!(est.kde(3).unwrap().len(), before_len);
        assert_eq!(est.kde(5).unwrap().len(), 9);
    }
}
