//! The per-subcarrier interference model (paper §4.1, Eq. 4).
//!
//! During the known preamble symbols the receiver observes, for every subcarrier `f`
//! and every ISI-free FFT segment `j`, the deviation of the equalised observation from
//! the known transmitted value:
//!
//! ```text
//! R_A^j[f] = A(X̂_s^j[f] − X_s[f])      (amplitude of the error vector)
//! R_φ^j[f] = Φ(X̂_s^j[f] − X_s[f])      (phase of the error vector)
//! ```
//!
//! Pooling those samples over segments and preamble symbols, a bivariate Gaussian
//! *product* kernel density estimate models the joint (amplitude, phase) deviation per
//! subcarrier. Because the deviations are expressed *relative to* the transmitted
//! lattice point, the model learnt on BPSK preamble symbols transfers to any data
//! modulation (the paper's "facilitate this" paragraph), and because the model is
//! per-subcarrier it adapts to the frequency-selective structure of adjacent-channel
//! interference.

use crate::config::CpRecycleConfig;
use crate::estimator::{BinSamples, EstimatorState, InterferenceEstimator, ModelBackend};
use crate::segments::SymbolSegments;
use crate::Result;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::PhyError;
use rfdsp::kde::ProductKde2d;
use rfdsp::Complex;

/// Amplitude/phase deviation of an observation from a reference lattice point
/// (the paper's `A(·)` and `Φ(·)` of the error vector).
///
/// The phase of a numerically-zero error vector (amplitude below `1e-9` on the
/// unit-power constellation scale) is pure floating-point noise, so it is pinned to
/// `0` — otherwise a clean-channel model would train on rounding garbage and its
/// decisions would depend on which extraction kernel produced the rounding.
#[inline]
pub fn deviation(observed: Complex, reference: Complex) -> (f64, f64) {
    let err = observed - reference;
    let amplitude = err.norm();
    if amplitude < 1e-9 {
        (amplitude, 0.0)
    } else {
        (amplitude, err.arg())
    }
}

/// A trained per-subcarrier interference model.
///
/// The model owns the deviation-sample bookkeeping (per-bin [`BinSamples`], dirty-bin
/// tracking, the preamble count) and delegates density fitting and scoring to the
/// configured [`InterferenceEstimator`] backend ([`CpRecycleConfig::model`]): the
/// exact Eq. 4 kernel sum, the precomputed log-likelihood grid, or the parametric
/// Gaussian fit — see [`crate::estimator`].
#[derive(Debug, Clone)]
pub struct InterferenceModel {
    /// The fitted per-bin densities, behind the configured backend.
    estimator: EstimatorState,
    /// Raw deviation samples per bin, kept so the model can be updated when further
    /// preambles arrive and so diagnostics (paper Fig. 6b) can compare samples against
    /// the fitted density.
    samples: Vec<BinSamples>,
    /// Which bins received samples since the last refit (flags + the dense list the
    /// incremental `update` hands to the estimator).
    dirty: Vec<bool>,
    dirty_bins: Vec<usize>,
    config: CpRecycleConfig,
    /// Number of preamble symbols absorbed so far (`N_p`).
    num_preambles: usize,
}

impl InterferenceModel {
    /// Creates an empty (untrained) model for an FFT of `fft_size` bins.
    pub fn new(fft_size: usize, config: CpRecycleConfig) -> Self {
        InterferenceModel {
            estimator: EstimatorState::with_precision(config.model, fft_size, config.precision),
            samples: vec![BinSamples::default(); fft_size],
            dirty: vec![false; fft_size],
            dirty_bins: Vec::new(),
            config,
            num_preambles: 0,
        }
    }

    /// Trains a model from the segments of one or more known preamble symbols.
    ///
    /// * `preamble_segments` — the extracted segments of each preamble symbol.
    /// * `references` — the known transmitted frequency-domain values of each preamble
    ///   symbol (same FFT-bin indexing as the segments).
    pub fn train(
        engine: &OfdmEngine,
        preamble_segments: &[SymbolSegments],
        references: &[Vec<Complex>],
        config: CpRecycleConfig,
    ) -> Result<Self> {
        if preamble_segments.len() != references.len() {
            return Err(PhyError::LengthMismatch {
                expected: preamble_segments.len(),
                actual: references.len(),
            });
        }
        if preamble_segments.is_empty() {
            return Err(PhyError::invalid(
                "preamble_segments",
                "at least one preamble symbol is required",
            ));
        }
        let mut model = InterferenceModel::new(engine.params().fft_size, config);
        for (segments, reference) in preamble_segments.iter().zip(references) {
            model.absorb_preamble(engine, segments, reference)?;
        }
        model.refit_dirty()?;
        Ok(model)
    }

    /// Adds the deviation samples of one more known preamble (or pilot-bearing) symbol
    /// and refits the per-subcarrier densities — the "constantly updated when subsequent
    /// preambles are received" behaviour of §4.3.
    ///
    /// The refit is **incremental**: only the bins that actually received samples from
    /// this preamble (the dirty bins) are refitted; every other bin's density is left
    /// untouched. Because a refit always uses a bin's full sample set, the result is
    /// identical to batch-training on all preambles (property-tested in
    /// `estimator_equivalence`).
    pub fn update(
        &mut self,
        engine: &OfdmEngine,
        segments: &SymbolSegments,
        reference: &[Complex],
    ) -> Result<()> {
        self.absorb_preamble(engine, segments, reference)?;
        self.refit_dirty()
    }

    /// [`update`](Self::update) for several preamble symbols at once (all sharing one
    /// reference): absorbs every segment set, then refits the dirty bins **once**.
    /// The streaming receiver's rolling persistence feeds both LTF symbols of each
    /// frame through this — two separate `update` calls would re-fit the same dirty
    /// bins twice for an identical result (a refit always uses a bin's full sample
    /// set, so batching changes cost, not output).
    pub fn update_preambles(
        &mut self,
        engine: &OfdmEngine,
        preamble_segments: &[SymbolSegments],
        reference: &[Complex],
    ) -> Result<()> {
        for segments in preamble_segments {
            self.absorb_preamble(engine, segments, reference)?;
        }
        self.refit_dirty()
    }

    fn absorb_preamble(
        &mut self,
        engine: &OfdmEngine,
        segments: &SymbolSegments,
        reference: &[Complex],
    ) -> Result<()> {
        let fft_size = engine.params().fft_size;
        if reference.len() != fft_size {
            return Err(PhyError::LengthMismatch {
                expected: fft_size,
                actual: reference.len(),
            });
        }
        for bin in engine.params().occupied_bins() {
            if reference[bin].norm_sqr() == 0.0 {
                continue;
            }
            // Bin-major storage makes this the contiguous, allocation-free access
            // pattern: all `P` observations of one bin in a single slice.
            for obs in segments.bin_observations(bin) {
                let (a, p) = deviation(*obs, reference[bin]);
                self.samples[bin].push(a, p);
            }
            if !self.dirty[bin] {
                self.dirty[bin] = true;
                self.dirty_bins.push(bin);
            }
        }
        self.num_preambles += 1;
        Ok(())
    }

    /// Refits exactly the bins that received samples since the last refit, then
    /// clears the dirty set. Bandwidth selection (per-axis, honouring fixed
    /// bandwidths, floored against degenerate preambles) lives in the backends.
    fn refit_dirty(&mut self) -> Result<()> {
        self.estimator
            .update(&self.samples, &self.dirty_bins, &self.config)?;
        for &bin in &self.dirty_bins {
            self.dirty[bin] = false;
        }
        self.dirty_bins.clear();
        Ok(())
    }

    /// Number of preamble symbols absorbed (`N_p`).
    pub fn num_preambles(&self) -> usize {
        self.num_preambles
    }

    /// The estimator backend this model was configured with.
    pub fn backend(&self) -> ModelBackend {
        self.estimator.backend()
    }

    /// The fitted estimator (for diagnostics and direct backend access).
    pub fn estimator(&self) -> &EstimatorState {
        &self.estimator
    }

    /// Whether a model exists for the given bin.
    pub fn has_model(&self, bin: usize) -> bool {
        self.estimator.has_model(bin)
    }

    /// Number of deviation samples collected for a bin.
    pub fn num_samples(&self, bin: usize) -> usize {
        self.samples[bin].len()
    }

    /// The amplitude deviations collected for a bin (used by the Fig. 6b diagnostic).
    pub fn samples_amplitude(&self, bin: usize) -> &[f64] {
        self.samples[bin].amplitudes()
    }

    /// The phase deviations collected for a bin.
    pub fn samples_phase(&self, bin: usize) -> &[f64] {
        self.samples[bin].phases()
    }

    /// The fitted KDE for a bin — `Some` only under the [`ModelBackend::ExactKde`]
    /// backend (the grid and Gaussian backends do not materialise per-sample KDEs).
    pub fn kde(&self, bin: usize) -> Option<&ProductKde2d> {
        match &self.estimator {
            EstimatorState::Exact(e) => e.kde(bin),
            _ => None,
        }
    }

    /// Log-likelihood of observing `observed` on `bin` given that lattice point
    /// `candidate` was transmitted — `ln P(X̂^j | X)` of Eq. 5 for one segment.
    ///
    /// Falls back to a Gaussian-like distance penalty when no model exists for the bin
    /// (e.g. a bin that carried nothing during the preamble), so the ML decoder always
    /// has a usable metric.
    pub fn log_likelihood(&self, bin: usize, observed: Complex, candidate: Complex) -> f64 {
        // The unfitted-bin fallback lives in the backends (shared
        // `estimator::fallback_log_likelihood`), so delegation is unconditional — no
        // extra `has_model` lookup on the hottest query path.
        self.estimator.log_likelihood(bin, observed, candidate)
    }

    /// Scores a whole plane of precomputed (amplitude, phase) deviations against
    /// `bin`'s density in one call — the sphere decoder's batched hot path (see
    /// [`InterferenceEstimator::log_likelihood_batch`] for the contract). Agrees
    /// with per-query [`log_likelihood`](Self::log_likelihood) to ≤ 1e-9 per
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if the query planes or the output have mismatched lengths.
    pub fn log_likelihood_batch(
        &self,
        bin: usize,
        amplitudes: &[f64],
        phases: &[f64],
        log_likes: &mut [f64],
    ) {
        self.estimator
            .log_likelihood_batch(bin, amplitudes, phases, log_likes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::extract_segments;
    use ofdmphy::chanest::ChannelEstimate;
    use ofdmphy::params::OfdmParams;
    use ofdmphy::preamble;
    use rand::SeedableRng;
    use wirelesschan::mixer::{combine, InterfererSpec};

    fn engine() -> OfdmEngine {
        OfdmEngine::new(OfdmParams::ieee80211ag())
    }

    /// Builds the two LTF symbols (with their long guard) as "preamble symbols" in the
    /// per-symbol framing the segment extractor expects: we treat the second half of the
    /// LTF as two consecutive 80-sample symbols whose CP is genuinely cyclic.
    fn ltf_preamble_symbols(_e: &OfdmEngine, samples: &[Complex]) -> Vec<Vec<Complex>> {
        // LTF layout: 32-sample GI2 + 64 (sym1) + 64 (sym2). Treat sym1 with the last 16
        // samples of GI2 as its CP, and sym2 with the last 16 samples of sym1 as its CP.
        let sym1 = samples[16..96].to_vec();
        let sym2 = samples[80..160].to_vec();
        vec![sym1, sym2]
    }

    #[test]
    fn deviation_of_exact_observation_is_zero_amplitude() {
        let x = Complex::new(0.7, -0.7);
        let (a, _) = deviation(x, x);
        assert!(a < 1e-15);
        let (a2, p2) = deviation(x + Complex::new(0.1, 0.0), x);
        assert!((a2 - 0.1).abs() < 1e-12);
        assert!(p2.abs() < 1e-12);
    }

    #[test]
    fn clean_preamble_trains_tight_model() {
        let e = engine();
        let ltf = preamble::generate_ltf(e.params());
        let est = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
        let reference = preamble::ltf_bins(e.params());
        let symbols = ltf_preamble_symbols(&e, &ltf);
        let segs: Vec<_> = symbols
            .iter()
            .map(|s| extract_segments(&e, s, &est, 17).unwrap())
            .collect();
        let model = InterferenceModel::train(
            &e,
            &segs,
            &vec![reference.clone(); 2],
            CpRecycleConfig::default(),
        )
        .unwrap();
        assert_eq!(model.num_preambles(), 2);
        // Every occupied non-DC bin has a model with 2 × 17 samples.
        for bin in e.params().occupied_bins() {
            assert!(model.has_model(bin), "bin {bin}");
            assert_eq!(model.num_samples(bin), 34);
        }
        // With no interference the deviations are ~0, so an observation right on the
        // lattice point is far more likely than one a full symbol away.
        let bin = e.params().data_bins()[10];
        let candidate = Complex::new(1.0, 0.0);
        let near = model.log_likelihood(bin, candidate, candidate);
        let far = model.log_likelihood(bin, candidate + Complex::new(1.0, 1.0), candidate);
        assert!(near > far + 1.0, "near {near} far {far}");
    }

    #[test]
    fn interference_widens_the_learned_density() {
        let e = engine();
        let ltf = preamble::generate_ltf(e.params());
        let reference = preamble::ltf_bins(e.params());

        // Clean model.
        let est_clean = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
        let clean_syms = ltf_preamble_symbols(&e, &ltf);
        let clean_segs: Vec<_> = clean_syms
            .iter()
            .map(|s| extract_segments(&e, s, &est_clean, 17).unwrap())
            .collect();
        let clean = InterferenceModel::train(
            &e,
            &clean_segs,
            &vec![reference.clone(); 2],
            CpRecycleConfig::default(),
        )
        .unwrap();

        // Interfered model: add a strong asynchronous interferer over the LTF.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut g = rfdsp::noise::GaussianSource::new();
        let intf_wave = g.complex_vector(&mut rng, 640, 1.0);
        let spec = InterfererSpec::new(intf_wave, 0.15, 21.7, -10.0);
        let combined = combine(&ltf, &[spec]).unwrap();
        let est_intf = ChannelEstimate::from_ltf(&e, &combined.composite).unwrap();
        let intf_syms = ltf_preamble_symbols(&e, &combined.composite);
        let intf_segs: Vec<_> = intf_syms
            .iter()
            .map(|s| extract_segments(&e, s, &est_intf, 17).unwrap())
            .collect();
        let interfered = InterferenceModel::train(
            &e,
            &intf_segs,
            &vec![reference.clone(); 2],
            CpRecycleConfig::default(),
        )
        .unwrap();

        // The interfered model must have learned larger amplitude deviations.
        let bin = e.params().data_bins()[5];
        let clean_mean: f64 =
            clean.samples_amplitude(bin).iter().sum::<f64>() / clean.num_samples(bin) as f64;
        let intf_mean: f64 = interfered.samples_amplitude(bin).iter().sum::<f64>()
            / interfered.num_samples(bin) as f64;
        assert!(
            intf_mean > 3.0 * clean_mean,
            "clean {clean_mean}, interfered {intf_mean}"
        );
    }

    #[test]
    fn update_adds_preambles() {
        let e = engine();
        let ltf = preamble::generate_ltf(e.params());
        let est = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
        let reference = preamble::ltf_bins(e.params());
        let symbols = ltf_preamble_symbols(&e, &ltf);
        let segs: Vec<_> = symbols
            .iter()
            .map(|s| extract_segments(&e, s, &est, 9).unwrap())
            .collect();
        let mut model = InterferenceModel::train(
            &e,
            &segs[..1],
            std::slice::from_ref(&reference),
            CpRecycleConfig::default(),
        )
        .unwrap();
        assert_eq!(model.num_preambles(), 1);
        model.update(&e, &segs[1], &reference).unwrap();
        assert_eq!(model.num_preambles(), 2);
        let bin = e.params().data_bins()[0];
        assert_eq!(model.num_samples(bin), 18);
    }

    #[test]
    fn train_validation() {
        let e = engine();
        assert!(InterferenceModel::train(&e, &[], &[], CpRecycleConfig::default()).is_err());
        let ltf = preamble::generate_ltf(e.params());
        let est = ChannelEstimate::identity(64);
        let segs = extract_segments(&e, &ltf[16..96], &est, 5).unwrap();
        // Mismatched reference count.
        assert!(InterferenceModel::train(
            &e,
            std::slice::from_ref(&segs),
            &[],
            CpRecycleConfig::default()
        )
        .is_err());
        // Wrong reference length.
        assert!(InterferenceModel::train(
            &e,
            &[segs],
            &[vec![Complex::one(); 10]],
            CpRecycleConfig::default()
        )
        .is_err());
    }

    #[test]
    fn fallback_metric_for_unmodelled_bins() {
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        assert!(!model.has_model(5));
        let near = model.log_likelihood(5, Complex::one(), Complex::one());
        let far = model.log_likelihood(5, Complex::new(3.0, 0.0), Complex::one());
        assert!(near > far);
    }

    #[test]
    fn fixed_bandwidths_are_respected() {
        let e = engine();
        let ltf = preamble::generate_ltf(e.params());
        let est = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
        let reference = preamble::ltf_bins(e.params());
        let segs = extract_segments(&e, &ltf[16..96], &est, 9).unwrap();
        let config = CpRecycleConfig {
            bandwidth_amplitude: Some(0.25),
            bandwidth_phase: Some(0.5),
            ..Default::default()
        };
        let model = InterferenceModel::train(&e, &[segs], &[reference], config).unwrap();
        let bin = e.params().data_bins()[3];
        let kde = model.kde(bin).unwrap();
        assert!((kde.bandwidth_amplitude() - 0.25).abs() < 1e-12);
        assert!((kde.bandwidth_phase() - 0.5).abs() < 1e-12);
    }
}
