//! ISI-free-region detection (paper §6, "Detecting ISI free portion of CP").
//!
//! Multipath from the previous OFDM symbol corrupts only the first `delay_spread`
//! samples of the cyclic prefix; the remaining samples are clean copies of the symbol
//! tail. Following the correlation-based schemes the paper cites ([4, 37, 43, 57]), the
//! detector slides over candidate start offsets and computes the normalised correlation
//! between the CP samples from that offset onward and the corresponding symbol-tail
//! samples, averaged over several symbols; the ISI-free region begins where the
//! correlation exceeds a threshold and stays above it.

use crate::Result;
use ofdmphy::params::OfdmParams;
use ofdmphy::PhyError;
use rfdsp::stats::normalized_cross_correlation;
use rfdsp::Complex;

/// Result of ISI-free-region detection.
#[derive(Debug, Clone, PartialEq)]
pub struct IsiFreeEstimate {
    /// Number of ISI-free samples at the end of the cyclic prefix (`P` in the paper;
    /// the receiver can use `P + 1` FFT windows counting the standard one).
    pub isi_free_samples: usize,
    /// The per-offset correlation profile that produced the estimate (index 0 is the
    /// start of the CP), useful for diagnostics.
    pub correlation_profile: Vec<f64>,
}

impl IsiFreeEstimate {
    /// Number of usable FFT segments implied by the estimate (ISI-free samples + the
    /// standard window).
    pub fn num_segments(&self) -> usize {
        self.isi_free_samples + 1
    }
}

/// Detects the ISI-free portion of the cyclic prefix from a block of received OFDM
/// symbols.
///
/// * `samples` — received stream containing at least `num_symbols` consecutive symbols
///   starting at `start`.
/// * `threshold` — correlation threshold above which a CP sample is declared ISI-free
///   (0.9 is a good default at moderate SNR).
pub fn detect_isi_free_region(
    params: &OfdmParams,
    samples: &[Complex],
    start: usize,
    num_symbols: usize,
    threshold: f64,
) -> Result<IsiFreeEstimate> {
    let c = params.cp_len;
    let f = params.fft_size;
    let sym_len = params.symbol_len();
    if num_symbols == 0 {
        return Err(PhyError::invalid("num_symbols", "must be at least 1"));
    }
    if !(0.0..=1.0).contains(&threshold) {
        return Err(PhyError::invalid("threshold", "must be in [0, 1]"));
    }
    let needed = start + num_symbols * sym_len;
    if samples.len() < needed {
        return Err(PhyError::InsufficientSamples {
            needed,
            available: samples.len(),
        });
    }

    // correlation_profile[d]: for CP offset d, correlate the pair (CP sample d, matching
    // symbol-tail sample) *across symbols*. An ISI-free offset repeats the tail exactly
    // (correlation ≈ 1); an offset corrupted by the previous symbol's multipath tail
    // decorrelates in proportion to the ISI energy. Correlating across symbols — rather
    // than across the remaining window — keeps the statistic per-offset, so a short
    // delay spread corrupting only the first few CP samples is localised instead of
    // being diluted over the whole window.
    let mut profile = vec![0.0f64; c];
    for (d, slot) in profile.iter_mut().enumerate() {
        let cp: Vec<Complex> = (0..num_symbols)
            .map(|s| samples[start + s * sym_len + d])
            .collect();
        let tail: Vec<Complex> = (0..num_symbols)
            .map(|s| samples[start + s * sym_len + f + d])
            .collect();
        *slot = normalized_cross_correlation(&cp, &tail)?;
    }

    // The ISI-free region is the longest suffix of the CP whose correlations all exceed
    // the threshold.
    let mut isi_free = 0usize;
    for d in (0..c).rev() {
        if profile[d] >= threshold {
            isi_free = c - d;
        } else {
            break;
        }
    }
    Ok(IsiFreeEstimate {
        isi_free_samples: isi_free,
        correlation_profile: profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::frame::pilot_values;
    use ofdmphy::modulation::Modulation;
    use ofdmphy::ofdm::OfdmEngine;
    use rand::{Rng, SeedableRng};
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

    fn build_stream(num_symbols: usize, seed: u64) -> Vec<Complex> {
        let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Modulation::Qpsk;
        let mut out = Vec::new();
        for _ in 0..num_symbols {
            let data: Vec<Complex> = (0..48)
                .map(|_| {
                    let bits: Vec<u8> = (0..2).map(|_| rng.gen_range(0..2)).collect();
                    m.map(&bits).unwrap()
                })
                .collect();
            out.extend(engine.modulate(&data, &pilot_values(1.0)).unwrap());
        }
        out
    }

    #[test]
    fn clean_channel_whole_cp_is_isi_free() {
        let params = OfdmParams::ieee80211ag();
        let stream = build_stream(6, 1);
        let est = detect_isi_free_region(&params, &stream, 0, 6, 0.9).unwrap();
        assert_eq!(est.isi_free_samples, 16);
        assert_eq!(est.num_segments(), 17);
        assert_eq!(est.correlation_profile.len(), 16);
        for c in &est.correlation_profile {
            assert!(*c > 0.99);
        }
    }

    #[test]
    fn multipath_reduces_isi_free_region_by_delay_spread() {
        let params = OfdmParams::ieee80211ag();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Deterministic 5-tap channel → 4 samples of excess delay corrupt the CP head.
        let pdp = PowerDelayProfile::from_taps(vec![(0, 1.0), (2, 0.5), (4, 0.25)]).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Static, &mut rng);
        let stream = chan.apply(&build_stream(8, 3));
        let mut noisy = stream;
        let mut awgn = AwgnChannel::new();
        awgn.add_noise_snr(&mut rng, &mut noisy, 30.0).unwrap();
        let est = detect_isi_free_region(&params, &noisy, 0, 8, 0.9).unwrap();
        assert!(
            est.isi_free_samples >= 10 && est.isi_free_samples <= 14,
            "expected ~12 ISI-free samples, got {}",
            est.isi_free_samples
        );
    }

    #[test]
    fn noise_only_reports_no_isi_free_samples() {
        let params = OfdmParams::ieee80211ag();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut g = rfdsp::noise::GaussianSource::new();
        let noise = g.complex_vector(&mut rng, 10 * 80, 1.0);
        let est = detect_isi_free_region(&params, &noise, 0, 10, 0.9).unwrap();
        assert!(est.isi_free_samples <= 1);
    }

    #[test]
    fn validation_errors() {
        let params = OfdmParams::ieee80211ag();
        let stream = build_stream(2, 5);
        assert!(detect_isi_free_region(&params, &stream, 0, 0, 0.9).is_err());
        assert!(detect_isi_free_region(&params, &stream, 0, 2, 1.5).is_err());
        assert!(detect_isi_free_region(&params, &stream, 0, 5, 0.9).is_err());
    }

    #[test]
    fn works_at_nonzero_start_offset() {
        let params = OfdmParams::ieee80211ag();
        let mut stream = vec![Complex::zero(); 37];
        stream.extend(build_stream(4, 6));
        let est = detect_isi_free_region(&params, &stream, 37, 4, 0.9).unwrap();
        assert_eq!(est.isi_free_samples, 16);
    }
}
