//! # cprecycle — the CPRecycle receiver (CoNEXT 2016)
//!
//! CPRecycle recycles the over-provisioned cyclic prefix of OFDM symbols for
//! interference mitigation. Instead of discarding the CP, the receiver:
//!
//! 1. extracts `P` FFT windows ("segments") per symbol from the ISI-free part of the CP
//!    ([`segments`]), relying on the fact that the desired signal is identical in every
//!    segment up to a correctable phase ramp (Proposition 3.1) while interference from
//!    non-symbol-aligned transmitters varies by tens of dB across segments;
//! 2. learns a per-subcarrier, non-parametric interference model from the known
//!    preamble symbols — a bivariate Gaussian *product* kernel density over the
//!    amplitude and phase deviations of each segment observation from the known
//!    transmitted value ([`interference_model`], paper Eq. 4);
//! 3. decodes every data subcarrier with a fixed-sphere maximum-likelihood detector:
//!    candidate lattice points within radius `R` of the centroid of the `P`
//!    observations, scored by the product of KDE likelihoods across segments
//!    ([`sphere_ml`], paper Eq. 5).
//!
//! The subcarrier-decision stage is a first-class extension point: every decoder —
//! the sphere ML detector, the naive average-distance baseline (Eq. 3, the authors'
//! earlier ShiftFFT), the genie-aided Oracle segment selector and the conventional
//! standard-window decision — implements the [`decision::SubcarrierDecoder`] trait
//! over the cached lattice-index tables of `ofdmphy::modulation`, and
//! [`config::DecisionStage`] selects which one the frame-level receiver
//! ([`receiver`]) dispatches. The interference estimator behind the sphere decoder
//! is equally pluggable ([`estimator`]): the exact Eq. 4 kernel sum, a precomputed
//! per-bin log-likelihood grid with O(1) lookups, or a parametric Gaussian fit,
//! selected by [`config::CpRecycleConfig::model`]. The crate also provides Oracle
//! selection diagnostics ([`oracle`]) and ISI-free-region detection ([`isi_free`]).
//!
//! For continuous reception, [`session::RxSession`] wraps any
//! [`FrameReceiver`] — push arbitrary-length sample chunks, drain decoded-frame
//! events; detection resumes across chunk boundaries and the interference model can
//! persist across frames ([`ModelPersistence`]). For many concurrent streams,
//! [`server::RxServer`] multiplexes N sessions over a fixed worker pool — bounded
//! per-session ingress queues with explicit backpressure, and per-session outputs
//! bit-identical to standalone sessions for any scheduling.
//!
//! ## Quick example
//!
//! ```
//! use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
//! use ofdmphy::frame::{Mcs, Transmitter};
//! use ofdmphy::modulation::Modulation;
//! use ofdmphy::convcode::CodeRate;
//! use ofdmphy::params::OfdmParams;
//! use ofdmphy::rx::FrameInfo;
//!
//! let params = OfdmParams::ieee80211ag();
//! let tx = Transmitter::new(params.clone());
//! let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
//! let frame = tx.build_frame(b"hello cyclic prefix", mcs, 0x5D).unwrap();
//!
//! let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
//! let info = FrameInfo { mcs, psdu_len: frame.psdu.len() };
//! let decoded = rx.decode_frame(&frame.samples, 0, Some(info)).unwrap();
//! assert!(decoded.crc_ok);
//! assert_eq!(decoded.payload.as_deref(), Some(&b"hello cyclic prefix"[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk_pool;
pub mod clock;
pub mod config;
pub mod decision;
pub mod estimator;
pub mod interference_model;
pub mod isi_free;
pub mod oracle;
pub mod receiver;
pub mod segments;
pub mod server;
pub mod session;
pub mod sphere_ml;

pub use chunk_pool::{ChunkPool, ChunkPoolStats, PooledBuf};
pub use config::{CpRecycleConfig, CpRecycleConfigBuilder, DecisionStage, KernelPrecision};
pub use decision::{
    DecoderScratch, LatticePoint, NaiveCentroidDecoder, OracleSegmentDecoder,
    StandardNearestDecoder, SubcarrierDecoder,
};
pub use estimator::{
    EstimatorState, ExactKdeEstimator, GaussianEstimator, GridKdeEstimator, InterferenceEstimator,
    ModelBackend,
};
pub use interference_model::InterferenceModel;
pub use receiver::{CpRecycleReceiver, RxStream};
pub use segments::{SegmentExtraction, SegmentPowers, SegmentScratch, SymbolSegments};
pub use server::{PushError, RxServer, ServerConfig, SessionHandle};
pub use session::{RxEvent, RxSession, SessionConfig, SessionCounters};
// The streaming-receiver contract lives next to `StandardReceiver` in `ofdmphy`;
// re-exported here because sessions are this crate's API surface.
pub use ofdmphy::rx::{FrameReceiver, ModelPersistence};
pub use sphere_ml::FixedSphereMlDecoder;

/// Convenience alias: the crate reuses the PHY error type since every failure mode is a
/// PHY-level one.
pub type Result<T> = std::result::Result<T, ofdmphy::PhyError>;
