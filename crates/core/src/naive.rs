//! The naive multi-segment decoder (paper §3.3, Eq. 3) — the authors' earlier ShiftFFT
//! approach and the strawman CPRecycle improves upon.
//!
//! For each subcarrier it picks the lattice point with the minimum *average Euclidean
//! distance* to the `P` segment observations:
//!
//! ```text
//! l* = argmin_{l ∈ L} Σ_j |X̂_j − l|
//! ```
//!
//! The paper identifies three weaknesses (sensitivity of the arithmetic mean to
//! outliers, the assumption that clean observations sit exactly on the lattice point,
//! and ignoring phase structure); the tests below reproduce the outlier failure mode
//! that motivates the KDE + ML design.

use crate::segments::SymbolSegments;
use ofdmphy::modulation::Modulation;
use rfdsp::Complex;

/// Decodes one subcarrier from its `P` segment observations by minimum average
/// Euclidean distance over the full constellation. Returns the chosen lattice point and
/// its bits.
pub fn decode_subcarrier(observations: &[Complex], modulation: Modulation) -> (Complex, Vec<u8>) {
    let mut best_point = Complex::zero();
    let mut best_bits = Vec::new();
    let mut best_metric = f64::INFINITY;
    for (point, bits) in modulation.constellation() {
        let metric: f64 = observations.iter().map(|o| (*o - point).norm()).sum();
        if metric < best_metric {
            best_metric = metric;
            best_point = point;
            best_bits = bits;
        }
    }
    (best_point, best_bits)
}

/// Decodes a whole symbol's worth of subcarriers straight from the extracted segments:
/// every FFT bin in `bins` (increasing order) is decided from its `P` observations —
/// an allocation-free slice in the bin-major layout. Returns the decided lattice
/// points, ready for the shared bit pipeline.
pub fn decode_symbol(
    segments: &SymbolSegments,
    bins: &[usize],
    modulation: Modulation,
) -> Vec<Complex> {
    bins.iter()
        .map(|&bin| decode_subcarrier(segments.bin_observations(bin), modulation).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_clean_observations() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            for (point, bits) in m.constellation() {
                let obs = vec![point; 5];
                let (decided, decided_bits) = decode_subcarrier(&obs, m);
                assert!((decided - point).norm() < 1e-12);
                assert_eq!(decided_bits, bits);
            }
        }
    }

    #[test]
    fn averages_out_moderate_noise() {
        let m = Modulation::Qpsk;
        let target = m.points()[2];
        // Small, zero-mean perturbations around the target.
        let obs: Vec<Complex> = [
            Complex::new(0.1, 0.05),
            Complex::new(-0.1, -0.05),
            Complex::new(0.05, -0.1),
            Complex::new(-0.05, 0.1),
            Complex::new(0.0, 0.0),
        ]
        .iter()
        .map(|d| target + *d)
        .collect();
        let (decided, _) = decode_subcarrier(&obs, m);
        assert!((decided - target).norm() < 1e-12);
    }

    #[test]
    fn strong_interference_on_most_segments_breaks_the_naive_decoder() {
        // Reproduces the failure mode of paper §3.3 / Fig. 4c: the transmitted BPSK
        // point is +1, two segments observe it cleanly, but three segments are hit by a
        // strong interference vector that drags the observation past the decision
        // boundary. The average-distance metric is dominated by the corrupted majority
        // and flips the decision — even though the clean segments (plus knowledge of the
        // interference statistics) would identify +1, which is what the CPRecycle ML
        // decoder does in `sphere_ml::tests`.
        let m = Modulation::Bpsk;
        let true_point = Complex::new(1.0, 0.0);
        let obs = vec![
            Complex::new(1.02, 0.01),
            Complex::new(0.99, -0.02),
            Complex::new(-2.1, 0.15), // +1 plus an interference vector of amplitude ≈ 3.1
            Complex::new(-2.05, -0.1),
            Complex::new(-2.12, 0.05),
        ];
        let (decided, _) = decode_subcarrier(&obs, m);
        assert!(
            (decided - true_point).norm() > 1.0,
            "expected the naive decoder to be fooled, got {decided}"
        );
    }

    #[test]
    fn decode_symbol_maps_each_subcarrier() {
        let m = Modulation::Qam16;
        let points = m.points();
        // Three identical segments over an 8-bin toy FFT, one constellation point per bin.
        let row: Vec<Complex> = points.iter().take(8).copied().collect();
        let segments = SymbolSegments::from_rows(vec![row.clone(), row.clone(), row]);
        let bins: Vec<usize> = (0..8).collect();
        let decided = decode_symbol(&segments, &bins, m);
        assert_eq!(decided.len(), 8);
        for (d, p) in decided.iter().zip(points.iter().take(8)) {
            assert!((*d - *p).norm() < 1e-12);
        }
    }
}
