//! Oracle segment-selection diagnostics (paper §3.2).
//!
//! The Oracle assumes perfect knowledge of the interference: for every subcarrier it
//! inspects the interference-only waveform (obtainable in the paper's testbed by muting
//! the sender, and in this reproduction directly from the scenario mixer), picks the FFT
//! segment with the minimum interference power, and decodes that segment's observation
//! with a plain nearest-lattice-point decision. The decoding half lives in
//! [`crate::decision::OracleSegmentDecoder`] (a [`SubcarrierDecoder`] dispatched via
//! [`DecisionStage::Oracle`]); this module holds the selection *diagnostics* — the
//! per-bin best-segment/power summary behind Fig. 4a and the interference-reduction
//! curve.
//!
//! [`SubcarrierDecoder`]: crate::decision::SubcarrierDecoder
//! [`DecisionStage::Oracle`]: crate::config::DecisionStage::Oracle

use crate::segments::SegmentPowers;

/// Per-subcarrier best-segment choice made by the Oracle.
#[derive(Debug, Clone)]
pub struct OracleSelection {
    /// For every FFT bin, the segment index with minimum interference power.
    pub best_segment: Vec<usize>,
    /// The corresponding minimum interference power per bin (linear).
    pub min_interference: Vec<f64>,
    /// The interference power per bin that the standard receiver (last segment) sees,
    /// for the Fig. 4a comparison.
    pub standard_interference: Vec<f64>,
}

/// Summarises, per FFT bin, the segment with the lowest interference power.
///
/// `powers` is produced by [`crate::segments::interference_power_per_segment`] on the
/// interference-only waveform; its bin-major layout makes each bin's scan a contiguous
/// slice. The first minimum wins on ties (segment order), matching
/// [`crate::decision::OracleSegmentDecoder::best_segment`].
pub fn select_best_segments(powers: &SegmentPowers) -> OracleSelection {
    let num_bins = powers.fft_size();
    let num_segments = powers.num_segments();
    let mut best_segment = vec![0usize; num_bins];
    let mut min_interference = vec![f64::INFINITY; num_bins];
    let mut standard_interference = vec![0.0f64; num_bins];
    for bin in 0..num_bins {
        for (j, &p) in powers.bin_powers(bin).iter().enumerate() {
            if p < min_interference[bin] {
                min_interference[bin] = p;
                best_segment[bin] = j;
            }
        }
        standard_interference[bin] = powers.value(num_segments - 1, bin);
    }
    OracleSelection {
        best_segment,
        min_interference,
        standard_interference,
    }
}

/// The oracle's per-bin interference reduction relative to the standard receiver, in dB
/// (positive = oracle sees less interference) — the quantity plotted in Fig. 4a.
pub fn interference_reduction_db(selection: &OracleSelection) -> Vec<f64> {
    selection
        .standard_interference
        .iter()
        .zip(&selection.min_interference)
        .map(|(std_p, min_p)| 10.0 * (std_p.max(1e-30) / min_p.max(1e-30)).log10())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_minimum_interference_segment_per_bin() {
        // 3 segments × 4 bins with a known minimum pattern.
        let powers = SegmentPowers::from_rows(vec![
            vec![1.0, 5.0, 0.1, 2.0],
            vec![0.5, 0.2, 3.0, 2.0],
            vec![2.0, 1.0, 1.0, 0.4],
        ]);
        let sel = select_best_segments(&powers);
        assert_eq!(sel.best_segment, vec![1, 1, 0, 2]);
        assert_eq!(sel.min_interference, vec![0.5, 0.2, 0.1, 0.4]);
        assert_eq!(sel.standard_interference, vec![2.0, 1.0, 1.0, 0.4]);
        let gain = interference_reduction_db(&sel);
        assert!((gain[0] - 10.0 * (2.0f64 / 0.5).log10()).abs() < 1e-9);
        assert!(gain[3].abs() < 1e-9); // standard already optimal on bin 3

        // The selection agrees bin-for-bin with the decision-stage decoder.
        let dec = crate::decision::OracleSegmentDecoder::new(
            ofdmphy::modulation::Modulation::Bpsk,
            &powers,
        );
        for bin in 0..4 {
            assert_eq!(dec.best_segment(bin), sel.best_segment[bin], "bin {bin}");
        }
    }
}
