//! The Oracle segment selector (paper §3.2).
//!
//! The Oracle assumes perfect knowledge of the interference: for every subcarrier it
//! inspects the interference-only waveform (obtainable in the paper's testbed by muting
//! the sender, and in this reproduction directly from the scenario mixer), picks the FFT
//! segment with the minimum interference power, and decodes that segment's observation
//! with a plain nearest-lattice-point decision. It is impractical — the whole point of
//! CPRecycle is to approach it without the genie — but it upper-bounds the achievable
//! gain and generates Fig. 4a / Fig. 5.

use crate::segments::SymbolSegments;
use ofdmphy::modulation::Modulation;
use rfdsp::Complex;

/// Per-subcarrier best-segment choice made by the Oracle.
#[derive(Debug, Clone)]
pub struct OracleSelection {
    /// For every FFT bin, the segment index with minimum interference power.
    pub best_segment: Vec<usize>,
    /// The corresponding minimum interference power per bin (linear).
    pub min_interference: Vec<f64>,
    /// The interference power per bin that the standard receiver (last segment) sees,
    /// for the Fig. 4a comparison.
    pub standard_interference: Vec<f64>,
}

/// Selects, per FFT bin, the segment with the lowest interference power.
///
/// `interference_power[segment][bin]` is produced by
/// [`crate::segments::interference_power_per_segment`] on the interference-only
/// waveform.
pub fn select_best_segments(interference_power: &[Vec<f64>]) -> OracleSelection {
    assert!(
        !interference_power.is_empty(),
        "oracle selection needs at least one segment"
    );
    let num_bins = interference_power[0].len();
    let num_segments = interference_power.len();
    let mut best_segment = vec![0usize; num_bins];
    let mut min_interference = vec![f64::INFINITY; num_bins];
    for (j, seg) in interference_power.iter().enumerate() {
        for (bin, &p) in seg.iter().enumerate() {
            if p < min_interference[bin] {
                min_interference[bin] = p;
                best_segment[bin] = j;
            }
        }
    }
    let standard_interference = interference_power[num_segments - 1].clone();
    OracleSelection {
        best_segment,
        min_interference,
        standard_interference,
    }
}

/// Decodes one symbol with the Oracle: for each data subcarrier, take the observation
/// from the genie-selected segment and map it to the nearest lattice point.
///
/// * `segments` — the equalised segments of the *composite* (signal + interference)
///   received symbol.
/// * `selection` — the per-bin best segments chosen from the interference-only waveform.
/// * `data_bins` — the FFT bins carrying data, in increasing order.
pub fn decode_symbol(
    segments: &SymbolSegments,
    selection: &OracleSelection,
    data_bins: &[usize],
    modulation: Modulation,
) -> Vec<Complex> {
    data_bins
        .iter()
        .map(|&bin| {
            let seg = selection.best_segment[bin].min(segments.num_segments() - 1);
            let observation = segments.value(seg, bin);
            modulation.nearest_point(observation).0
        })
        .collect()
}

/// The oracle's per-bin interference reduction relative to the standard receiver, in dB
/// (positive = oracle sees less interference) — the quantity plotted in Fig. 4a.
pub fn interference_reduction_db(selection: &OracleSelection) -> Vec<f64> {
    selection
        .standard_interference
        .iter()
        .zip(&selection.min_interference)
        .map(|(std_p, min_p)| 10.0 * (std_p.max(1e-30) / min_p.max(1e-30)).log10())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_minimum_interference_segment_per_bin() {
        // 3 segments × 4 bins with a known minimum pattern.
        let power = vec![
            vec![1.0, 5.0, 0.1, 2.0],
            vec![0.5, 0.2, 3.0, 2.0],
            vec![2.0, 1.0, 1.0, 0.4],
        ];
        let sel = select_best_segments(&power);
        assert_eq!(sel.best_segment, vec![1, 1, 0, 2]);
        assert_eq!(sel.min_interference, vec![0.5, 0.2, 0.1, 0.4]);
        assert_eq!(sel.standard_interference, vec![2.0, 1.0, 1.0, 0.4]);
        let gain = interference_reduction_db(&sel);
        assert!((gain[0] - 10.0 * (2.0f64 / 0.5).log10()).abs() < 1e-9);
        assert!(gain[3].abs() < 1e-9); // standard already optimal on bin 3
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_selection_panics() {
        select_best_segments(&[]);
    }

    #[test]
    fn decode_symbol_uses_selected_segments() {
        use ofdmphy::modulation::Modulation;
        let m = Modulation::Bpsk;
        // Two segments over a 4-bin toy FFT: segment 0 is clean, segment 1 is heavily
        // corrupted on bins 0..2.
        let clean = vec![
            Complex::new(1.0, 0.0),
            Complex::new(-1.0, 0.0),
            Complex::new(1.0, 0.0),
            Complex::new(-1.0, 0.0),
        ];
        let corrupted = vec![
            Complex::new(-2.0, 0.5),
            Complex::new(2.0, -0.5),
            Complex::new(-2.0, 0.0),
            Complex::new(-1.0, 0.0),
        ];
        let segments = SymbolSegments::from_rows(vec![clean.clone(), corrupted]);
        let selection = OracleSelection {
            best_segment: vec![0, 0, 0, 1],
            min_interference: vec![0.0; 4],
            standard_interference: vec![1.0; 4],
        };
        let decided = decode_symbol(&segments, &selection, &[0, 1, 2, 3], m);
        for (d, c) in decided.iter().zip(&clean) {
            assert!((*d - *c).norm() < 1e-12);
        }
    }
}
