//! The frame-level CPRecycle receiver (paper §4.3, Algorithm 1, Fig. 7).
//!
//! The receiver is a staged pipeline — **sync → extract → decide → bit pipeline** —
//! that mirrors the standard 802.11a/g receive chain but swaps the decision stage:
//!
//! 1. **sync**: locate the LTF/SIGNAL/DATA geometry and estimate the channel from the
//!    long training field (shared with the standard receiver — Eq. 1 divides every
//!    segment by the same `Ĥ`); when the configured [`DecisionStage`] scores with the
//!    interference model, train it from the segments of the two LTF symbols (the
//!    `N_p = 2` preambles of an 802.11 frame) behind the configured estimator backend
//!    ([`CpRecycleConfig::model`] — exact KDE, precomputed grid or Gaussian fit);
//! 2. **extract**: for every subsequent OFDM symbol, extract the `P` ISI-free FFT
//!    segments (sliding-DFT kernel by default);
//! 3. **decide**: dispatch the configured [`SubcarrierDecoder`] — fixed-sphere ML,
//!    naive average-distance, genie-aided Oracle or the standard-window decision —
//!    over the bin-major observation slices;
//! 4. **bit pipeline**: feed the decided lattice points into the unchanged `ofdmphy`
//!    back end (deinterleave → Viterbi → descramble → FCS).
//!
//! With `num_segments = 1` the receiver degrades gracefully to the standard receiver
//! (one window, centroid = the observation, sphere around it), matching the paper's
//! computational-scalability claim.
//!
//! [`SubcarrierDecoder`]: crate::decision::SubcarrierDecoder

use crate::config::{CpRecycleConfig, DecisionStage};
use crate::decision::{
    NaiveCentroidDecoder, OracleSegmentDecoder, StandardNearestDecoder, SubcarrierDecoder,
};
use crate::interference_model::InterferenceModel;
use crate::segments::{
    extract_segments_precise, interference_power_per_segment_with, SegmentScratch, SymbolSegments,
};
use crate::sphere_ml::FixedSphereMlDecoder;
use crate::Result;
use obs::{NoopRecorder, Recorder, Span, StageTimer};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::parse_signal_bits;
use ofdmphy::interleaver::Interleaver;
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use ofdmphy::rx::{decode_psdu_from_symbols, FrameInfo, FrameReceiver, ModelPersistence, RxFrame};
use ofdmphy::viterbi::ViterbiDecoder;
use ofdmphy::PhyError;
use rfdsp::Complex;

/// The CPRecycle receiver.
///
/// The core flow (the `quickstart` example, condensed): build a frame, decode it, read
/// the payload back.
///
/// ```
/// use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
/// use ofdmphy::convcode::CodeRate;
/// use ofdmphy::frame::{Mcs, Transmitter};
/// use ofdmphy::modulation::Modulation;
/// use ofdmphy::params::OfdmParams;
///
/// let params = OfdmParams::ieee80211ag();
/// let tx = Transmitter::new(params.clone());
/// let mcs = Mcs::new(Modulation::Qam16, CodeRate::Half);
/// let payload = b"CPRecycle quickstart: the cyclic prefix is worth recycling.";
/// let frame = tx.build_frame(payload, mcs, 0x5D).unwrap();
///
/// let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
/// // `None`: decode the SIGNAL field too, exactly like an over-the-air capture.
/// let decoded = rx.decode_frame(&frame.samples, 0, None).unwrap();
/// assert!(decoded.crc_ok);
/// assert_eq!(decoded.info.mcs, mcs);
/// assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
/// ```
#[derive(Debug, Clone)]
pub struct CpRecycleReceiver {
    engine: OfdmEngine,
    viterbi: ViterbiDecoder,
    config: CpRecycleConfig,
}

/// Per-stream receiver state threaded across the frames of one sample stream: the
/// extraction/decision scratch plus the cross-frame interference model.
///
/// Under [`ModelPersistence::PerFrame`] every frame retrains the model from its own
/// preamble, exactly like the batch [`CpRecycleReceiver::decode_frame`] — streamed
/// and batch decodes are bit-for-bit identical. Under [`ModelPersistence::Rolling`]
/// the model persists and each new frame's two LTF segment sets feed
/// [`InterferenceModel::update`], the incremental dirty-bin refit: `N_p` grows by 2
/// per frame and the per-subcarrier densities sharpen instead of resetting (§4.3's
/// "constantly updated when subsequent preambles are received").
///
/// Callers driving this directly (outside [`RxSession`]) must call
/// [`begin_frame`](RxStream::begin_frame) once per *new* frame: decode retries of the
/// same frame (a partial buffer raising `InsufficientSamples`) must not absorb the
/// frame's preamble into the rolling model twice.
///
/// [`RxSession`]: crate::session::RxSession
#[derive(Debug, Clone, Default)]
pub struct RxStream {
    /// Extraction + decision scratch, reused across frames.
    pub scratch: SegmentScratch,
    persistence: ModelPersistence,
    model: Option<InterferenceModel>,
    /// Monotone frame counter bumped by [`begin_frame`](Self::begin_frame).
    frame_seq: u64,
    /// `frame_seq` value whose preamble the model last absorbed.
    model_frame: u64,
}

impl RxStream {
    /// Fresh stream state with the given persistence policy.
    pub fn new(persistence: ModelPersistence) -> Self {
        RxStream {
            persistence,
            ..Default::default()
        }
    }

    /// The persistence policy of this stream.
    pub fn persistence(&self) -> ModelPersistence {
        self.persistence
    }

    /// The current cross-frame interference model, if one has been trained.
    pub fn model(&self) -> Option<&InterferenceModel> {
        self.model.as_ref()
    }

    /// Marks the start of a new frame; the next decode may absorb its preamble into
    /// the rolling model (idempotently — repeated decodes of the same frame do not).
    pub fn begin_frame(&mut self) {
        self.frame_seq += 1;
    }

    /// Drops the accumulated model (e.g. after a long gap or a channel change); the
    /// next frame retrains from scratch.
    pub fn reset_model(&mut self) {
        self.model = None;
        self.model_frame = 0;
    }
}

/// The cross-frame model slot `decode_inner` threads when a decode runs against an
/// [`RxStream`] instead of a throwaway per-frame model.
struct PersistentModel<'a> {
    model: &'a mut Option<InterferenceModel>,
    persistence: ModelPersistence,
    frame_seq: u64,
    model_frame: &'a mut u64,
}

impl CpRecycleReceiver {
    /// Creates a receiver for the given numerology and configuration.
    pub fn new(params: OfdmParams, config: CpRecycleConfig) -> Self {
        CpRecycleReceiver {
            engine: OfdmEngine::new(params),
            viterbi: ViterbiDecoder::new(),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpRecycleConfig {
        &self.config
    }

    /// Access to the OFDM engine (shared by diagnostics and the experiment harness).
    pub fn engine(&self) -> &OfdmEngine {
        &self.engine
    }

    /// The number of FFT segments the receiver will use given its configuration and the
    /// (known or assumed) number of ISI-free CP samples.
    ///
    /// The standard-window stage reads only the last segment, so it extracts exactly
    /// one — its decisions are identical for any `P` (segment `P − 1` is always the
    /// standard window) and extracting more would misstate the conventional
    /// receiver's cost in decoder-sweep campaigns.
    pub fn effective_segments(&self) -> usize {
        if matches!(self.config.decision, DecisionStage::Standard) {
            return 1;
        }
        let params = self.engine.params();
        let isi_free = self.config.isi_free_samples.unwrap_or(params.cp_len);
        let available = isi_free.min(params.cp_len) + 1;
        self.config.num_segments.clamp(1, available)
    }

    /// Decodes a frame that starts at sample `frame_start` of `samples`.
    ///
    /// If `info` is `None` the SIGNAL field is decoded (with the CPRecycle decision
    /// stage, so the SIGNAL symbol also benefits from interference mitigation);
    /// otherwise the supplied metadata is used directly — the genie-aided mode the
    /// controlled experiments use to isolate DATA-symbol errors.
    pub fn decode_frame(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> Result<RxFrame> {
        let mut scratch = SegmentScratch::new();
        self.decode_frame_genie(samples, frame_start, info, None, &mut scratch)
    }

    /// [`decode_frame`](Self::decode_frame) with stage timings emitted into `obs`.
    ///
    /// Spans are keyed by the decision-stage family
    /// ([`DecisionStage::kind_label`]) and, for model stages, the estimator
    /// backend label: `("sync", kind)`, `("model_train", backend)`,
    /// `("extract", kind)` and `("decide", kind)` per OFDM symbol,
    /// `("bits", kind)`, and `("model_update", backend)` when a rolling model
    /// absorbs a preamble. With a no-op recorder this monomorphises to exactly
    /// the uninstrumented pipeline — decodes are bit-for-bit identical either
    /// way (pinned by the `obs_equivalence` integration test).
    pub fn decode_frame_observed<O: Recorder>(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        obs: &O,
    ) -> Result<RxFrame> {
        let mut scratch = SegmentScratch::new();
        self.decode_inner(samples, frame_start, info, None, &mut scratch, None, obs)
    }

    /// [`decode_frame`](Self::decode_frame) with caller-owned scratch.
    ///
    /// The scratch holds the sliding-DFT plan, the per-symbol working buffers and the
    /// decision-stage candidate/score buffers; reusing one across frames (the campaign
    /// engine keeps one per worker) removes all per-frame twiddle construction and
    /// keeps the decision stage allocation-free. `decode_frame` is the convenience
    /// wrapper that allocates a throwaway scratch.
    pub fn decode_frame_scratch(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        scratch: &mut SegmentScratch,
    ) -> Result<RxFrame> {
        self.decode_frame_genie(samples, frame_start, info, None, scratch)
    }

    /// [`decode_frame_scratch`](Self::decode_frame_scratch) with an optional genie
    /// interference-only capture, aligned sample-for-sample with `samples`.
    ///
    /// Only the [`DecisionStage::Oracle`] stage reads the genie waveform (it measures
    /// each symbol's per-segment interference power from it); every other stage
    /// discards it before the pipeline starts, so harnesses that have the capture can
    /// pass it unconditionally — even one shorter than the composite. Decoding with
    /// the Oracle stage and no genie capture is an error, as is an Oracle decode
    /// whose genie capture ends before the frame does.
    pub fn decode_frame_genie(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        interference_only: Option<&[Complex]>,
        scratch: &mut SegmentScratch,
    ) -> Result<RxFrame> {
        self.decode_inner(
            samples,
            frame_start,
            info,
            interference_only,
            scratch,
            None,
            &NoopRecorder,
        )
    }

    /// Decodes one frame of a sample stream, threading the cross-frame [`RxStream`]
    /// state — the receiver half of the streaming API ([`crate::session::RxSession`]
    /// drives it through the [`FrameReceiver`] trait; genie-timed harnesses like the
    /// link campaigns call it directly).
    ///
    /// Under [`ModelPersistence::PerFrame`] this is bit-for-bit
    /// [`decode_frame_scratch`](Self::decode_frame_scratch); under
    /// [`ModelPersistence::Rolling`] the stream's interference model persists and
    /// absorbs this frame's two LTF segment sets through the incremental
    /// [`InterferenceModel::update`] (once per [`RxStream::begin_frame`], so decode
    /// retries on a growing buffer stay idempotent).
    pub fn decode_frame_session(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        interference_only: Option<&[Complex]>,
        stream: &mut RxStream,
    ) -> Result<RxFrame> {
        self.decode_frame_session_observed(
            samples,
            frame_start,
            info,
            interference_only,
            stream,
            &NoopRecorder,
        )
    }

    /// [`decode_frame_session`](Self::decode_frame_session) with stage timings
    /// emitted into `obs` (same span map as
    /// [`decode_frame_observed`](Self::decode_frame_observed)).
    pub fn decode_frame_session_observed<O: Recorder>(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        interference_only: Option<&[Complex]>,
        stream: &mut RxStream,
        obs: &O,
    ) -> Result<RxFrame> {
        let RxStream {
            scratch,
            persistence,
            model,
            frame_seq,
            model_frame,
        } = stream;
        self.decode_inner(
            samples,
            frame_start,
            info,
            interference_only,
            scratch,
            Some(PersistentModel {
                model,
                persistence: *persistence,
                frame_seq: *frame_seq,
                model_frame,
            }),
            obs,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_inner<O: Recorder>(
        &self,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        interference_only: Option<&[Complex]>,
        scratch: &mut SegmentScratch,
        persistent: Option<PersistentModel<'_>>,
        obs: &O,
    ) -> Result<RxFrame> {
        // Stages that never read the genie waveform drop it here, so a short or
        // misaligned capture cannot fail a decode that would not have touched it.
        let interference_only = if self.config.decision.needs_genie() {
            if interference_only.is_none() {
                return Err(PhyError::invalid(
                    "decision",
                    "the Oracle decision stage needs the interference-only capture \
                     (use decode_frame_genie)",
                ));
            }
            interference_only
        } else {
            None
        };
        // --- Stage 1: sync — frame geometry and channel estimate ---------------------
        let kind = self.config.decision.kind_label();
        let backend = self.config.model.label();
        let params = self.engine.params().clone();
        let sym_len = params.symbol_len();
        let preamble_len = preamble::preamble_len(&params);
        let ltf_start = frame_start + preamble::ltf_start_offset(&params);
        let signal_start = frame_start + preamble_len;
        let data_start = signal_start + sym_len;
        if samples.len() < data_start + sym_len {
            return Err(PhyError::InsufficientSamples {
                needed: data_start + sym_len,
                available: samples.len(),
            });
        }
        let timer = StageTimer::start(obs, Span::new("sync", kind));
        let estimate = ChannelEstimate::from_ltf(&self.engine, &samples[ltf_start..signal_start])?;
        timer.finish(obs);
        let num_segments = self.effective_segments();
        // Only the sphere stage scores with the interference model; the other stages
        // skip the training cost entirely. A throwaway decode trains per frame; a
        // stream decode consults the persistence policy. A *rolling* model defers
        // absorbing this frame's preamble until the SIGNAL field has validated (or
        // the caller vouched for the frame via genie `info`): streaming sessions
        // decode every detection, and absorbing the "preamble" of a false detection
        // — an interferer's leaked frame, a noise fluke — would poison the model for
        // every later frame of the stream.
        let mut persistent = persistent;
        let mut throwaway: Option<InterferenceModel> = None;
        let needs_model = self.config.decision.needs_interference_model();
        let mut absorb_pending = false;
        let mut commit_pending = false;
        if needs_model {
            let timer = StageTimer::start(obs, Span::new("model_train", backend));
            let mut trained = true;
            match &mut persistent {
                None => {
                    throwaway = Some(self.train_model(
                        samples,
                        ltf_start,
                        &estimate,
                        num_segments,
                        scratch,
                    )?);
                }
                Some(p) => match p.persistence {
                    ModelPersistence::PerFrame => {
                        // Retrained and replaced every frame, so a false detection's
                        // garbage model never outlives its own (failing) decode.
                        *p.model = Some(self.train_model(
                            samples,
                            ltf_start,
                            &estimate,
                            num_segments,
                            scratch,
                        )?);
                        *p.model_frame = p.frame_seq;
                    }
                    ModelPersistence::Rolling if p.model.is_none() => {
                        // First frame of a rolling stream: train into the throwaway
                        // and only commit once the frame is trusted — a false
                        // detection must not seed the stream's model.
                        throwaway = Some(self.train_model(
                            samples,
                            ltf_start,
                            &estimate,
                            num_segments,
                            scratch,
                        )?);
                        commit_pending = true;
                    }
                    ModelPersistence::Rolling => {
                        absorb_pending = *p.model_frame != p.frame_seq;
                        trained = false;
                    }
                },
            }
            if trained {
                timer.finish(obs);
            }
        }

        // --- Frame metadata (SIGNAL decodes through the same decision stage; a
        //     rolling stream scores it with the pre-frame model) -----------------------
        let info = match info {
            Some(i) => i,
            None => {
                let model = model_in_use(needs_model, &throwaway, &persistent);
                self.decode_signal(
                    &samples[signal_start..signal_start + sym_len],
                    &estimate,
                    model,
                    genie_symbol(interference_only, signal_start, sym_len)?,
                    num_segments,
                    scratch,
                )?
            }
        };

        // --- Stages 2+3: extract segments and decide every DATA symbol ---------------
        let num_symbols = info.num_data_symbols(&params);
        let needed = data_start + num_symbols * sym_len;
        if samples.len() < needed {
            return Err(PhyError::InsufficientSamples {
                needed,
                available: samples.len(),
            });
        }

        let model = model_in_use(needs_model, &throwaway, &persistent);
        let data_bins = params.data_bins();
        let mut decided_symbols = Vec::with_capacity(num_symbols);
        for s in 0..num_symbols {
            let start = data_start + s * sym_len;
            let timer = StageTimer::start(obs, Span::new("extract", kind));
            let segments = extract_segments_precise(
                &self.engine,
                &samples[start..start + sym_len],
                &estimate,
                num_segments,
                self.config.extraction,
                self.config.precision,
                scratch,
            )?;
            timer.finish(obs);
            let timer = StageTimer::start(obs, Span::new("decide", kind));
            decided_symbols.push(self.run_decision_stage(
                info.mcs.modulation,
                model,
                &segments,
                &data_bins,
                genie_symbol(interference_only, start, sym_len)?,
                num_segments,
                scratch,
            )?);
            timer.finish(obs);
        }

        // --- Stage 4: the shared bit pipeline -----------------------------------------
        let timer = StageTimer::start(obs, Span::new("bits", kind));
        let (psdu, crc_ok) =
            decode_psdu_from_symbols(&self.viterbi, &params, &decided_symbols, info)?;
        timer.finish(obs);
        let payload = if crc_ok {
            Some(psdu[..psdu.len() - 4].to_vec())
        } else {
            None
        };

        // Cross-frame model maintenance, gated on the FCS verdict: only a frame whose
        // CRC passed feeds the rolling model. Streaming sessions decode every
        // detection, and a *phantom* — a false detection whose SIGNAL field happened
        // to pass parity with a plausible length — reaches this point as a
        // CRC-failed "frame"; absorbing its garbage "preamble" would poison the
        // model for the rest of the stream (measured: a single phantom absorption
        // costs more frames than skipping the preambles of genuinely corrupt own
        // frames ever recovers). Decisions above always use the model as of the
        // *previous* trusted frame; this frame's preamble sharpens the next one.
        if crc_ok {
            if commit_pending {
                let p = persistent.as_mut().expect("commit implies a stream slot");
                *p.model = throwaway.take();
                *p.model_frame = p.frame_seq;
                obs.counter("model_commits", 1);
            } else if absorb_pending {
                let timer = StageTimer::start(obs, Span::new("model_update", backend));
                let p = persistent.as_mut().expect("absorb implies a stream slot");
                let (seg1, seg2) = self.ltf_training_segments(
                    samples,
                    ltf_start,
                    &estimate,
                    num_segments,
                    scratch,
                )?;
                let reference = preamble::ltf_bins(&params);
                let m = p.model.as_mut().expect("absorb implies an existing model");
                m.update_preambles(&self.engine, &[seg1, seg2], &reference)?;
                *p.model_frame = p.frame_seq;
                timer.finish(obs);
                obs.counter("model_absorbs", 1);
            }
        }
        Ok(RxFrame {
            info,
            psdu,
            crc_ok,
            payload,
            equalized_symbols: decided_symbols,
        })
    }

    /// Decides one symbol's data subcarriers with the configured [`DecisionStage`].
    ///
    /// Decoder construction is allocation-free (the lattice table is cached
    /// process-wide, the model is borrowed), so binding a fresh decoder per symbol
    /// costs a few scalar copies; all working buffers live in `scratch.decision`.
    #[allow(clippy::too_many_arguments)]
    fn run_decision_stage(
        &self,
        modulation: Modulation,
        model: Option<&InterferenceModel>,
        segments: &SymbolSegments,
        data_bins: &[usize],
        genie_symbol: Option<&[Complex]>,
        num_segments: usize,
        scratch: &mut SegmentScratch,
    ) -> Result<Vec<Complex>> {
        match self.config.decision {
            DecisionStage::Sphere {
                radius_min_distances,
            } => {
                let model = model.expect("sphere stage always trains a model");
                let decoder = FixedSphereMlDecoder::new(model, modulation, radius_min_distances);
                Ok(decoder.decide_symbol(segments, data_bins, &mut scratch.decision))
            }
            DecisionStage::Naive => Ok(NaiveCentroidDecoder::new(modulation).decide_symbol(
                segments,
                data_bins,
                &mut scratch.decision,
            )),
            DecisionStage::Standard => Ok(StandardNearestDecoder::new(modulation).decide_symbol(
                segments,
                data_bins,
                &mut scratch.decision,
            )),
            DecisionStage::Oracle => {
                let genie = genie_symbol.expect("checked before the pipeline started");
                let powers = interference_power_per_segment_with(
                    &self.engine,
                    genie,
                    num_segments,
                    self.config.extraction,
                    scratch,
                )?;
                let decoder = OracleSegmentDecoder::new(modulation, &powers);
                Ok(decoder.decide_symbol(segments, data_bins, &mut scratch.decision))
            }
        }
    }

    /// Extracts the segment sets of the two long training symbols — the `N_p = 2`
    /// preamble observations every interference-model fit or update consumes.
    ///
    /// The LTF is re-framed as two 80-sample "symbols" whose cyclic prefixes are
    /// genuinely cyclic: the first uses the tail of the double guard interval, the
    /// second uses the tail of the first long symbol (the two long symbols are
    /// identical, so the prefix property holds exactly).
    fn ltf_training_segments(
        &self,
        samples: &[Complex],
        ltf_start: usize,
        estimate: &ChannelEstimate,
        num_segments: usize,
        scratch: &mut SegmentScratch,
    ) -> Result<(SymbolSegments, SymbolSegments)> {
        let params = self.engine.params();
        let f = params.fft_size;
        let c = params.cp_len;
        // Symbol 1: CP = last `c` samples of the GI2, data = first long symbol.
        let sym1_start = ltf_start + 2 * c - c;
        // Symbol 2: CP = tail of long symbol 1, data = long symbol 2.
        let sym2_start = ltf_start + 2 * c + f - c;
        let sym_len = params.symbol_len();
        let seg1 = extract_segments_precise(
            &self.engine,
            &samples[sym1_start..sym1_start + sym_len],
            estimate,
            num_segments,
            self.config.extraction,
            self.config.precision,
            scratch,
        )?;
        let seg2 = extract_segments_precise(
            &self.engine,
            &samples[sym2_start..sym2_start + sym_len],
            estimate,
            num_segments,
            self.config.extraction,
            self.config.precision,
            scratch,
        )?;
        Ok((seg1, seg2))
    }

    /// Trains a fresh interference model from the two long training symbols.
    fn train_model(
        &self,
        samples: &[Complex],
        ltf_start: usize,
        estimate: &ChannelEstimate,
        num_segments: usize,
        scratch: &mut SegmentScratch,
    ) -> Result<InterferenceModel> {
        let (seg1, seg2) =
            self.ltf_training_segments(samples, ltf_start, estimate, num_segments, scratch)?;
        let reference = preamble::ltf_bins(self.engine.params());
        InterferenceModel::train(
            &self.engine,
            &[seg1, seg2],
            &[reference.clone(), reference],
            self.config,
        )
    }

    /// Decodes the SIGNAL symbol with the configured decision stage.
    fn decode_signal(
        &self,
        symbol_samples: &[Complex],
        estimate: &ChannelEstimate,
        model: Option<&InterferenceModel>,
        genie_symbol: Option<&[Complex]>,
        num_segments: usize,
        scratch: &mut SegmentScratch,
    ) -> Result<FrameInfo> {
        let params = self.engine.params();
        let segments: SymbolSegments = extract_segments_precise(
            &self.engine,
            symbol_samples,
            estimate,
            num_segments,
            self.config.extraction,
            self.config.precision,
            scratch,
        )?;
        let data_bins = params.data_bins();
        let decided = self.run_decision_stage(
            Modulation::Bpsk,
            model,
            &segments,
            &data_bins,
            genie_symbol,
            num_segments,
            scratch,
        )?;
        let bits = Modulation::Bpsk.demap_hard_all(&decided);
        let interleaver = Interleaver::new(params.num_data_subcarriers(), 1)?;
        let deinterleaved = interleaver.deinterleave(&bits)?;
        let decoded = self.viterbi.decode(&deinterleaved, CodeRate::Half)?;
        let (mcs, psdu_len) = parse_signal_bits(&decoded)?;
        if psdu_len == 0 {
            return Err(PhyError::DecodeFailure("SIGNAL length of zero".into()));
        }
        Ok(FrameInfo { mcs, psdu_len })
    }
}

impl FrameReceiver for CpRecycleReceiver {
    type Stream = RxStream;

    fn params(&self) -> &OfdmParams {
        self.engine.params()
    }

    fn new_stream(&self, persistence: ModelPersistence) -> RxStream {
        RxStream::new(persistence)
    }

    fn begin_frame(&self, stream: &mut RxStream) {
        stream.begin_frame();
    }

    /// Streamed decode without a genie waveform: sessions run over-the-air-style, so
    /// the [`DecisionStage::Oracle`] stage (which needs the interference-only
    /// capture) is rejected here exactly as in [`CpRecycleReceiver::decode_frame`].
    fn decode_stream(
        &self,
        stream: &mut RxStream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> Result<RxFrame> {
        self.decode_frame_session(samples, frame_start, info, None, stream)
    }

    fn decode_stream_observed<O: Recorder>(
        &self,
        stream: &mut RxStream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
        obs: &O,
    ) -> Result<RxFrame> {
        self.decode_frame_session_observed(samples, frame_start, info, None, stream, obs)
    }
}

/// The interference model a decode phase should score with: the throwaway per-frame
/// model, or the stream slot's persistent one.
fn model_in_use<'a>(
    needs_model: bool,
    throwaway: &'a Option<InterferenceModel>,
    persistent: &'a Option<PersistentModel<'_>>,
) -> Option<&'a InterferenceModel> {
    if !needs_model {
        return None;
    }
    match persistent {
        None => throwaway.as_ref(),
        // A rolling stream's first frame scores with the not-yet-committed
        // throwaway model until the frame is trusted.
        Some(p) => p.model.as_ref().or(throwaway.as_ref()),
    }
}

/// The genie slice of one symbol, with a readable error when the interference-only
/// capture is shorter than the composite one.
fn genie_symbol(
    interference_only: Option<&[Complex]>,
    start: usize,
    sym_len: usize,
) -> Result<Option<&[Complex]>> {
    match interference_only {
        None => Ok(None),
        Some(genie) => {
            genie
                .get(start..start + sym_len)
                .map(Some)
                .ok_or(PhyError::InsufficientSamples {
                    needed: start + sym_len,
                    available: genie.len(),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::frame::{Mcs, Transmitter};
    use ofdmphy::rx::StandardReceiver;
    use rand::{Rng, SeedableRng};
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::mixer::{combine, InterfererSpec};

    fn setup() -> (Transmitter, CpRecycleReceiver, StandardReceiver) {
        let params = OfdmParams::ieee80211ag();
        (
            Transmitter::new(params.clone()),
            CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default()),
            StandardReceiver::new(params),
        )
    }

    fn random_payload(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn effective_segments_respects_config_and_cp() {
        let params = OfdmParams::ieee80211ag();
        let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
        assert_eq!(rx.effective_segments(), 16);
        let rx1 = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_segments(1));
        assert_eq!(rx1.effective_segments(), 1);
        let rx_many = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_segments(100));
        assert_eq!(rx_many.effective_segments(), 17);
        let rx_limited = CpRecycleReceiver::new(
            params.clone(),
            CpRecycleConfig {
                isi_free_samples: Some(6),
                num_segments: 16,
                ..Default::default()
            },
        );
        assert_eq!(rx_limited.effective_segments(), 7);
        // The standard-window stage reads only the last segment, so it extracts one
        // regardless of the configured P.
        let rx_standard = CpRecycleReceiver::new(
            params,
            CpRecycleConfig::with_decision(crate::config::DecisionStage::Standard),
        );
        assert_eq!(rx_standard.effective_segments(), 1);
    }

    #[test]
    fn clean_channel_roundtrip() {
        let (tx, rx, _) = setup();
        let payload = random_payload(120, 1);
        for mcs in Mcs::paper_set() {
            let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
            let decoded = rx.decode_frame(&frame.samples, 0, None).unwrap();
            assert!(decoded.crc_ok, "{}", mcs.label());
            assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
            assert_eq!(decoded.info.mcs, mcs);
        }
    }

    #[test]
    fn decodes_with_awgn() {
        let (tx, rx, _) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut chan = AwgnChannel::new();
        let payload = random_payload(100, 3);
        let mcs = Mcs::paper_set()[1];
        let frame = tx.build_frame(&payload, mcs, 0x45).unwrap();
        let mut noisy = frame.samples.clone();
        chan.add_noise_snr(&mut rng, &mut noisy, 28.0).unwrap();
        let decoded = rx.decode_frame(&noisy, 0, None).unwrap();
        assert!(decoded.crc_ok);
        assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
    }

    /// Uncoded subcarrier-decision error rate against the transmitted ground truth.
    fn symbol_error_rate(
        decided_or_equalized: &[Vec<Complex>],
        truth: &[Vec<Complex>],
        modulation: ofdmphy::modulation::Modulation,
    ) -> f64 {
        let mut errors = 0usize;
        let mut total = 0usize;
        for (rx_sym, tx_sym) in decided_or_equalized.iter().zip(truth) {
            for (rx_val, tx_val) in rx_sym.iter().zip(tx_sym) {
                let decided = modulation.nearest_point(*rx_val).0;
                if (decided - *tx_val).norm() > 1e-9 {
                    errors += 1;
                }
                total += 1;
            }
        }
        errors as f64 / total.max(1) as f64
    }

    #[test]
    fn lower_symbol_error_rate_than_standard_under_async_interference() {
        // The headline mechanism at subcarrier granularity: an interferer that is not
        // symbol-aligned (delay > CP, fractional-sample offset, slight frequency offset
        // as between real oscillators) corrupts the standard receiver's single FFT
        // window far more than CPRecycle's ML decision over all segments.
        let (tx, rx_cp, rx_std) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut awgn = AwgnChannel::new();
        let payload = random_payload(60, 5);
        let mcs = Mcs::paper_set()[0]; // QPSK 1/2
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };

        let mut cp_errors = 0.0;
        let mut std_errors = 0.0;
        let trials = 6;
        const SIR_DB: f64 = 5.0;
        for t in 0..trials {
            let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
            let intf_payload = random_payload(400, 100 + t);
            let intf_frame = tx
                .build_frame(&intf_payload, Mcs::paper_set()[2], 0x2F)
                .unwrap();
            let intf_chan = wirelesschan::multipath::MultipathChannel::realize(
                &wirelesschan::multipath::PowerDelayProfile::exponential(6, 2.0).unwrap(),
                wirelesschan::multipath::FadingKind::Rayleigh,
                &mut rng,
            );
            let intf_wave = intf_chan.apply(&intf_frame.samples);
            // Timing offsets spread over the interferer symbol period so both favourable
            // and unfavourable alignments are covered; small frequency offset models the
            // oscillator difference between distinct transmitters.
            let spec =
                InterfererSpec::new(intf_wave, 0.0017, 17.0 + (t as f64) * 13.0 + 0.37, SIR_DB);
            let combined = combine(&frame.samples, &[spec]).unwrap();
            let mut received = combined.composite;
            awgn.add_noise_snr(&mut rng, &mut received, 30.0).unwrap();

            let cp_out = rx_cp.decode_frame(&received, 0, Some(info)).unwrap();
            let std_out = rx_std.decode_frame(&received, 0, Some(info)).unwrap();
            cp_errors += symbol_error_rate(
                &cp_out.equalized_symbols,
                &frame.data_subcarrier_values,
                mcs.modulation,
            );
            std_errors += symbol_error_rate(
                &std_out.equalized_symbols,
                &frame.data_subcarrier_values,
                mcs.modulation,
            );
        }
        let cp_ser = cp_errors / trials as f64;
        let std_ser = std_errors / trials as f64;
        assert!(
            std_ser > 0.05,
            "scenario too easy: standard receiver SER {std_ser}"
        );
        // Co-channel interference is the paper's harder case (Fig. 11 shows smaller
        // gains than the adjacent-channel experiments); at subcarrier granularity we
        // require a clear, deterministic improvement. The large (tens of dB) gains show
        // up in the adjacent-channel scenarios exercised by the integration tests and
        // the figure benches.
        assert!(
            cp_ser < 0.9 * std_ser,
            "CPRecycle SER {cp_ser} should be below standard SER {std_ser}"
        );
    }

    #[test]
    fn clean_channel_roundtrip_on_non_ag_numerology() {
        // Regression test for the hard-coded `ltf_start = frame_start + 160`: with a
        // 128-point FFT the STF is 10 × 32 = 320 samples long, so a receiver that
        // assumes the 802.11a/g offset trains its channel estimate and interference
        // model on the wrong samples and cannot decode at all. The tone map keeps the
        // a/g ±26 occupancy (the training sequences span ±26) so the rest of the frame
        // pipeline is exercised unchanged.
        let mut roles = vec![ofdmphy::params::SubcarrierRole::Null; 128];
        for k in 1..=26usize {
            roles[k] = ofdmphy::params::SubcarrierRole::Data;
            roles[128 - k] = ofdmphy::params::SubcarrierRole::Data;
        }
        for k in [7usize, 21] {
            roles[k] = ofdmphy::params::SubcarrierRole::Pilot;
            roles[128 - k] = ofdmphy::params::SubcarrierRole::Pilot;
        }
        let params = OfdmParams::new(128, 32, 40e6, roles).unwrap();
        assert_eq!(ofdmphy::preamble::ltf_start_offset(&params), 320);
        let tx = Transmitter::new(params.clone());
        let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
        let payload = random_payload(100, 9);
        let mcs = Mcs::paper_set()[0];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let decoded = rx.decode_frame(&frame.samples, 0, None).unwrap();
        assert!(decoded.crc_ok);
        assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn single_segment_degrades_to_standard_behaviour() {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx1 = CpRecycleReceiver::new(params, CpRecycleConfig::with_segments(1));
        let payload = random_payload(80, 6);
        let mcs = Mcs::paper_set()[1];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let decoded = rx1.decode_frame(&frame.samples, 0, None).unwrap();
        assert!(decoded.crc_ok);
        assert_eq!(decoded.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn direct_and_sliding_extraction_decode_identically() {
        // The config switch selects between the sliding-DFT kernel and the reference
        // direct-FFT path; on an interfered capture both must reach the same
        // subcarrier decisions (the kernels agree to ≤ 1e-9, far inside any decision
        // margin the sphere decoder sees).
        use crate::segments::SegmentExtraction;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx_sliding = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
        let rx_direct = CpRecycleReceiver::new(
            params,
            CpRecycleConfig {
                extraction: SegmentExtraction::Direct,
                ..Default::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut awgn = AwgnChannel::new();
        let payload = random_payload(80, 9);
        let mcs = Mcs::paper_set()[1];
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let intf = tx
            .build_frame(&random_payload(200, 10), Mcs::paper_set()[2], 0x2F)
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.0017, 31.4, 0.0);
        let mut received = combine(&frame.samples, &[spec]).unwrap().composite;
        awgn.add_noise_snr(&mut rng, &mut received, 25.0).unwrap();

        let out_sliding = rx_sliding.decode_frame(&received, 0, Some(info)).unwrap();
        let out_direct = rx_direct.decode_frame(&received, 0, Some(info)).unwrap();
        assert_eq!(out_sliding.psdu, out_direct.psdu);
        assert_eq!(out_sliding.crc_ok, out_direct.crc_ok);
        for (a, b) in out_sliding
            .equalized_symbols
            .iter()
            .zip(&out_direct.equalized_symbols)
        {
            for (x, y) in a.iter().zip(b) {
                assert!((*x - *y).norm() < 1e-12, "decisions diverged: {x} vs {y}");
            }
        }
    }

    #[test]
    fn truncated_capture_is_an_error() {
        let (tx, rx, _) = setup();
        let payload = random_payload(60, 7);
        let frame = tx.build_frame(&payload, Mcs::paper_set()[0], 0x5D).unwrap();
        assert!(rx.decode_frame(&frame.samples[..300], 0, None).is_err());
        assert!(rx.decode_frame(&frame.samples[..500], 0, None).is_err());
    }

    #[test]
    fn every_decision_stage_roundtrips_a_clean_channel() {
        use crate::config::DecisionStage;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let payload = random_payload(90, 21);
        let mcs = Mcs::paper_set()[1];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let genie = vec![Complex::zero(); frame.samples.len()];
        for decision in [
            DecisionStage::default(),
            DecisionStage::Naive,
            DecisionStage::Oracle,
            DecisionStage::Standard,
        ] {
            let rx =
                CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_decision(decision));
            let mut scratch = SegmentScratch::new();
            // The Oracle needs the genie capture; the others accept it and ignore it.
            let decoded = rx
                .decode_frame_genie(&frame.samples, 0, None, Some(&genie), &mut scratch)
                .unwrap();
            assert!(decoded.crc_ok, "{}", decision.label());
            assert_eq!(
                decoded.payload.as_deref(),
                Some(&payload[..]),
                "{}",
                decision.label()
            );
        }
    }

    #[test]
    fn every_estimator_backend_roundtrips_a_clean_channel() {
        use crate::estimator::ModelBackend;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let payload = random_payload(90, 27);
        let mcs = Mcs::paper_set()[1];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        for backend in [
            ModelBackend::ExactKde,
            ModelBackend::GridKde,
            ModelBackend::Gaussian,
        ] {
            let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_model(backend));
            let decoded = rx.decode_frame(&frame.samples, 0, None).unwrap();
            assert!(decoded.crc_ok, "{}", backend.label());
            assert_eq!(
                decoded.payload.as_deref(),
                Some(&payload[..]),
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn grid_backend_matches_exact_decisions_under_interference() {
        // The grid backend approximates the exact KDE to a fraction of a log unit per
        // segment; summed over P = 16 segments that can flip decisions whose margin is
        // razor-thin, so bit-for-bit equality is not the contract — decision-error
        // parity is: on an interfered capture the two backends' uncoded symbol error
        // rates must agree to within a handful of subcarrier decisions.
        use crate::estimator::ModelBackend;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut awgn = AwgnChannel::new();
        let payload = random_payload(80, 13);
        let mcs = Mcs::paper_set()[1];
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let intf = tx
            .build_frame(&random_payload(200, 14), Mcs::paper_set()[2], 0x2F)
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.0017, 29.1, -2.0);
        let mut received = combine(&frame.samples, &[spec]).unwrap().composite;
        awgn.add_noise_snr(&mut rng, &mut received, 25.0).unwrap();

        let rx_exact = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
        let rx_grid =
            CpRecycleReceiver::new(params, CpRecycleConfig::with_model(ModelBackend::GridKde));
        let out_exact = rx_exact.decode_frame(&received, 0, Some(info)).unwrap();
        let out_grid = rx_grid.decode_frame(&received, 0, Some(info)).unwrap();
        let ser_exact = symbol_error_rate(
            &out_exact.equalized_symbols,
            &frame.data_subcarrier_values,
            mcs.modulation,
        );
        let ser_grid = symbol_error_rate(
            &out_grid.equalized_symbols,
            &frame.data_subcarrier_values,
            mcs.modulation,
        );
        assert!(
            (ser_exact - ser_grid).abs() < 0.01,
            "grid SER {ser_grid} diverged from exact SER {ser_exact}"
        );
    }

    #[test]
    fn oracle_stage_without_genie_capture_is_an_error() {
        use crate::config::DecisionStage;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx = CpRecycleReceiver::new(
            params,
            CpRecycleConfig::with_decision(DecisionStage::Oracle),
        );
        let frame = tx
            .build_frame(&random_payload(60, 22), Mcs::paper_set()[0], 0x5D)
            .unwrap();
        let err = rx.decode_frame(&frame.samples, 0, None).unwrap_err();
        assert!(
            err.to_string().contains("Oracle"),
            "unexpected error: {err}"
        );
        // A genie capture shorter than the composite is also rejected, not a panic.
        let mut scratch = SegmentScratch::new();
        let short = vec![Complex::zero(); 400];
        assert!(rx
            .decode_frame_genie(&frame.samples, 0, None, Some(&short), &mut scratch)
            .is_err());
        // …but stages that never read the genie waveform must not trip over it: the
        // same short capture is ignored by the sphere stage.
        let sphere_rx =
            CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let decoded = sphere_rx
            .decode_frame_genie(&frame.samples, 0, None, Some(&short), &mut scratch)
            .unwrap();
        assert!(decoded.crc_ok);
    }

    #[test]
    fn rolling_persistence_accumulates_preambles_idempotently() {
        // Two frames through one Rolling stream: the model keeps its samples across
        // frames (N_p grows by 2 per frame), decode retries of the same frame do not
        // double-absorb, and a PerFrame stream resets to N_p = 2 every frame.
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::default());
        let mcs = Mcs::paper_set()[0];
        let frame1 = tx.build_frame(&random_payload(60, 31), mcs, 0x5D).unwrap();
        let frame2 = tx.build_frame(&random_payload(60, 32), mcs, 0x2B).unwrap();

        let mut rolling = rx.new_stream(ModelPersistence::Rolling);
        rx.begin_frame(&mut rolling);
        let out1 = rx
            .decode_frame_session(&frame1.samples, 0, None, None, &mut rolling)
            .unwrap();
        assert!(out1.crc_ok);
        assert_eq!(rolling.model().unwrap().num_preambles(), 2);
        // A retry of the same frame (the session's growing-buffer pattern) is
        // idempotent: the model does not absorb the preamble twice.
        let retry = rx
            .decode_frame_session(&frame1.samples, 0, None, None, &mut rolling)
            .unwrap();
        assert_eq!(retry.psdu, out1.psdu);
        assert_eq!(rolling.model().unwrap().num_preambles(), 2);
        // The next frame updates incrementally instead of retraining.
        rx.begin_frame(&mut rolling);
        let out2 = rx
            .decode_frame_session(&frame2.samples, 0, None, None, &mut rolling)
            .unwrap();
        assert!(out2.crc_ok);
        assert_eq!(out2.payload.as_deref(), Some(&random_payload(60, 32)[..]));
        assert_eq!(rolling.model().unwrap().num_preambles(), 4);
        assert_eq!(rolling.persistence(), ModelPersistence::Rolling);
        // reset_model drops the accumulated density; the next frame retrains.
        rolling.reset_model();
        assert!(rolling.model().is_none());
        rx.begin_frame(&mut rolling);
        rx.decode_frame_session(&frame1.samples, 0, None, None, &mut rolling)
            .unwrap();
        assert_eq!(rolling.model().unwrap().num_preambles(), 2);

        // PerFrame: the model is retrained for every frame.
        let mut per_frame = rx.new_stream(ModelPersistence::PerFrame);
        for frame in [&frame1, &frame2] {
            rx.begin_frame(&mut per_frame);
            let out = rx
                .decode_frame_session(&frame.samples, 0, None, None, &mut per_frame)
                .unwrap();
            assert!(out.crc_ok);
            assert_eq!(per_frame.model().unwrap().num_preambles(), 2);
        }
    }

    #[test]
    fn perframe_session_decode_is_bit_identical_to_batch() {
        // The streamed PerFrame path and the batch path must agree bit-for-bit on an
        // interfered capture — the receiver half of the session≡batch property (the
        // full chunked-session property lives in tests/session_equivalence.rs).
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut awgn = AwgnChannel::new();
        let payload = random_payload(80, 45);
        let mcs = Mcs::paper_set()[1];
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let intf = tx
            .build_frame(&random_payload(200, 46), Mcs::paper_set()[2], 0x2F)
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.0017, 19.3, 2.0);
        let mut received = combine(&frame.samples, &[spec]).unwrap().composite;
        awgn.add_noise_snr(&mut rng, &mut received, 25.0).unwrap();

        let batch = rx.decode_frame(&received, 0, None).unwrap();
        let mut stream = rx.new_stream(ModelPersistence::PerFrame);
        rx.begin_frame(&mut stream);
        let streamed = rx
            .decode_frame_session(&received, 0, None, None, &mut stream)
            .unwrap();
        assert_eq!(streamed.psdu, batch.psdu);
        assert_eq!(streamed.crc_ok, batch.crc_ok);
        assert_eq!(streamed.info, batch.info);
        for (a, b) in streamed
            .equalized_symbols
            .iter()
            .zip(&batch.equalized_symbols)
        {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn oracle_stage_beats_the_standard_stage_under_async_interference() {
        // The Fig. 5 ordering at subcarrier granularity, now as two decision stages of
        // the same receiver: with the genie picking the least-interfered segment per
        // bin, the Oracle stage's decisions are strictly better than the
        // standard-window stage's on an asynchronously interfered capture.
        use crate::config::DecisionStage;
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut awgn = AwgnChannel::new();
        let payload = random_payload(60, 24);
        let mcs = Mcs::paper_set()[0];
        let info = FrameInfo {
            mcs,
            psdu_len: payload.len() + 4,
        };
        let frame = tx.build_frame(&payload, mcs, 0x5D).unwrap();
        let intf = tx
            .build_frame(&random_payload(400, 25), Mcs::paper_set()[2], 0x2F)
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.3, 23.4, -6.0);
        let combined = combine(&frame.samples, &[spec]).unwrap();
        let mut received = combined.composite.clone();
        awgn.add_noise_snr(&mut rng, &mut received, 30.0).unwrap();
        let genie = &combined.interference[0];

        let mut sers = Vec::new();
        for decision in [DecisionStage::Oracle, DecisionStage::Standard] {
            let rx =
                CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_decision(decision));
            let mut scratch = SegmentScratch::new();
            let out = rx
                .decode_frame_genie(&received, 0, Some(info), Some(genie), &mut scratch)
                .unwrap();
            sers.push(symbol_error_rate(
                &out.equalized_symbols,
                &frame.data_subcarrier_values,
                mcs.modulation,
            ));
        }
        assert!(
            sers[0] < sers[1],
            "Oracle SER {} should beat standard SER {}",
            sers[0],
            sers[1]
        );
    }
}
