//! FFT-segment extraction (paper §3.1).
//!
//! For one received OFDM symbol of `C + F` samples there are `P` ISI-free FFT windows
//! ("segments"): the window that starts right after the CP (the standard receiver's
//! choice) and the `P − 1` windows that start progressively earlier inside the CP.
//! After the deterministic phase-ramp correction of Eq. 2 every segment carries the same
//! desired-signal component (Proposition 3.1), but a different interference component —
//! the redundancy CPRecycle exploits.
//!
//! # The sliding-DFT kernel
//!
//! Adjacent segment windows differ by exactly one sample, so computing `P` direct FFTs
//! wastes a factor of `log₂ F`: this module seeds the earliest window with one FFT and
//! derives each later segment by an `O(F)` sliding-DFT update
//! ([`rfdsp::sliding::SlidingDft`]). The slide twiddle `e^{+i2πk/F}` cancels exactly
//! against the shrinking Eq. 2 phase ramp, so in the *corrected* domain the recurrence
//! collapses to a fused multiply-add per bin:
//!
//! ```text
//! X̃_{w+1}[f] = X̃_w[f] + (x[w+F] − x[w]) · e^{+i2πf(C−w)/F}       (phase ramp folded in)
//! Ẋ_{w+1}[f] = Ẋ_w[f] + (x[w+F] − x[w]) · e^{+i2πf(C−w)/F} / Ĥ[f] (equalization folded in)
//! ```
//!
//! where the per-bin factor `e^{+i2πf(C−w)/F}/Ĥ[f]` itself advances by one precomputed
//! twiddle per slide. The direct per-segment FFT path is kept behind
//! [`SegmentExtraction::Direct`] as the reference implementation; a property test
//! asserts the two agree to ≤ 1e-9 for every valid `P`.
//!
//! # Storage
//!
//! [`SymbolSegments`] stores the `P × F` observations in one flat, **bin-major** buffer
//! so [`SymbolSegments::bin_observations`] — the access pattern of every decoder — is
//! an allocation-free contiguous slice.

use crate::config::KernelPrecision;
use crate::Result;
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::PhyError;
use rfdsp::lanes::LANES;
use rfdsp::sliding::SlidingDft;
use rfdsp::Complex;

/// Which kernel extracts the per-symbol FFT segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentExtraction {
    /// One seed FFT for the earliest window, then an `O(F)` one-sample slide per
    /// further segment with the Eq. 2 phase ramp and the equalization folded into the
    /// update (the default; ~7× faster than [`Direct`](Self::Direct) at `P = 16`,
    /// `F = 64` — see the README performance table).
    #[default]
    Sliding,
    /// The reference implementation: one direct FFT + phase correction + equalization
    /// per segment. Kept selectable for validation and for A/B timing.
    Direct,
}

/// The per-segment, per-bin observations extracted from one OFDM symbol.
///
/// Storage is a single flat, bin-major buffer: the `P` observations of one FFT bin —
/// the redundant copies every decoder consumes together — are contiguous, so
/// [`bin_observations`](Self::bin_observations) is a zero-copy slice view.
#[derive(Debug, Clone)]
pub struct SymbolSegments {
    num_segments: usize,
    fft_size: usize,
    /// `values[bin * num_segments + segment]`: equalised frequency-domain value of
    /// every FFT bin for each of the `P` segments. Segment `P − 1` is the standard
    /// receiver's window; segment `0` starts the earliest inside the cyclic prefix.
    values: Vec<Complex>,
}

impl SymbolSegments {
    /// Builds segments from segment-major rows (`rows[segment][bin]`), transposing
    /// into the flat bin-major layout. Intended for tests, benches and synthetic
    /// observation sets; the extraction kernels write the flat buffer directly.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<Complex>>) -> Self {
        let num_segments = rows.len();
        assert!(num_segments > 0, "at least one segment row is required");
        let fft_size = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == fft_size),
            "all segment rows must have the same length"
        );
        let mut values = vec![Complex::zero(); num_segments * fft_size];
        for (j, row) in rows.iter().enumerate() {
            for (bin, v) in row.iter().enumerate() {
                values[bin * num_segments + j] = *v;
            }
        }
        SymbolSegments {
            num_segments,
            fft_size,
            values,
        }
    }

    /// Number of segments `P`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Number of FFT bins `F`.
    #[inline]
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// The observations of one FFT bin across all segments — the `P` redundant copies
    /// the decoders work with — as an allocation-free contiguous slice. Segment order
    /// matches [`value`](Self::value): index `P − 1` is the standard window.
    #[inline]
    pub fn bin_observations(&self, bin: usize) -> &[Complex] {
        &self.values[bin * self.num_segments..(bin + 1) * self.num_segments]
    }

    /// The observation of one `(segment, bin)` pair.
    #[inline]
    pub fn value(&self, segment: usize, bin: usize) -> Complex {
        self.values[bin * self.num_segments + segment]
    }

    /// The standard receiver's view (the last segment), gathered across bins.
    pub fn standard(&self) -> Vec<Complex> {
        (0..self.fft_size)
            .map(|bin| self.value(self.num_segments - 1, bin))
            .collect()
    }
}

/// Per-segment, per-bin interference power in the same flat **bin-major** layout as
/// [`SymbolSegments`]: the `P` powers of one FFT bin are contiguous, so
/// [`bin_powers`](Self::bin_powers) — the Oracle's access pattern — is an
/// allocation-free slice. Produced by [`interference_power_per_segment`] on an
/// interference-only waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPowers {
    num_segments: usize,
    fft_size: usize,
    /// `values[bin * num_segments + segment]`; segment `P − 1` is the standard window.
    values: Vec<f64>,
}

impl SegmentPowers {
    /// Builds powers from segment-major rows (`rows[segment][bin]`), transposing into
    /// the flat bin-major layout. Intended for tests and synthetic inputs.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let num_segments = rows.len();
        assert!(num_segments > 0, "at least one segment row is required");
        let fft_size = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == fft_size),
            "all segment rows must have the same length"
        );
        let mut values = vec![0.0; num_segments * fft_size];
        for (j, row) in rows.iter().enumerate() {
            for (bin, v) in row.iter().enumerate() {
                values[bin * num_segments + j] = *v;
            }
        }
        SegmentPowers {
            num_segments,
            fft_size,
            values,
        }
    }

    /// Number of segments `P`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Number of FFT bins `F`.
    #[inline]
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// The interference powers of one FFT bin across all segments, as an
    /// allocation-free contiguous slice (segment `P − 1` last).
    #[inline]
    pub fn bin_powers(&self, bin: usize) -> &[f64] {
        &self.values[bin * self.num_segments..(bin + 1) * self.num_segments]
    }

    /// The power of one `(segment, bin)` pair.
    #[inline]
    pub fn value(&self, segment: usize, bin: usize) -> f64 {
        self.values[bin * self.num_segments + segment]
    }
}

/// Reusable scratch state for segment extraction: the [`SlidingDft`] plan and the
/// per-symbol working buffers.
///
/// Construct one per worker (or per frame) and thread it through
/// [`extract_segments_with`] / [`CpRecycleReceiver::decode_frame_scratch`] so the
/// twiddle tables are built once and the working buffers never reallocate; the
/// campaign engine's worker-local state is the natural home
/// (`cprecycle-scenarios` keeps one inside each prepared receiver).
///
/// [`CpRecycleReceiver::decode_frame_scratch`]: crate::receiver::CpRecycleReceiver::decode_frame_scratch
#[derive(Debug, Clone, Default)]
pub struct SegmentScratch {
    /// Lazily (re)built when the FFT size changes.
    sliding: Option<SlidingDft>,
    /// Running corrected-and-equalised spectrum of the current window.
    spectrum: Vec<Complex>,
    /// Per-bin fused factor `e^{+i2πk·shift/F} / Ĥ[k]` of the current window.
    ramp: Vec<Complex>,
    /// Split-plane f32 mirrors of `spectrum` / `ramp`, sized only when a
    /// [`KernelPrecision::F32`] extraction runs: the reduced-precision slide kernel
    /// works on separate re/im planes so LLVM vectorizes it at twice the f64 lane
    /// width.
    spectrum_re32: Vec<f32>,
    /// Imaginary plane of the f32 spectrum mirror.
    spectrum_im32: Vec<f32>,
    /// Real plane of the f32 ramp mirror.
    ramp_re32: Vec<f32>,
    /// Imaginary plane of the f32 ramp mirror.
    ramp_im32: Vec<f32>,
    /// Decision-stage buffers (candidate indices, per-candidate log-likelihoods),
    /// threaded by the receiver into [`SubcarrierDecoder::decide_symbol`] so the whole
    /// extract → decide path is allocation-free after warm-up.
    ///
    /// [`SubcarrierDecoder::decide_symbol`]: crate::decision::SubcarrierDecoder::decide_symbol
    pub decision: crate::decision::DecoderScratch,
}

impl SegmentScratch {
    /// An empty scratch; buffers and the sliding plan are sized on first use.
    pub fn new() -> Self {
        SegmentScratch::default()
    }

    /// Ensures the plan and buffers match `fft_size`, then hands out split borrows.
    fn ensure(&mut self, fft_size: usize) -> (&SlidingDft, &mut [Complex], &mut [Complex]) {
        if self.sliding.as_ref().map(SlidingDft::len) != Some(fft_size) {
            self.sliding = Some(SlidingDft::new(fft_size));
        }
        self.spectrum.resize(fft_size, Complex::zero());
        self.ramp.resize(fft_size, Complex::zero());
        (
            self.sliding.as_ref().expect("plan just ensured"),
            &mut self.spectrum,
            &mut self.ramp,
        )
    }
}

fn validate_num_segments(engine: &OfdmEngine, num_segments: usize) -> Result<()> {
    let c = engine.params().cp_len;
    if num_segments == 0 || num_segments > c + 1 {
        return Err(PhyError::invalid(
            "num_segments",
            format!("must be between 1 and CP length + 1 ({})", c + 1),
        ));
    }
    Ok(())
}

fn validate_symbol_len(engine: &OfdmEngine, symbol_samples: &[Complex]) -> Result<()> {
    let needed = engine.params().symbol_len();
    if symbol_samples.len() < needed {
        return Err(PhyError::InsufficientSamples {
            needed,
            available: symbol_samples.len(),
        });
    }
    Ok(())
}

/// Extracts `num_segments` equalised FFT segments from one received OFDM symbol with
/// the default [`SegmentExtraction::Sliding`] kernel and a throwaway scratch.
///
/// * `symbol_samples` — the `C + F` samples of the symbol (CP included).
/// * `estimate` — the per-packet channel estimate (shared across segments: all ISI-free
///   windows see the same channel, paper Eq. 1).
/// * `num_segments` — `P`; must be between 1 and `C + 1`.
///
/// Segment `j` (0-based) uses the FFT window starting at sample `C − (P − 1) + j`, so
/// the last segment is the standard window starting at `C`.
///
/// Hot paths should keep a [`SegmentScratch`] and call [`extract_segments_with`], which
/// reuses the sliding plan and working buffers across symbols.
pub fn extract_segments(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
) -> Result<SymbolSegments> {
    let mut scratch = SegmentScratch::new();
    extract_segments_with(
        engine,
        symbol_samples,
        estimate,
        num_segments,
        SegmentExtraction::Sliding,
        &mut scratch,
    )
}

/// Extracts `num_segments` equalised FFT segments with an explicit kernel and reusable
/// scratch — the hot-path entry point (see [`extract_segments`] for the parameter
/// contract).
pub fn extract_segments_with(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
    method: SegmentExtraction,
    scratch: &mut SegmentScratch,
) -> Result<SymbolSegments> {
    extract_segments_precise(
        engine,
        symbol_samples,
        estimate,
        num_segments,
        method,
        KernelPrecision::F64,
        scratch,
    )
}

/// [`extract_segments_with`] with an explicit kernel precision.
///
/// [`KernelPrecision::F64`] is the reference path (what every other entry point
/// runs). [`KernelPrecision::F32`] runs the `P − 1` fused slide updates on split
/// f32 re/im planes — twice the SIMD lane width — and widens each observation back
/// to f64 on store; the seed FFT and the Eq. 2 ramp initialisation stay in f64, so
/// the rounding error is bounded by the slide recurrence alone (≤ 1e-3 per
/// observation in practice, pinned by a test below). The
/// [`SegmentExtraction::Direct`] reference kernel ignores `precision`.
pub fn extract_segments_precise(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
    method: SegmentExtraction,
    precision: KernelPrecision,
    scratch: &mut SegmentScratch,
) -> Result<SymbolSegments> {
    validate_num_segments(engine, num_segments)?;
    match method {
        SegmentExtraction::Sliding => extract_sliding(
            engine,
            symbol_samples,
            estimate,
            num_segments,
            precision,
            scratch,
        ),
        SegmentExtraction::Direct => extract_direct(engine, symbol_samples, estimate, num_segments),
    }
}

/// The sliding kernel: one seed FFT, then `P − 1` fused `O(F)` updates.
fn extract_sliding(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
    precision: KernelPrecision,
    scratch: &mut SegmentScratch,
) -> Result<SymbolSegments> {
    validate_symbol_len(engine, symbol_samples)?;
    let params = engine.params();
    let f = params.fft_size;
    let c = params.cp_len;
    if estimate.h.len() != f {
        return Err(PhyError::LengthMismatch {
            expected: f,
            actual: estimate.h.len(),
        });
    }
    let p = num_segments;
    let s0 = c - (p - 1);
    let _ = scratch.ensure(f);
    if precision == KernelPrecision::F32 {
        scratch.spectrum_re32.resize(f, 0.0);
        scratch.spectrum_im32.resize(f, 0.0);
        scratch.ramp_re32.resize(f, 0.0);
        scratch.ramp_im32.resize(f, 0.0);
    }
    // Disjoint field borrows: the slide kernels need the plan, the f64 buffers and
    // (for F32) the split planes simultaneously.
    let SegmentScratch {
        sliding,
        spectrum,
        ramp,
        spectrum_re32,
        spectrum_im32,
        ramp_re32,
        ramp_im32,
        ..
    } = scratch;
    let sliding = sliding.as_ref().expect("plan just ensured");

    // Seed: FFT of the earliest window, then fold phase ramp + equalizer into it.
    spectrum.copy_from_slice(&symbol_samples[s0..s0 + f]);
    sliding
        .plan()
        .fft_in_place(spectrum)
        .expect("scratch buffer sized to plan");
    let initial_shift = p - 1;
    if initial_shift == 0 {
        // P = 1: the standard window has no phase ramp, so the fused factor is just
        // the equalizer. Branching here skips F `cis` calls — the difference between
        // parity with and a measurable regression against the direct path at P = 1.
        for (k, r) in ramp.iter_mut().enumerate() {
            *r = estimate.inverse_gain(k);
        }
    } else {
        for (k, r) in ramp.iter_mut().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * (k * initial_shift) as f64 / f as f64;
            *r = Complex::cis(theta) * estimate.inverse_gain(k);
        }
    }
    let mut values = vec![Complex::zero(); p * f];
    for k in 0..f {
        spectrum[k] *= ramp[k];
        values[k * p] = spectrum[k];
    }

    // Slides: advancing the window start by one sample shrinks the Eq. 2 cyclic shift
    // by one, so the slide twiddle cancels against the ramp step — the corrected,
    // equalised spectrum advances by a single multiply-add per bin, and the fused
    // per-bin factor steps down by one precomputed twiddle.
    match precision {
        KernelPrecision::F64 => {
            let retreat = sliding.retreat_twiddles();
            fused_slides_f64(
                symbol_samples,
                s0,
                f,
                p,
                spectrum,
                ramp,
                retreat,
                &mut values,
            );
        }
        KernelPrecision::F32 => {
            for k in 0..f {
                spectrum_re32[k] = spectrum[k].re as f32;
                spectrum_im32[k] = spectrum[k].im as f32;
                ramp_re32[k] = ramp[k].re as f32;
                ramp_im32[k] = ramp[k].im as f32;
            }
            let (retreat_re, retreat_im) = sliding.retreat_twiddles_f32();
            fused_slides_f32(
                symbol_samples,
                s0,
                f,
                p,
                spectrum_re32,
                spectrum_im32,
                ramp_re32,
                ramp_im32,
                retreat_re,
                retreat_im,
                &mut values,
            );
        }
    }
    Ok(SymbolSegments {
        num_segments: p,
        fft_size: f,
        values,
    })
}

/// The `P − 1` fused slide updates in f64, restructured into `LANES`-wide chunks so
/// LLVM emits packed arithmetic. The chunked body and the scalar remainder perform
/// the *same* elementwise operations in the same order as the plain recurrence
/// (`spectrum[k] += delta * ramp[k]; ramp[k] *= retreat[k]`, expanded into the
/// complex-multiply formula rustc generates for [`Complex`]), so the restructure is
/// bit-for-bit — pinned by `lane_restructure_matches_the_scalar_recurrence` below.
#[allow(clippy::too_many_arguments)]
fn fused_slides_f64(
    symbol_samples: &[Complex],
    s0: usize,
    f: usize,
    p: usize,
    spectrum: &mut [Complex],
    ramp: &mut [Complex],
    retreat: &[Complex],
    values: &mut [Complex],
) {
    let main = f - f % LANES;
    for j in 1..p {
        let w = s0 + j - 1;
        let delta = symbol_samples[w + f] - symbol_samples[w];
        let (dr, di) = (delta.re, delta.im);
        for k0 in (0..main).step_by(LANES) {
            let mut sr = [0.0f64; LANES];
            let mut si = [0.0f64; LANES];
            let mut nr = [0.0f64; LANES];
            let mut ni = [0.0f64; LANES];
            for l in 0..LANES {
                let r = ramp[k0 + l];
                let t = retreat[k0 + l];
                sr[l] = spectrum[k0 + l].re + (dr * r.re - di * r.im);
                si[l] = spectrum[k0 + l].im + (dr * r.im + di * r.re);
                nr[l] = r.re * t.re - r.im * t.im;
                ni[l] = r.re * t.im + r.im * t.re;
            }
            for l in 0..LANES {
                let s = Complex::new(sr[l], si[l]);
                spectrum[k0 + l] = s;
                values[(k0 + l) * p + j] = s;
                ramp[k0 + l] = Complex::new(nr[l], ni[l]);
            }
        }
        for k in main..f {
            spectrum[k] += delta * ramp[k];
            values[k * p + j] = spectrum[k];
            ramp[k] *= retreat[k];
        }
    }
}

/// The reduced-precision slide updates: the same recurrence as [`fused_slides_f64`]
/// on split f32 re/im planes (twice the SIMD lane width), widening each observation
/// back to f64 on store. Error relative to the f64 path is bounded by f32 rounding
/// across at most `P − 1 ≤ C` accumulation steps — well inside the 1e-3 budget the
/// [`KernelPrecision::F32`] contract states.
#[allow(clippy::too_many_arguments)]
fn fused_slides_f32(
    symbol_samples: &[Complex],
    s0: usize,
    f: usize,
    p: usize,
    spectrum_re: &mut [f32],
    spectrum_im: &mut [f32],
    ramp_re: &mut [f32],
    ramp_im: &mut [f32],
    retreat_re: &[f32],
    retreat_im: &[f32],
    values: &mut [Complex],
) {
    let main = f - f % LANES;
    for j in 1..p {
        let w = s0 + j - 1;
        let delta = symbol_samples[w + f] - symbol_samples[w];
        let dr = delta.re as f32;
        let di = delta.im as f32;
        for k0 in (0..main).step_by(LANES) {
            let mut sr = [0.0f32; LANES];
            let mut si = [0.0f32; LANES];
            let mut nr = [0.0f32; LANES];
            let mut ni = [0.0f32; LANES];
            for l in 0..LANES {
                let (rr, ri) = (ramp_re[k0 + l], ramp_im[k0 + l]);
                let (tr, ti) = (retreat_re[k0 + l], retreat_im[k0 + l]);
                sr[l] = spectrum_re[k0 + l] + (dr * rr - di * ri);
                si[l] = spectrum_im[k0 + l] + (dr * ri + di * rr);
                nr[l] = rr * tr - ri * ti;
                ni[l] = rr * ti + ri * tr;
            }
            for l in 0..LANES {
                spectrum_re[k0 + l] = sr[l];
                spectrum_im[k0 + l] = si[l];
                ramp_re[k0 + l] = nr[l];
                ramp_im[k0 + l] = ni[l];
                values[(k0 + l) * p + j] = Complex::new(sr[l] as f64, si[l] as f64);
            }
        }
        for k in main..f {
            let (rr, ri) = (ramp_re[k], ramp_im[k]);
            let (tr, ti) = (retreat_re[k], retreat_im[k]);
            let sr = spectrum_re[k] + (dr * rr - di * ri);
            let si = spectrum_im[k] + (dr * ri + di * rr);
            spectrum_re[k] = sr;
            spectrum_im[k] = si;
            ramp_re[k] = rr * tr - ri * ti;
            ramp_im[k] = rr * ti + ri * tr;
            values[k * p + j] = Complex::new(sr as f64, si as f64);
        }
    }
}

/// The reference kernel: one direct FFT + phase correction + equalization per segment.
fn extract_direct(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
) -> Result<SymbolSegments> {
    let params = engine.params();
    let f = params.fft_size;
    let c = params.cp_len;
    let p = num_segments;
    let mut values = vec![Complex::zero(); p * f];
    for j in 0..p {
        let window_start = c - (p - 1) + j;
        let bins = engine.demodulate_window(symbol_samples, window_start)?;
        let equalized = estimate.equalize(&bins)?;
        for (bin, v) in equalized.into_iter().enumerate() {
            values[bin * p + j] = v;
        }
    }
    Ok(SymbolSegments {
        num_segments: p,
        fft_size: f,
        values,
    })
}

/// Measures the interference power per segment and per bin by demodulating an
/// *interference-only* waveform with the same segment windows (no equalisation — raw
/// received interference power). Used by the Oracle receiver and by the Fig. 4a/4b
/// diagnostics, where the paper obtains the same quantity "by muting the sender".
/// Returns the powers in the flat bin-major [`SegmentPowers`] layout.
pub fn interference_power_per_segment(
    engine: &OfdmEngine,
    interference_symbol: &[Complex],
    num_segments: usize,
) -> Result<SegmentPowers> {
    let mut scratch = SegmentScratch::new();
    interference_power_per_segment_with(
        engine,
        interference_symbol,
        num_segments,
        SegmentExtraction::Sliding,
        &mut scratch,
    )
}

/// [`interference_power_per_segment`] with an explicit kernel and reusable scratch —
/// the hot-path entry point used by the Oracle arm of the link campaigns.
pub fn interference_power_per_segment_with(
    engine: &OfdmEngine,
    interference_symbol: &[Complex],
    num_segments: usize,
    method: SegmentExtraction,
    scratch: &mut SegmentScratch,
) -> Result<SegmentPowers> {
    validate_num_segments(engine, num_segments)?;
    let params = engine.params();
    let f = params.fft_size;
    let c = params.cp_len;
    let p = num_segments;
    let mut values = vec![0.0f64; p * f];
    match method {
        SegmentExtraction::Sliding => {
            validate_symbol_len(engine, interference_symbol)?;
            let s0 = c - (p - 1);
            let (sliding, spectrum, _) = scratch.ensure(f);
            // Phase corrections are unit-magnitude, so powers need only the raw
            // sliding spectrum of each window.
            spectrum.copy_from_slice(&interference_symbol[s0..s0 + f]);
            sliding
                .plan()
                .fft_in_place(spectrum)
                .expect("scratch buffer sized to plan");
            for (bin, b) in spectrum.iter().enumerate() {
                values[bin * p] = b.norm_sqr();
            }
            for j in 1..p {
                let w = s0 + j - 1;
                sliding
                    .slide(spectrum, interference_symbol[w], interference_symbol[w + f])
                    .expect("scratch buffer sized to plan");
                for (bin, b) in spectrum.iter().enumerate() {
                    values[bin * p + j] = b.norm_sqr();
                }
            }
        }
        SegmentExtraction::Direct => {
            for j in 0..p {
                let window_start = c - (p - 1) + j;
                let bins = engine.demodulate_window(interference_symbol, window_start)?;
                for (bin, b) in bins.iter().enumerate() {
                    values[bin * p + j] = b.norm_sqr();
                }
            }
        }
    }
    Ok(SegmentPowers {
        num_segments: p,
        fft_size: f,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::frame::pilot_values;
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use rand::{Rng, SeedableRng};
    use wirelesschan::mixer::{combine, InterfererSpec};
    use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

    fn engine() -> OfdmEngine {
        OfdmEngine::new(OfdmParams::ieee80211ag())
    }

    fn random_symbol(engine: &OfdmEngine, seed: u64) -> (Vec<Complex>, Vec<Complex>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Modulation::Qam16;
        let data: Vec<Complex> = (0..48)
            .map(|_| {
                let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2)).collect();
                m.map(&bits).unwrap()
            })
            .collect();
        let time = engine.modulate(&data, &pilot_values(1.0)).unwrap();
        (time, data)
    }

    #[test]
    fn clean_channel_all_segments_identical() {
        let e = engine();
        let (time, data) = random_symbol(&e, 1);
        let est = ChannelEstimate::identity(64);
        let segs = extract_segments(&e, &time, &est, 17).unwrap();
        assert_eq!(segs.num_segments(), 17);
        assert_eq!(segs.fft_size(), 64);
        let reference = segs.standard();
        for j in 0..segs.num_segments() {
            for (k, r) in reference.iter().enumerate() {
                assert!((segs.value(j, k) - *r).norm() < 1e-9, "bin {k}");
            }
        }
        // And they match the transmitted data on the data bins.
        let data_bins = e.params().data_bins();
        for (i, bin) in data_bins.iter().enumerate() {
            assert!((reference[*bin] - data[i]).norm() < 1e-9);
        }
    }

    #[test]
    fn sliding_and_direct_kernels_agree() {
        let e = engine();
        let (time, _) = random_symbol(&e, 11);
        // A non-trivial channel so the equalization path is exercised too.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let pdp = PowerDelayProfile::exponential(3, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        let est = ChannelEstimate {
            h: chan.frequency_response(64),
        };
        let mut scratch = SegmentScratch::new();
        for p in [1usize, 2, 5, 16, 17] {
            let sliding =
                extract_segments_with(&e, &time, &est, p, SegmentExtraction::Sliding, &mut scratch)
                    .unwrap();
            let direct =
                extract_segments_with(&e, &time, &est, p, SegmentExtraction::Direct, &mut scratch)
                    .unwrap();
            for bin in 0..64 {
                let a = sliding.bin_observations(bin);
                let b = direct.bin_observations(bin);
                for j in 0..p {
                    assert!(
                        (a[j] - b[j]).norm() < 1e-9,
                        "P {p}, segment {j}, bin {bin}: {} vs {}",
                        a[j],
                        b[j]
                    );
                }
            }
        }
    }

    #[test]
    fn lane_restructure_matches_the_scalar_recurrence() {
        // The chunked f64 slide kernel must be bit-for-bit identical to the plain
        // scalar recurrence it replaced, for lengths that exercise both the chunked
        // body and the remainder (f = 13 leaves a 1-element tail at LANES = 4).
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut c = || Complex::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5);
        for f in [4usize, 7, 13, 64] {
            let p = 5usize;
            let s0 = 4usize;
            let samples: Vec<Complex> = (0..s0 + f + p).map(|_| c()).collect();
            let retreat: Vec<Complex> = (0..f).map(|_| c()).collect();
            let spectrum0: Vec<Complex> = (0..f).map(|_| c()).collect();
            let ramp0: Vec<Complex> = (0..f).map(|_| c()).collect();

            let mut spec_ref = spectrum0.clone();
            let mut ramp_ref = ramp0.clone();
            let mut values_ref = vec![Complex::zero(); p * f];
            for j in 1..p {
                let w = s0 + j - 1;
                let delta = samples[w + f] - samples[w];
                for k in 0..f {
                    spec_ref[k] += delta * ramp_ref[k];
                    values_ref[k * p + j] = spec_ref[k];
                    ramp_ref[k] *= retreat[k];
                }
            }

            let mut spec = spectrum0.clone();
            let mut ramp = ramp0.clone();
            let mut values = vec![Complex::zero(); p * f];
            fused_slides_f64(
                &samples,
                s0,
                f,
                p,
                &mut spec,
                &mut ramp,
                &retreat,
                &mut values,
            );

            for k in 0..f {
                assert_eq!(
                    spec[k].re.to_bits(),
                    spec_ref[k].re.to_bits(),
                    "f {f} bin {k}"
                );
                assert_eq!(
                    spec[k].im.to_bits(),
                    spec_ref[k].im.to_bits(),
                    "f {f} bin {k}"
                );
                assert_eq!(
                    ramp[k].re.to_bits(),
                    ramp_ref[k].re.to_bits(),
                    "f {f} bin {k}"
                );
                assert_eq!(
                    ramp[k].im.to_bits(),
                    ramp_ref[k].im.to_bits(),
                    "f {f} bin {k}"
                );
                for j in 0..p {
                    let (a, b) = (values[k * p + j], values_ref[k * p + j]);
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "f {f} bin {k} seg {j}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "f {f} bin {k} seg {j}");
                }
            }
        }
    }

    #[test]
    fn f32_sliding_extraction_tracks_f64_within_budget() {
        let e = engine();
        let (time, _) = random_symbol(&e, 31);
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let pdp = PowerDelayProfile::exponential(3, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        let est = ChannelEstimate {
            h: chan.frequency_response(64),
        };
        let mut scratch = SegmentScratch::new();
        for p in [1usize, 2, 5, 16, 17] {
            let full = extract_segments_precise(
                &e,
                &time,
                &est,
                p,
                SegmentExtraction::Sliding,
                KernelPrecision::F64,
                &mut scratch,
            )
            .unwrap();
            let reduced = extract_segments_precise(
                &e,
                &time,
                &est,
                p,
                SegmentExtraction::Sliding,
                KernelPrecision::F32,
                &mut scratch,
            )
            .unwrap();
            for bin in 0..64 {
                let a = full.bin_observations(bin);
                let b = reduced.bin_observations(bin);
                for j in 0..p {
                    let scale = 1.0 + a[j].norm();
                    assert!(
                        (a[j] - b[j]).norm() < 1e-3 * scale,
                        "P {p}, segment {j}, bin {bin}: {} vs {}",
                        a[j],
                        b[j]
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_adapts_to_fft_size_changes() {
        // One scratch reused across numerologies must resize its plan and buffers.
        let e64 = engine();
        let mut roles = vec![ofdmphy::params::SubcarrierRole::Null; 128];
        for k in 1..=26usize {
            roles[k] = ofdmphy::params::SubcarrierRole::Data;
            roles[128 - k] = ofdmphy::params::SubcarrierRole::Data;
        }
        let params128 = OfdmParams::new(128, 32, 40e6, roles).unwrap();
        let e128 = OfdmEngine::new(params128);
        let (t64, _) = random_symbol(&e64, 21);
        let t128: Vec<Complex> = (0..e128.params().symbol_len())
            .map(|t| Complex::cis(0.11 * t as f64))
            .collect();
        let mut scratch = SegmentScratch::new();
        for _ in 0..2 {
            let s64 = extract_segments_with(
                &e64,
                &t64,
                &ChannelEstimate::identity(64),
                5,
                SegmentExtraction::Sliding,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(s64.fft_size(), 64);
            let s128 = extract_segments_with(
                &e128,
                &t128,
                &ChannelEstimate::identity(128),
                9,
                SegmentExtraction::Sliding,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(s128.fft_size(), 128);
        }
    }

    #[test]
    fn bin_observations_collects_across_segments() {
        let e = engine();
        let (time, _) = random_symbol(&e, 2);
        let est = ChannelEstimate::identity(64);
        let segs = extract_segments(&e, &time, &est, 5).unwrap();
        let obs = segs.bin_observations(7);
        assert_eq!(obs.len(), 5);
        for o in obs {
            assert!((*o - segs.value(0, 7)).norm() < 1e-9);
        }
    }

    #[test]
    fn from_rows_round_trips_the_layout() {
        let rows = vec![
            vec![Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)],
            vec![Complex::new(3.0, 0.0), Complex::new(4.0, 0.0)],
            vec![Complex::new(5.0, 0.0), Complex::new(6.0, 0.0)],
        ];
        let segs = SymbolSegments::from_rows(rows.clone());
        assert_eq!(segs.num_segments(), 3);
        assert_eq!(segs.fft_size(), 2);
        for (j, row) in rows.iter().enumerate() {
            for (bin, v) in row.iter().enumerate() {
                assert_eq!(segs.value(j, bin), *v);
            }
        }
        assert_eq!(segs.bin_observations(1).len(), 3);
        assert_eq!(segs.bin_observations(1)[2], Complex::new(6.0, 0.0));
        assert_eq!(segs.standard(), rows[2]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        let _ = SymbolSegments::from_rows(vec![vec![Complex::zero(); 4], vec![Complex::zero(); 3]]);
    }

    #[test]
    fn segment_powers_from_rows_round_trips_the_layout() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let powers = SegmentPowers::from_rows(rows.clone());
        assert_eq!(powers.num_segments(), 3);
        assert_eq!(powers.fft_size(), 2);
        for (j, row) in rows.iter().enumerate() {
            for (bin, v) in row.iter().enumerate() {
                assert_eq!(powers.value(j, bin), *v);
            }
        }
        assert_eq!(powers.bin_powers(0), &[1.0, 3.0, 5.0]);
        assert_eq!(powers.bin_powers(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn segment_powers_reject_empty_rows() {
        let _ = SegmentPowers::from_rows(Vec::new());
    }

    #[test]
    fn multipath_within_isi_free_region_keeps_segments_equal() {
        // With a short multipath channel, only the first few CP samples are corrupted by
        // ISI; segments restricted to the ISI-free region must still agree after
        // equalisation.
        let e = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pdp = PowerDelayProfile::exponential(4, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        let (time, _) = random_symbol(&e, 4);
        // Prepend the previous symbol so ISI comes from real data, not silence.
        let (prev, _) = random_symbol(&e, 5);
        let mut stream = prev.clone();
        stream.extend_from_slice(&time);
        let faded = chan.apply(&stream);
        let this_symbol = &faded[80..160];
        let est = ChannelEstimate {
            h: chan.frequency_response(64),
        };
        // Max excess delay is 3 samples → segments using window starts ≥ 3 are ISI-free:
        // that is P = 16 + 1 − 3 = 14 segments.
        let segs = extract_segments(&e, this_symbol, &est, 14).unwrap();
        let reference = segs.standard();
        for j in 0..segs.num_segments() {
            for &bin in &e.params().data_bins() {
                assert!(
                    (segs.value(j, bin) - reference[bin]).norm() < 1e-6,
                    "segment {j}, bin {bin}"
                );
            }
        }
    }

    #[test]
    fn asynchronous_interference_varies_across_segments() {
        // The central empirical observation of the paper (Fig. 4b): a non-symbol-aligned
        // interferer contributes very different power to different segments.
        let e = engine();
        let (time, _) = random_symbol(&e, 6);
        // Interferer: another OFDM waveform, delayed by more than the CP and frequency
        // shifted (adjacent channel).
        let (intf_a, _) = random_symbol(&e, 7);
        let (intf_b, _) = random_symbol(&e, 8);
        let mut intf = intf_a;
        intf.extend(intf_b);
        let spec = InterfererSpec::new(intf, 0.3, 23.4, -10.0);
        let combined = combine(&time, &[spec]).unwrap();
        let powers = interference_power_per_segment(&e, &combined.interference[0], 17).unwrap();
        assert_eq!(powers.num_segments(), 17);
        assert_eq!(powers.fft_size(), 64);
        // Look at one occupied bin near the band edge and check the spread across
        // segments is non-trivial. The bin-major layout hands the per-segment series
        // of one bin out as a contiguous slice.
        let bin = 20usize;
        let series = powers.bin_powers(bin);
        let max = series.iter().cloned().fold(f64::MIN, f64::max);
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.0);
        assert!(
            max / min.max(1e-12) > 2.0,
            "interference should vary across segments: min {min}, max {max}"
        );
    }

    #[test]
    fn interference_power_kernels_agree() {
        let e = engine();
        let (wave, _) = random_symbol(&e, 15);
        let mut scratch = SegmentScratch::new();
        for p in [1usize, 4, 17] {
            let sliding = interference_power_per_segment_with(
                &e,
                &wave,
                p,
                SegmentExtraction::Sliding,
                &mut scratch,
            )
            .unwrap();
            let direct = interference_power_per_segment_with(
                &e,
                &wave,
                p,
                SegmentExtraction::Direct,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(sliding.num_segments(), p);
            for bin in 0..64 {
                let a = sliding.bin_powers(bin);
                let b = direct.bin_powers(bin);
                for j in 0..p {
                    assert!(
                        (a[j] - b[j]).abs() < 1e-9 * (1.0 + a[j].max(b[j])),
                        "P {p}, segment {j}, bin {bin}: {} vs {}",
                        a[j],
                        b[j]
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_segment_counts_are_rejected() {
        let e = engine();
        let (time, _) = random_symbol(&e, 9);
        let est = ChannelEstimate::identity(64);
        assert!(extract_segments(&e, &time, &est, 0).is_err());
        assert!(extract_segments(&e, &time, &est, 18).is_err());
        assert!(interference_power_per_segment(&e, &time, 0).is_err());
        assert!(interference_power_per_segment(&e, &time, 18).is_err());
        // Both kernels also reject truncated symbols and mismatched estimates.
        let mut scratch = SegmentScratch::new();
        for method in [SegmentExtraction::Sliding, SegmentExtraction::Direct] {
            assert!(extract_segments_with(&e, &time[..40], &est, 4, method, &mut scratch).is_err());
        }
        let short_est = ChannelEstimate::identity(32);
        assert!(extract_segments_with(
            &e,
            &time,
            &short_est,
            4,
            SegmentExtraction::Sliding,
            &mut scratch
        )
        .is_err());
    }
}
