//! FFT-segment extraction (paper §3.1).
//!
//! For one received OFDM symbol of `C + F` samples there are `P` ISI-free FFT windows
//! ("segments"): the window that starts right after the CP (the standard receiver's
//! choice) and the `P − 1` windows that start progressively earlier inside the CP.
//! After the deterministic phase-ramp correction of Eq. 2 every segment carries the same
//! desired-signal component (Proposition 3.1), but a different interference component —
//! the redundancy CPRecycle exploits.

use crate::Result;
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::PhyError;
use rfdsp::Complex;

/// The per-segment, per-bin observations extracted from one OFDM symbol.
#[derive(Debug, Clone)]
pub struct SymbolSegments {
    /// `values[segment][bin]`: equalised frequency-domain value of every FFT bin for
    /// each of the `P` segments. Segment `P − 1` is the standard receiver's window;
    /// segment `0` starts the earliest inside the cyclic prefix.
    pub values: Vec<Vec<Complex>>,
}

impl SymbolSegments {
    /// Number of segments `P`.
    pub fn num_segments(&self) -> usize {
        self.values.len()
    }

    /// The observations of one FFT bin across all segments — the `P` redundant copies
    /// the decoders work with.
    pub fn bin_observations(&self, bin: usize) -> Vec<Complex> {
        self.values.iter().map(|seg| seg[bin]).collect()
    }

    /// The standard receiver's view (the last segment).
    pub fn standard(&self) -> &[Complex] {
        self.values
            .last()
            .expect("SymbolSegments always holds at least one segment")
    }
}

/// Extracts `num_segments` equalised FFT segments from one received OFDM symbol.
///
/// * `symbol_samples` — the `C + F` samples of the symbol (CP included).
/// * `estimate` — the per-packet channel estimate (shared across segments: all ISI-free
///   windows see the same channel, paper Eq. 1).
/// * `num_segments` — `P`; must be between 1 and `C + 1`.
///
/// Segment `j` (0-based) uses the FFT window starting at sample `C − (P − 1) + j`, so
/// the last segment is the standard window starting at `C`.
pub fn extract_segments(
    engine: &OfdmEngine,
    symbol_samples: &[Complex],
    estimate: &ChannelEstimate,
    num_segments: usize,
) -> Result<SymbolSegments> {
    let params = engine.params();
    let c = params.cp_len;
    if num_segments == 0 || num_segments > c + 1 {
        return Err(PhyError::invalid(
            "num_segments",
            format!("must be between 1 and CP length + 1 ({})", c + 1),
        ));
    }
    let mut values = Vec::with_capacity(num_segments);
    for j in 0..num_segments {
        let window_start = c - (num_segments - 1) + j;
        let bins = engine.demodulate_window(symbol_samples, window_start)?;
        values.push(estimate.equalize(&bins)?);
    }
    Ok(SymbolSegments { values })
}

/// Measures the interference power per segment and per bin by demodulating an
/// *interference-only* waveform with the same segment windows (no equalisation — raw
/// received interference power). Used by the Oracle receiver and by the Fig. 4a/4b
/// diagnostics, where the paper obtains the same quantity "by muting the sender".
pub fn interference_power_per_segment(
    engine: &OfdmEngine,
    interference_symbol: &[Complex],
    num_segments: usize,
) -> Result<Vec<Vec<f64>>> {
    let params = engine.params();
    let c = params.cp_len;
    if num_segments == 0 || num_segments > c + 1 {
        return Err(PhyError::invalid(
            "num_segments",
            format!("must be between 1 and CP length + 1 ({})", c + 1),
        ));
    }
    let mut out = Vec::with_capacity(num_segments);
    for j in 0..num_segments {
        let window_start = c - (num_segments - 1) + j;
        let bins = engine.demodulate_window(interference_symbol, window_start)?;
        out.push(bins.iter().map(|b| b.norm_sqr()).collect());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::frame::pilot_values;
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use rand::{Rng, SeedableRng};
    use wirelesschan::mixer::{combine, InterfererSpec};
    use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

    fn engine() -> OfdmEngine {
        OfdmEngine::new(OfdmParams::ieee80211ag())
    }

    fn random_symbol(engine: &OfdmEngine, seed: u64) -> (Vec<Complex>, Vec<Complex>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Modulation::Qam16;
        let data: Vec<Complex> = (0..48)
            .map(|_| {
                let bits: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2)).collect();
                m.map(&bits).unwrap()
            })
            .collect();
        let time = engine.modulate(&data, &pilot_values(1.0)).unwrap();
        (time, data)
    }

    #[test]
    fn clean_channel_all_segments_identical() {
        let e = engine();
        let (time, data) = random_symbol(&e, 1);
        let est = ChannelEstimate::identity(64);
        let segs = extract_segments(&e, &time, &est, 17).unwrap();
        assert_eq!(segs.num_segments(), 17);
        let reference = segs.standard().to_vec();
        for seg in &segs.values {
            for k in 0..64 {
                assert!((seg[k] - reference[k]).norm() < 1e-9, "bin {k}");
            }
        }
        // And they match the transmitted data on the data bins.
        let data_bins = e.params().data_bins();
        for (i, bin) in data_bins.iter().enumerate() {
            assert!((reference[*bin] - data[i]).norm() < 1e-9);
        }
    }

    #[test]
    fn bin_observations_collects_across_segments() {
        let e = engine();
        let (time, _) = random_symbol(&e, 2);
        let est = ChannelEstimate::identity(64);
        let segs = extract_segments(&e, &time, &est, 5).unwrap();
        let obs = segs.bin_observations(7);
        assert_eq!(obs.len(), 5);
        for o in &obs {
            assert!((*o - segs.values[0][7]).norm() < 1e-9);
        }
    }

    #[test]
    fn multipath_within_isi_free_region_keeps_segments_equal() {
        // With a short multipath channel, only the first few CP samples are corrupted by
        // ISI; segments restricted to the ISI-free region must still agree after
        // equalisation.
        let e = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pdp = PowerDelayProfile::exponential(4, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        let (time, _) = random_symbol(&e, 4);
        // Prepend the previous symbol so ISI comes from real data, not silence.
        let (prev, _) = random_symbol(&e, 5);
        let mut stream = prev.clone();
        stream.extend_from_slice(&time);
        let faded = chan.apply(&stream);
        let this_symbol = &faded[80..160];
        let est = ChannelEstimate {
            h: chan.frequency_response(64),
        };
        // Max excess delay is 3 samples → segments using window starts ≥ 3 are ISI-free:
        // that is P = 16 + 1 − 3 = 14 segments.
        let segs = extract_segments(&e, this_symbol, &est, 14).unwrap();
        let reference = segs.standard().to_vec();
        for (j, seg) in segs.values.iter().enumerate() {
            for &bin in &e.params().data_bins() {
                assert!(
                    (seg[bin] - reference[bin]).norm() < 1e-6,
                    "segment {j}, bin {bin}"
                );
            }
        }
    }

    #[test]
    fn asynchronous_interference_varies_across_segments() {
        // The central empirical observation of the paper (Fig. 4b): a non-symbol-aligned
        // interferer contributes very different power to different segments.
        let e = engine();
        let (time, _) = random_symbol(&e, 6);
        // Interferer: another OFDM waveform, delayed by more than the CP and frequency
        // shifted (adjacent channel).
        let (intf_a, _) = random_symbol(&e, 7);
        let (intf_b, _) = random_symbol(&e, 8);
        let mut intf = intf_a;
        intf.extend(intf_b);
        let spec = InterfererSpec::new(intf, 0.3, 23.4, -10.0);
        let combined = combine(&time, &[spec]).unwrap();
        let powers = interference_power_per_segment(&e, &combined.interference[0], 17).unwrap();
        assert_eq!(powers.len(), 17);
        // Look at one occupied bin near the band edge and check the spread across
        // segments is non-trivial.
        let bin = 20usize;
        let series: Vec<f64> = powers.iter().map(|seg| seg[bin]).collect();
        let max = series.iter().cloned().fold(f64::MIN, f64::max);
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.0);
        assert!(
            max / min.max(1e-12) > 2.0,
            "interference should vary across segments: min {min}, max {max}"
        );
    }

    #[test]
    fn invalid_segment_counts_are_rejected() {
        let e = engine();
        let (time, _) = random_symbol(&e, 9);
        let est = ChannelEstimate::identity(64);
        assert!(extract_segments(&e, &time, &est, 0).is_err());
        assert!(extract_segments(&e, &time, &est, 18).is_err());
        assert!(interference_power_per_segment(&e, &time, 0).is_err());
        assert!(interference_power_per_segment(&e, &time, 18).is_err());
    }
}
