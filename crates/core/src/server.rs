//! Multi-session receiver server: N independent [`RxSession`]s multiplexed over a
//! fixed worker pool, fed through lock-free per-session ingress rings.
//!
//! One base station services many stations at once; [`RxServer`] is the layer that
//! turns the single-stream [`RxSession`] into that shape. Each session lives behind
//! a cheaply cloneable [`SessionHandle`]: producers push sample chunks into a
//! **bounded lock-free ingress ring** ([`SessionHandle::try_push`] returns
//! [`PushError::Full`]; [`SessionHandle::push`] spins briefly then parks for space)
//! and drain ordered per-session [`RxEvent`]s; a sharded, work-stealing pool of
//! worker threads ([`cprecycle_engine::pool::WorkerPool`]) services the sessions.
//!
//! ## Ownership and threading
//!
//! ```text
//!  producer threads                   RxServer                      worker pool
//!  ───────────────   ┌────────────────────────────────────┐   ┌──────────────────┐
//!  handle.push ──┐   │ SessionSlot k                      │   │ rx-pool-0 shard ─┼┐
//!   (chunk pool  │   │  ring:  [c₃][c₄][c₅][  ][  ]  ◀──┐ │   │ rx-pool-1 shard ─┼┼─▶ steal
//!    acquire +   ├──▶│         ▲tail (producers, CAS)  │ │◀──│   …              ││   scan
//!    copy)       │   │         ▼head (one worker)──────┘ │   │ pops a *slot*,   ││
//!                │   │  flushes: [ticket₁] (side queue)  │   │ drains its ring, ◀┘
//!  handle.flush ─┘   │  scheduled: AtomicBool            │   │ recycles buffers │
//!                    │  session: Mutex<RxSession>        │   └──────────────────┘
//!                    └────────────────────────────────────┘
//! ```
//!
//! The ingress ring is a bounded lock-free MPMC ring
//! ([`cprecycle_engine::ring::IngressRing`]): producers claim cells with a CAS on
//! the tail cursor, the servicing worker pops from the head, and the cursors live
//! on separate cache lines so a pushing producer and a draining worker never
//! contend on one mutex (PR 7's `Mutex<VecDeque> + Condvar` did exactly that).
//! Chunks are carried in recycled buffers from a shared [`ChunkPool`] — a push
//! copies into a pooled buffer and the worker returns it after servicing, so the
//! steady-state hot path performs **zero heap allocations** (pinned by the
//! `server_alloc.rs` counting-allocator test; misses and recycles are counted in
//! the metrics snapshot).
//!
//! A slot is enqueued on the pool **at most once** at any time (the atomic
//! `scheduled` flag): a producer that transitions it false→true submits the slot;
//! whichever worker pops it has exclusive run of that session until the ring is
//! observed empty (or a fairness budget expires, in which case the slot re-enqueues
//! itself behind other waiting slots). Before unscheduling, the worker clears the
//! flag and *re-checks* for work: if a chunk raced in, the worker re-acquires the
//! flag (or concedes it to the racing producer's own schedule) — either way the
//! "work pending ⇒ slot scheduled" invariant holds with no lost wakeup.
//!
//! Control items (`flush`) never enter the ring: they carry a **sequence ticket**
//! (the count of chunks accepted before the flush) in a tiny side queue, and the
//! worker runs a flush exactly when its serviced-chunk count reaches the ticket.
//! A flush therefore keeps its place in the stream *and* can always be accepted —
//! even against a full ring — which is why [`RxServer::shutdown`] cannot deadlock
//! on backpressure.
//!
//! ## Determinism
//!
//! Sessions share no state — each owns its receiver, carry-over buffer, detector
//! and interference model — so the only way scheduling could change an output is by
//! changing the order or grouping of one session's chunks. The ring + scheduled
//! flag forbid both: ring cells are claimed in cursor order and popped in cursor
//! order (per-session FIFO), flush tickets pin control items to their accepted
//! position, and exclusive servicing means the session's state machine performs
//! the identical sequence of floating-point operations as a standalone
//! [`RxSession`] fed the same chunks sequentially, regardless of worker count,
//! ring depths, or how N sessions' pushes interleave. Events and
//! [`SessionCounters`] are therefore **bit-identical** to the standalone replay —
//! the property `tests/server_equivalence.rs` pins over random interleavings.
//!
//! ## Backpressure contract
//!
//! * [`SessionHandle::try_push`] either accepts the whole chunk or returns
//!   [`PushError::Full`] having consumed **nothing** — the producer owns the chunk
//!   and may resubmit it later; accepted chunks are never dropped or reordered.
//! * [`SessionHandle::push`] blocks until the ring has space (adaptive: spins a
//!   short bounded phase, then parks until the worker frees a cell) or the session
//!   closes, → [`PushError::Closed`].
//! * [`SessionHandle::flush`] is accepted regardless of ring occupancy (ticketed
//!   control path) and takes effect after every previously accepted chunk.
//! * [`RxServer::drain`] blocks until every chunk accepted *before the call* has
//!   been fully processed; buffered mid-frame samples stay pending (no frame that
//!   could still complete is abandoned).
//! * [`RxServer::shutdown`] closes every session (subsequent pushes →
//!   [`PushError::Closed`]; parked producers wake and observe the closure),
//!   appends one final ticketed flush per session (end-of-stream: incomplete
//!   frames surface as [`RxEvent::SyncLost`]), waits for the work to finish, and
//!   joins the pool. Handles stay valid for draining events and reading counters
//!   afterwards.

use crate::chunk_pool::ChunkPool;
use crate::session::{RxEvent, RxSession, SessionConfig, SessionCounters};
use cprecycle_engine::pool::WorkerPool;
use cprecycle_engine::ring::{IngressRing, PushRejected};
use obs::{Log2Histogram, MetricsSnapshot, NoopRecorder, Recorder, StageSnapshot};
use ofdmphy::rx::FrameReceiver;
use ofdmphy::PhyError;
use rfdsp::Complex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Why a push into a session's ingress ring was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The session's bounded ingress ring is at capacity. Nothing was consumed:
    /// resubmit the same chunk once the ring drains and the session's output is
    /// unchanged from an unthrottled feed.
    Full,
    /// The session was closed by [`RxServer::shutdown`]; no further samples are
    /// accepted.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => write!(f, "session ingress ring is full"),
            PushError::Closed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads servicing all sessions. Defaults to the machine's available
    /// parallelism. Thread count never affects decoded bits — only throughput.
    pub threads: usize,
    /// Bound on each session's ingress ring, in chunks. When full,
    /// [`SessionHandle::try_push`] returns [`PushError::Full`] and
    /// [`SessionHandle::push`] blocks. Defaults to 64.
    pub queue_capacity: usize,
    /// Maximum free chunk buffers the shared [`ChunkPool`] retains *per size
    /// class* (it starts empty and grows on demand up to this bound). Defaults
    /// to 1024.
    pub pool_buffers: usize,
    /// Capacity of the largest pooled chunk-buffer class, in samples (classes
    /// double from [`crate::chunk_pool::MIN_CLASS_SAMPLES`] up to this);
    /// pushes larger than this fall back to an exact-size one-shot
    /// allocation. Defaults to
    /// [`crate::chunk_pool::DEFAULT_POOL_BUFFER_SAMPLES`].
    pub pool_buffer_samples: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            pool_buffers: 1024,
            pool_buffer_samples: crate::chunk_pool::DEFAULT_POOL_BUFFER_SAMPLES,
        }
    }
}

/// One accepted sample chunk riding the ingress ring: a pooled copy of the
/// producer's slice plus its acceptance timestamp (the start of the push→decode
/// latency span).
struct IngressChunk {
    buf: crate::chunk_pool::PooledBuf,
    accepted_at: crate::clock::Stamp,
}

/// Everything one session owns, shared between its handle, the server and the pool.
struct SessionSlot<R: FrameReceiver, O: Recorder> {
    /// Index of this session within the server (stable; also the metrics prefix).
    id: usize,
    /// Lock-free bounded ingress: sample chunks, FIFO, exact capacity bound.
    ring: IngressRing<IngressChunk>,
    /// Pending flush tickets (chunks-accepted counts); a flush runs when the
    /// worker's serviced count reaches its ticket. Control items live here so they
    /// bypass ring capacity — the queue is touched only on flush/shutdown, never
    /// on the per-chunk hot path (`control_pending` gates the lock).
    flushes: Mutex<VecDeque<u64>>,
    /// Number of tickets in `flushes` (lock-free fast check for the worker).
    control_pending: AtomicUsize,
    /// True while a pool job for this slot exists (queued or running). See the
    /// module docs for the clear-then-recheck protocol that keeps "work pending ⇒
    /// scheduled" airtight without a lock.
    scheduled: AtomicBool,
    /// Locked only by the worker currently servicing the slot — and briefly by
    /// handle-side reads (events, counters, snapshots).
    session: Mutex<RxSession<R, O>>,
    /// Samples accepted so far (monotonic; readable without the session lock).
    samples_in: AtomicUsize,
    /// First fatal session error, if any ([`RxSession::push`] errors are
    /// misconfigurations, not per-chunk conditions). Once set, further items are
    /// discarded.
    error: Mutex<Option<PhyError>>,
    /// Push→decode latency (acceptance to end-of-servicing), nanoseconds. Locked
    /// by the servicing worker per chunk and by snapshot reads.
    latency: Mutex<Log2Histogram>,
}

type Slot<R, O> = Arc<SessionSlot<R, O>>;

/// Compile-time audit that a session moves freely between worker threads given
/// `Send` building blocks (no hidden `Rc`/raw-pointer state anywhere in the
/// pipeline). Referenced by the server bounds below; never called.
fn _assert_sessions_are_send<R, O>()
where
    R: FrameReceiver + Send,
    R::Stream: Send,
    O: Recorder + Send,
{
    fn is_send<T: Send>() {}
    is_send::<RxSession<R, O>>();
}

/// A multi-session receiver server. See the [module docs](self) for the threading
/// model, determinism argument and backpressure contract.
///
/// The server quickstart (mirrored in the README): two stations, chunks pushed in
/// interleaved order, bit-identical per-station decodes.
///
/// ```
/// use cprecycle::server::{RxServer, ServerConfig};
/// use cprecycle::session::RxEvent;
/// use ofdmphy::convcode::CodeRate;
/// use ofdmphy::frame::{Mcs, Transmitter};
/// use ofdmphy::modulation::Modulation;
/// use ofdmphy::params::OfdmParams;
/// use ofdmphy::rx::StandardReceiver;
/// use rfdsp::Complex;
///
/// let params = OfdmParams::ieee80211ag();
/// let tx = Transmitter::new(params.clone());
/// let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
///
/// // One bursty capture per station.
/// let captures: Vec<Vec<Complex>> = [&b"station zero"[..], &b"station one"[..]]
///     .iter()
///     .map(|payload| {
///         let mut c = vec![Complex::zero(); 300];
///         c.extend(tx.build_frame(payload, mcs, 0x5D).unwrap().samples);
///         c.extend(vec![Complex::zero(); 300]);
///         c
///     })
///     .collect();
///
/// // A server with one session per station.
/// let server: RxServer<StandardReceiver> =
///     RxServer::new(ServerConfig { threads: 2, ..Default::default() });
/// let handles: Vec<_> = captures
///     .iter()
///     .map(|_| server.add_session(StandardReceiver::new(params.clone()), Default::default()))
///     .collect();
///
/// // Interleave the stations' chunks — scheduling never changes decoded bits.
/// let mut feeds: Vec<_> = captures.iter().map(|c| c.chunks(480)).collect();
/// loop {
///     let mut any = false;
///     for (feed, handle) in feeds.iter_mut().zip(&handles) {
///         if let Some(chunk) = feed.next() {
///             handle.push(chunk).unwrap();
///             any = true;
///         }
///     }
///     if !any {
///         break;
///     }
/// }
/// server.shutdown();
///
/// for (handle, payload) in handles.iter().zip([&b"station zero"[..], &b"station one"[..]]) {
///     let decoded: Vec<Vec<u8>> = handle
///         .drain_events()
///         .into_iter()
///         .filter_map(|e| match e {
///             RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
///             _ => None,
///         })
///         .collect();
///     assert_eq!(decoded, vec![payload.to_vec()]);
/// }
/// ```
pub struct RxServer<R, O = NoopRecorder>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    config: ServerConfig,
    /// Read-mostly registry: `add_session` takes the write lock briefly; snapshot,
    /// drain and shutdown iterate under a read guard without cloning anything.
    slots: RwLock<Vec<Slot<R, O>>>,
    pool: Arc<WorkerPool<Slot<R, O>>>,
    chunks: Arc<ChunkPool>,
    started: crate::clock::Stamp,
}

/// How many ingress items one scheduling services before the slot yields the worker
/// (re-enqueueing itself behind other waiting slots). Keeps one deeply backlogged
/// session from starving the rest without ever leaving work unscheduled.
const FAIRNESS_BUDGET: usize = 16;

/// How many consecutive "ring non-empty by cursor but not yet poppable" retries a
/// worker spins through (a producer is mid-publish) before yielding the worker via
/// a requeue.
const MID_PUBLISH_SPIN_LIMIT: usize = 64;

impl<R, O> RxServer<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    /// Starts a server: spawns the worker pool and the shared chunk pool,
    /// initially with zero sessions.
    pub fn new(config: ServerConfig) -> Self {
        let chunks = Arc::new(ChunkPool::new(
            config.pool_buffers.max(1),
            config.pool_buffer_samples.max(1),
        ));
        let service_chunks = Arc::clone(&chunks);
        let pool = WorkerPool::new(
            config.threads,
            |_w| (),
            move |_state: &mut (), slot: Slot<R, O>| Self::service(&slot, &service_chunks),
        );
        RxServer {
            config,
            slots: RwLock::new(Vec::new()),
            pool: Arc::new(pool),
            chunks,
            started: crate::clock::Stamp::now(),
        }
    }

    /// Whether the slot has servicable work: a chunk in (or being published into)
    /// the ring, or a pending control ticket. A pending ticket with an empty ring
    /// is always *due* (its chunks have all been serviced), so a worker observing
    /// `has_work` can always make progress or hand off.
    fn has_work(slot: &SessionSlot<R, O>) -> bool {
        !slot.ring.is_empty() || slot.control_pending.load(Ordering::SeqCst) > 0
    }

    /// Runs the front flush ticket if it has come due.
    fn run_due_flush(slot: &Slot<R, O>) -> bool {
        if slot.control_pending.load(Ordering::SeqCst) == 0 {
            return false;
        }
        let due = {
            let mut flushes = slot.flushes.lock().expect("flushes poisoned");
            if flushes
                .front()
                .is_some_and(|&ticket| slot.ring.serviced() >= ticket)
            {
                flushes.pop_front();
                true
            } else {
                false
            }
        };
        if due {
            slot.control_pending.fetch_sub(1, Ordering::SeqCst);
            if slot.error.lock().expect("error poisoned").is_none() {
                if let Err(e) = slot.session.lock().expect("session poisoned").flush() {
                    *slot.error.lock().expect("error poisoned") = Some(e);
                }
            }
        }
        due
    }

    /// Services one scheduling of `slot`: drains its ingress ring (and due flush
    /// tickets) into the session, up to the fairness budget. Returns the slot
    /// itself when it should be re-enqueued — the pool requeues it atomically with
    /// respect to [`WorkerPool::wait_idle`].
    fn service(slot: &Slot<R, O>, chunks: &ChunkPool) -> Option<Slot<R, O>> {
        let mut serviced = 0usize;
        let mut spins = 0usize;
        loop {
            if Self::run_due_flush(slot) {
                spins = 0;
                serviced += 1;
            } else if let Some(chunk) = slot.ring.pop() {
                if slot.error.lock().expect("error poisoned").is_none() {
                    if let Err(e) = slot
                        .session
                        .lock()
                        .expect("session poisoned")
                        .push(&chunk.buf)
                    {
                        *slot.error.lock().expect("error poisoned") = Some(e);
                    }
                }
                let nanos = chunk.accepted_at.elapsed_nanos();
                slot.latency.lock().expect("latency poisoned").record(nanos);
                chunks.release(chunk.buf);
                spins = 0;
                serviced += 1;
            } else {
                // Nothing poppable. Clear the flag, then re-check: a producer that
                // published after our failed pop either saw `scheduled` still true
                // (we re-acquire below and keep servicing) or scheduled the slot
                // itself after our clear (we concede — exactly one job exists
                // either way).
                slot.scheduled.store(false, Ordering::SeqCst);
                if !Self::has_work(slot) {
                    return None;
                }
                if slot.scheduled.swap(true, Ordering::SeqCst) {
                    return None; // racing producer took over the scheduling
                }
                // Re-acquired: work exists but may be mid-publish (tail claimed,
                // value not yet stamped). Spin briefly, then yield the worker.
                spins += 1;
                if spins >= MID_PUBLISH_SPIN_LIMIT {
                    return Some(Arc::clone(slot));
                }
                std::hint::spin_loop();
                continue;
            }
            if serviced >= FAIRNESS_BUDGET {
                if Self::has_work(slot) {
                    // Still backlogged: keep `scheduled` set and yield the worker.
                    return Some(Arc::clone(slot));
                }
                slot.scheduled.store(false, Ordering::SeqCst);
                if !Self::has_work(slot) {
                    return None;
                }
                if slot.scheduled.swap(true, Ordering::SeqCst) {
                    return None;
                }
                return Some(Arc::clone(slot));
            }
        }
    }

    /// Adds a session with no instrumentation-recorder requirement beyond `O`'s
    /// default construction — use [`Self::add_session_with_recorder`] to attach
    /// one. Sessions can be added while the server is live; the handle is
    /// immediately usable.
    pub fn add_session(&self, receiver: R, config: SessionConfig) -> SessionHandle<R, O>
    where
        O: Default,
    {
        self.add_session_with_recorder(receiver, config, O::default())
    }

    /// Adds a session whose receive chain reports into `recorder` (stage timings +
    /// event trace, exactly as a standalone [`RxSession::with_recorder`]).
    pub fn add_session_with_recorder(
        &self,
        receiver: R,
        config: SessionConfig,
        recorder: O,
    ) -> SessionHandle<R, O> {
        let mut slots = self.slots.write().expect("slots poisoned");
        let slot = Arc::new(SessionSlot {
            id: slots.len(),
            ring: IngressRing::with_capacity(self.config.queue_capacity.max(1)),
            flushes: Mutex::new(VecDeque::new()),
            control_pending: AtomicUsize::new(0),
            scheduled: AtomicBool::new(false),
            session: Mutex::new(RxSession::with_recorder(receiver, config, recorder)),
            samples_in: AtomicUsize::new(0),
            error: Mutex::new(None),
            latency: Mutex::new(Log2Histogram::new()),
        });
        slots.push(Arc::clone(&slot));
        SessionHandle {
            slot,
            pool: Arc::clone(&self.pool),
            chunks: Arc::clone(&self.chunks),
        }
    }

    /// Number of sessions ever added.
    pub fn sessions(&self) -> usize {
        self.slots.read().expect("slots poisoned").len()
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Blocks until every chunk accepted before this call has been processed.
    ///
    /// This is a barrier, not an end-of-stream: sessions keep their carry-over
    /// buffers, so a frame whose tail has not arrived stays pending and decodes
    /// when the rest is pushed — `drain` never costs a decodable frame. Producers
    /// pushing concurrently with `drain` are outside the barrier.
    pub fn drain(&self) {
        self.pool.wait_idle();
    }

    /// Closes every session, flushes each one (end-of-stream semantics: incomplete
    /// frames become [`RxEvent::SyncLost`]), waits for all queued work and joins the
    /// worker pool. Idempotent. Pushes after (or racing) `shutdown` fail with
    /// [`PushError::Closed`]; handles remain valid for draining events, counters
    /// and snapshots.
    ///
    /// The final flush rides the ticketed control path, not the ring, so shutdown
    /// completes even when every ring is full and producers are parked — they wake
    /// with [`PushError::Closed`] instead of deadlocking against the flush.
    pub fn shutdown(&self) {
        {
            let slots = self.slots.read().expect("slots poisoned");
            for slot in slots.iter() {
                if slot.ring.close() {
                    continue; // already closed by an earlier shutdown
                }
                // Flush after everything accepted up to the close.
                let ticket = slot.ring.accepted();
                slot.flushes
                    .lock()
                    .expect("flushes poisoned")
                    .push_back(ticket);
                slot.control_pending.fetch_add(1, Ordering::SeqCst);
                if !slot.scheduled.swap(true, Ordering::SeqCst) {
                    self.pool.submit(Arc::clone(slot));
                }
            }
        }
        self.pool.wait_idle();
        self.pool.shutdown();
    }

    /// Aggregate + per-session observability snapshot.
    ///
    /// Unprefixed names are server-wide: the `sessions_active` gauge (sessions not
    /// yet closed), per-session-summed counters (`samples_pushed`,
    /// `frames_decoded`, `fcs_passes`, …), ingress-path counters
    /// (`ring_full_rejections`, `chunk_pool_hits`/`misses`/`oversize`/`recycled`/
    /// `dropped`, `pool_steals`), the total `queue_depth` gauge, the
    /// `samples_per_sec` gauge (aggregate accepted-sample rate since the server
    /// started — wall-clock, so outside the determinism contract), and the
    /// aggregate push→decode latency: a `push_decode` stage histogram plus
    /// `push_decode_p50_ns`/`p95`/`p99` gauges. Each session's full snapshot
    /// (counters, stage timings, trace) additionally lands under a `session.{id}.`
    /// prefix, plus its own `session.{id}.queue_depth` gauge and
    /// `session.{id}.push_decode_p{50,95,99}_ns` gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read().expect("slots poisoned");
        let mut snap = MetricsSnapshot::new();
        let mut active = 0usize;
        let mut total_depth = 0usize;
        let mut total_samples = 0usize;
        let mut ring_full = 0u64;
        let mut latency_all = Log2Histogram::new();
        for slot in slots.iter() {
            let depth = slot.ring.len();
            if !slot.ring.is_closed() {
                active += 1;
            }
            total_depth += depth;
            total_samples += slot.samples_in.load(Ordering::Relaxed);
            ring_full += slot.ring.full_events();
            let per_session = slot
                .session
                .lock()
                .expect("session poisoned")
                .metrics_snapshot();
            // Aggregate counters (sessions are independent, so sums are exact) …
            for (name, value) in &per_session.counters {
                snap.add_counter(name, *value);
            }
            // … and the full per-session view under its prefix.
            let prefix = format!("session.{}.", slot.id);
            snap.merge_prefixed(&prefix, &per_session);
            snap.set_gauge(&format!("session.{}.queue_depth", slot.id), depth as f64);
            let latency = slot.latency.lock().expect("latency poisoned").clone();
            if latency.count() > 0 {
                for (q, name) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                    if let Some(v) = latency.percentile(q) {
                        snap.set_gauge(
                            &format!("session.{}.push_decode_{name}_ns", slot.id),
                            v as f64,
                        );
                    }
                }
                latency_all.merge(&latency);
            }
        }
        snap.add_counter("ring_full_rejections", ring_full);
        let pool_stats = self.chunks.stats();
        snap.add_counter("chunk_pool_hits", pool_stats.hits);
        snap.add_counter("chunk_pool_misses", pool_stats.misses);
        snap.add_counter("chunk_pool_oversize", pool_stats.oversize);
        snap.add_counter("chunk_pool_recycled", pool_stats.recycled);
        snap.add_counter("chunk_pool_dropped", pool_stats.dropped);
        snap.add_counter("pool_steals", self.pool.steals());
        if latency_all.count() > 0 {
            for (q, name) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                if let Some(v) = latency_all.percentile(q) {
                    snap.set_gauge(&format!("push_decode_{name}_ns"), v as f64);
                }
            }
            snap.stages.push(StageSnapshot {
                stage: "push_decode".to_string(),
                key: String::new(),
                histogram: latency_all,
            });
        }
        snap.set_gauge("sessions_active", active as f64);
        snap.set_gauge("queue_depth", total_depth as f64);
        let elapsed = self.started.elapsed_secs_f64();
        if elapsed > 0.0 {
            snap.set_gauge("samples_per_sec", total_samples as f64 / elapsed);
        }
        snap
    }
}

impl<R, O> Drop for RxServer<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cheaply cloneable handle to one session inside an [`RxServer`].
///
/// The ingest side ([`push`](Self::push) / [`try_push`](Self::try_push)) and the
/// event side ([`drain_events`](Self::drain_events) / [`poll_event`](Self::poll_event))
/// may live on different threads; events always arrive in the session's
/// stream order.
pub struct SessionHandle<R, O = NoopRecorder>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    slot: Slot<R, O>,
    pool: Arc<WorkerPool<Slot<R, O>>>,
    chunks: Arc<ChunkPool>,
}

impl<R, O> Clone for SessionHandle<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    fn clone(&self) -> Self {
        SessionHandle {
            slot: Arc::clone(&self.slot),
            pool: Arc::clone(&self.pool),
            chunks: Arc::clone(&self.chunks),
        }
    }
}

impl<R, O> SessionHandle<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    /// Index of this session within its server (also its metrics prefix).
    pub fn id(&self) -> usize {
        self.slot.id
    }

    /// Submits the slot for servicing unless a pool job for it already exists.
    fn schedule(&self) {
        if !self.slot.scheduled.swap(true, Ordering::SeqCst) {
            self.pool.submit(Arc::clone(&self.slot));
        }
    }

    /// Copies `chunk` into a pooled buffer and enqueues it, optionally blocking
    /// for ring space. A rejected push releases the buffer straight back — the
    /// producer's slice is untouched either way.
    fn submit_chunk(&self, chunk: &[Complex], block: bool) -> Result<(), PushError> {
        let item = IngressChunk {
            buf: self.chunks.acquire(chunk),
            accepted_at: crate::clock::Stamp::now(),
        };
        let result = if block {
            self.slot.ring.push(item)
        } else {
            self.slot.ring.try_push(item)
        };
        match result {
            Ok(()) => {
                self.slot
                    .samples_in
                    .fetch_add(chunk.len(), Ordering::Relaxed);
                self.schedule();
                Ok(())
            }
            Err(PushRejected::Full(item)) => {
                self.chunks.release(item.buf);
                Err(PushError::Full)
            }
            Err(PushRejected::Closed(item)) => {
                self.chunks.release(item.buf);
                Err(PushError::Closed)
            }
        }
    }

    /// Enqueues a chunk, blocking while the session's ingress ring is full.
    /// Fails only with [`PushError::Closed`] after [`RxServer::shutdown`].
    pub fn push(&self, chunk: &[Complex]) -> Result<(), PushError> {
        self.submit_chunk(chunk, true)
    }

    /// Enqueues a chunk without blocking: [`PushError::Full`] means the bounded
    /// ring is at capacity and **nothing was consumed** — resubmitting the same
    /// chunk later yields the same session output as an unthrottled feed.
    pub fn try_push(&self, chunk: &[Complex]) -> Result<(), PushError> {
        self.submit_chunk(chunk, false)
    }

    /// Enqueues an end-of-stream flush for this session (the asynchronous
    /// counterpart of [`RxSession::flush`]). The flush takes effect after every
    /// previously accepted chunk; use [`RxServer::drain`] to wait for it. Control
    /// items ride a ticketed side queue, so a flush is accepted even against a
    /// full ring.
    pub fn flush(&self) -> Result<(), PushError> {
        if self.slot.ring.is_closed() {
            return Err(PushError::Closed);
        }
        let ticket = self.slot.ring.accepted();
        self.slot
            .flushes
            .lock()
            .expect("flushes poisoned")
            .push_back(ticket);
        self.slot.control_pending.fetch_add(1, Ordering::SeqCst);
        self.schedule();
        Ok(())
    }

    /// Chunks currently waiting in this session's ingress ring.
    pub fn queue_depth(&self) -> usize {
        self.slot.ring.len()
    }

    /// Samples accepted so far (including ones still queued).
    pub fn samples_pushed(&self) -> usize {
        self.slot.samples_in.load(Ordering::Relaxed)
    }

    /// Drains every event the session has produced so far, in stream order.
    /// Call [`RxServer::drain`] first for a result covering all accepted chunks.
    pub fn drain_events(&self) -> Vec<RxEvent> {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .drain_events()
    }

    /// Next produced event, if any.
    pub fn poll_event(&self) -> Option<RxEvent> {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .poll_event()
    }

    /// The session's health counters (in lockstep with its event stream).
    pub fn counters(&self) -> SessionCounters {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .counters()
    }

    /// The session's observability snapshot (recorder state + counters), as
    /// [`RxSession::metrics_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .metrics_snapshot()
    }

    /// Takes the session's first fatal error, if one occurred. After an error the
    /// session discards further input (its events up to the error remain
    /// drainable).
    pub fn take_error(&self) -> Option<PhyError> {
        self.slot.error.lock().expect("error poisoned").take()
    }

    /// Runs `f` against the underlying session. The session lock is held for the
    /// duration — keep it short; chunks queue up behind it.
    pub fn with_session<T>(&self, f: impl FnOnce(&RxSession<R, O>) -> T) -> T {
        f(&self.slot.session.lock().expect("session poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::frame::{Mcs, Transmitter};
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use ofdmphy::rx::StandardReceiver;

    fn capture(payload: &[u8]) -> Vec<Complex> {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params);
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let mut c = vec![Complex::zero(); 300];
        c.extend(tx.build_frame(payload, mcs, 0x5D).unwrap().samples);
        c.extend(vec![Complex::zero(); 300]);
        c
    }

    fn payloads(events: &[RxEvent]) -> Vec<Vec<u8>> {
        events
            .iter()
            .filter_map(|e| match e {
                RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn each_session_decodes_its_own_stream() {
        let server = RxServer::new(ServerConfig {
            threads: 4,
            ..Default::default()
        });
        let bodies: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 40]).collect();
        let handles: Vec<SessionHandle<StandardReceiver>> = bodies
            .iter()
            .map(|_| {
                server.add_session(
                    StandardReceiver::new(OfdmParams::ieee80211ag()),
                    SessionConfig::default(),
                )
            })
            .collect();
        for (h, body) in handles.iter().zip(&bodies) {
            for chunk in capture(body).chunks(333) {
                h.push(chunk).unwrap();
            }
        }
        server.drain();
        for (h, body) in handles.iter().zip(&bodies) {
            assert_eq!(payloads(&h.drain_events()), vec![body.clone()]);
            assert_eq!(h.counters().frames_decoded, 1);
            assert!(h.take_error().is_none());
        }
        assert_eq!(server.sessions(), 4);
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_pushes() {
        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads: 2,
            ..Default::default()
        });
        let h = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        h.push(&capture(b"closing time")).unwrap();
        server.shutdown();
        server.shutdown();
        assert_eq!(h.push(&[Complex::zero(); 8]), Err(PushError::Closed));
        assert_eq!(h.try_push(&[Complex::zero(); 8]), Err(PushError::Closed));
        assert_eq!(h.flush(), Err(PushError::Closed));
        assert_eq!(payloads(&h.drain_events()), vec![b"closing time".to_vec()]);
    }

    #[test]
    fn server_snapshot_aggregates_and_prefixes() {
        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads: 2,
            ..Default::default()
        });
        let a = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        let b = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        a.push(&capture(b"aaaa")).unwrap();
        b.push(&capture(b"bbbb")).unwrap();
        server.drain();
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("frames_decoded"), 2);
        assert_eq!(snap.counter("session.0.frames_decoded"), 1);
        assert_eq!(snap.counter("session.1.frames_decoded"), 1);
        assert_eq!(snap.gauge("sessions_active"), Some(2.0));
        assert_eq!(snap.gauge("queue_depth"), Some(0.0));
        assert_eq!(
            snap.counter("samples_pushed"),
            (a.samples_pushed() + b.samples_pushed()) as u64
        );
        server.shutdown();
        assert_eq!(
            server.metrics_snapshot().gauge("sessions_active"),
            Some(0.0)
        );
    }

    #[test]
    fn snapshot_reports_ingress_path_metrics() {
        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads: 1,
            queue_capacity: 2,
            ..Default::default()
        });
        let h = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        for chunk in capture(b"meter me").chunks(480) {
            h.push(chunk).unwrap();
        }
        server.drain();
        let snap = server.metrics_snapshot();
        // The ingress-path counters are always present (possibly zero) …
        for name in [
            "ring_full_rejections",
            "chunk_pool_hits",
            "chunk_pool_misses",
            "chunk_pool_recycled",
            "pool_steals",
        ] {
            assert!(snap.counters.contains_key(name), "missing counter {name}");
        }
        // … every serviced chunk allocated (miss) or reused (hit) a pooled buffer …
        let s = server.metrics_snapshot();
        assert!(s.counter("chunk_pool_hits") + s.counter("chunk_pool_misses") > 0);
        // … and the push→decode latency surfaced as percentiles + a stage.
        let p50 = snap.gauge("push_decode_p50_ns").expect("aggregate p50");
        let p99 = snap.gauge("push_decode_p99_ns").expect("aggregate p99");
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(snap.gauge("session.0.push_decode_p95_ns").is_some());
        assert!(snap
            .stages
            .iter()
            .any(|st| st.stage == "push_decode" && st.histogram.count() > 0));
        server.shutdown();
    }
}
