//! Multi-session receiver server: N independent [`RxSession`]s multiplexed over a
//! fixed worker pool.
//!
//! One base station services many stations at once; [`RxServer`] is the layer that
//! turns the single-stream [`RxSession`] into that shape. Each session lives behind
//! a cheaply cloneable [`SessionHandle`]: producers push sample chunks into a
//! **bounded per-session ingress queue** ([`SessionHandle::try_push`] returns
//! [`PushError::Full`]; [`SessionHandle::push`] blocks for space) and drain ordered
//! per-session [`RxEvent`]s; a pool of worker threads
//! ([`cprecycle_engine::pool::WorkerPool`], the same worker-local-state machinery
//! behind the campaign executor) services the sessions.
//!
//! ## Ownership and threading
//!
//! ```text
//!  producer threads                  RxServer                     worker pool
//!  ───────────────     ┌──────────────────────────────┐     ┌──────────────────┐
//!  handle.push(chunk) ─▶ SessionSlot 0: ingress queue ─┐    │ rx-pool-0        │
//!  handle.push(chunk) ─▶ SessionSlot 1: ingress queue ─┼──▶ │ rx-pool-1        │
//!        …            ─▶ SessionSlot k: ingress queue ─┘    │   …              │
//!                      │   (bounded, FIFO, `scheduled`)│    │ pops a *slot*,   │
//!                      │   session: Mutex<RxSession>   │◀── │ drains its queue │
//!                      └──────────────────────────────┘     └──────────────────┘
//! ```
//!
//! A slot is enqueued on the pool **at most once** at any time (the `scheduled`
//! flag): whichever worker pops it has exclusive run of that session until its
//! ingress queue is observed empty (or a fairness budget expires, in which case the
//! slot re-enqueues itself *behind* the other waiting slots). Chunks therefore reach
//! each `RxSession` in exactly the FIFO order they were accepted, processed by one
//! worker at a time.
//!
//! ## Determinism
//!
//! Sessions share no state — each owns its receiver, carry-over buffer, detector and
//! interference model — so the only way scheduling could change an output is by
//! changing the order or grouping of one session's chunks. The scheduled-flag
//! protocol forbids both: per-session FIFO plus exclusive servicing means the
//! session's state machine performs the identical sequence of floating-point
//! operations as a standalone [`RxSession`] fed the same chunks sequentially,
//! regardless of worker count, queue depths, or how N sessions' pushes interleave.
//! Events and [`SessionCounters`] are therefore **bit-identical** to the standalone
//! replay — the property `tests/server_equivalence.rs` pins over random
//! interleavings.
//!
//! ## Backpressure contract
//!
//! * [`SessionHandle::try_push`] either accepts the whole chunk or returns
//!   [`PushError::Full`] having consumed **nothing** — the producer owns the chunk
//!   and may resubmit it later; accepted chunks are never dropped or reordered.
//! * [`SessionHandle::push`] blocks until the queue has space (or the session
//!   closes, → [`PushError::Closed`]).
//! * [`RxServer::drain`] blocks until every chunk accepted *before the call* has
//!   been fully processed; buffered mid-frame samples stay pending (no frame that
//!   could still complete is abandoned).
//! * [`RxServer::shutdown`] closes every session (subsequent pushes →
//!   [`PushError::Closed`]), appends one final flush per session (end-of-stream:
//!   incomplete frames surface as [`RxEvent::SyncLost`]), waits for the work to
//!   finish, and joins the pool. Handles stay valid for draining events and reading
//!   counters afterwards.

use crate::session::{RxEvent, RxSession, SessionConfig, SessionCounters};
use cprecycle_engine::pool::WorkerPool;
use obs::{MetricsSnapshot, NoopRecorder, Recorder};
use ofdmphy::rx::FrameReceiver;
use ofdmphy::PhyError;
use rfdsp::Complex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a push into a session's ingress queue was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The session's bounded ingress queue is at capacity. Nothing was consumed:
    /// resubmit the same chunk once the queue drains and the session's output is
    /// unchanged from an unthrottled feed.
    Full,
    /// The session was closed by [`RxServer::shutdown`]; no further samples are
    /// accepted.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => write!(f, "session ingress queue is full"),
            PushError::Closed => write!(f, "session is closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads servicing all sessions. Defaults to the machine's available
    /// parallelism. Thread count never affects decoded bits — only throughput.
    pub threads: usize,
    /// Bound on each session's ingress queue, in chunks. When full,
    /// [`SessionHandle::try_push`] returns [`PushError::Full`] and
    /// [`SessionHandle::push`] blocks. Defaults to 64.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
        }
    }
}

/// One ingress work item.
enum WorkItem {
    /// Samples to feed through [`RxSession::push`].
    Chunk(Vec<Complex>),
    /// End-of-stream marker: run [`RxSession::flush`]. Enqueued past the capacity
    /// bound (control items must never deadlock against backpressure).
    Flush,
}

/// The lock-guarded ingress side of a slot.
struct Ingress {
    queue: VecDeque<WorkItem>,
    /// Chunks currently queued (excludes control items), bounded by
    /// [`ServerConfig::queue_capacity`].
    chunks_queued: usize,
    /// True while a pool job for this slot exists (queued or running). Cleared only
    /// under this lock, in the same critical section that observes the queue empty —
    /// the invariant that makes "non-empty queue ⇒ slot is scheduled" airtight.
    scheduled: bool,
    /// Set by [`RxServer::shutdown`]; rejects further pushes.
    closed: bool,
}

/// Everything one session owns, shared between its handle, the server and the pool.
struct SessionSlot<R: FrameReceiver, O: Recorder> {
    /// Index of this session within the server (stable; also the metrics prefix).
    id: usize,
    ingress: Mutex<Ingress>,
    /// Signalled when queue space frees up or the slot closes.
    space: Condvar,
    /// Locked only by the worker currently servicing the slot — and briefly by
    /// handle-side reads (events, counters, snapshots).
    session: Mutex<RxSession<R, O>>,
    /// Samples accepted so far (monotonic; readable without the session lock).
    samples_in: AtomicUsize,
    /// First fatal session error, if any ([`RxSession::push`] errors are
    /// misconfigurations, not per-chunk conditions). Once set, further items are
    /// discarded.
    error: Mutex<Option<PhyError>>,
}

type Slot<R, O> = Arc<SessionSlot<R, O>>;

/// Compile-time audit that a session moves freely between worker threads given
/// `Send` building blocks (no hidden `Rc`/raw-pointer state anywhere in the
/// pipeline). Referenced by the server bounds below; never called.
fn _assert_sessions_are_send<R, O>()
where
    R: FrameReceiver + Send,
    R::Stream: Send,
    O: Recorder + Send,
{
    fn is_send<T: Send>() {}
    is_send::<RxSession<R, O>>();
}

/// A multi-session receiver server. See the [module docs](self) for the threading
/// model, determinism argument and backpressure contract.
///
/// The server quickstart (mirrored in the README): two stations, chunks pushed in
/// interleaved order, bit-identical per-station decodes.
///
/// ```
/// use cprecycle::server::{RxServer, ServerConfig};
/// use cprecycle::session::RxEvent;
/// use ofdmphy::convcode::CodeRate;
/// use ofdmphy::frame::{Mcs, Transmitter};
/// use ofdmphy::modulation::Modulation;
/// use ofdmphy::params::OfdmParams;
/// use ofdmphy::rx::StandardReceiver;
/// use rfdsp::Complex;
///
/// let params = OfdmParams::ieee80211ag();
/// let tx = Transmitter::new(params.clone());
/// let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
///
/// // One bursty capture per station.
/// let captures: Vec<Vec<Complex>> = [&b"station zero"[..], &b"station one"[..]]
///     .iter()
///     .map(|payload| {
///         let mut c = vec![Complex::zero(); 300];
///         c.extend(tx.build_frame(payload, mcs, 0x5D).unwrap().samples);
///         c.extend(vec![Complex::zero(); 300]);
///         c
///     })
///     .collect();
///
/// // A server with one session per station.
/// let server: RxServer<StandardReceiver> =
///     RxServer::new(ServerConfig { threads: 2, ..Default::default() });
/// let handles: Vec<_> = captures
///     .iter()
///     .map(|_| server.add_session(StandardReceiver::new(params.clone()), Default::default()))
///     .collect();
///
/// // Interleave the stations' chunks — scheduling never changes decoded bits.
/// let mut feeds: Vec<_> = captures.iter().map(|c| c.chunks(480)).collect();
/// loop {
///     let mut any = false;
///     for (feed, handle) in feeds.iter_mut().zip(&handles) {
///         if let Some(chunk) = feed.next() {
///             handle.push(chunk).unwrap();
///             any = true;
///         }
///     }
///     if !any {
///         break;
///     }
/// }
/// server.shutdown();
///
/// for (handle, payload) in handles.iter().zip([&b"station zero"[..], &b"station one"[..]]) {
///     let decoded: Vec<Vec<u8>> = handle
///         .drain_events()
///         .into_iter()
///         .filter_map(|e| match e {
///             RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
///             _ => None,
///         })
///         .collect();
///     assert_eq!(decoded, vec![payload.to_vec()]);
/// }
/// ```
pub struct RxServer<R, O = NoopRecorder>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    config: ServerConfig,
    slots: Mutex<Vec<Slot<R, O>>>,
    pool: Arc<WorkerPool<Slot<R, O>>>,
    started: Instant,
}

/// How many ingress items one scheduling services before the slot yields the worker
/// (re-enqueueing itself behind other waiting slots). Keeps one deeply backlogged
/// session from starving the rest without ever leaving work unscheduled.
const FAIRNESS_BUDGET: usize = 16;

impl<R, O> RxServer<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    /// Starts a server: spawns the worker pool, initially with zero sessions.
    pub fn new(config: ServerConfig) -> Self {
        let pool = WorkerPool::new(
            config.threads,
            |_w| (),
            |_state: &mut (), slot: Slot<R, O>| Self::service(&slot),
        );
        RxServer {
            config,
            slots: Mutex::new(Vec::new()),
            pool: Arc::new(pool),
            started: Instant::now(),
        }
    }

    /// Services one scheduling of `slot`: drains its ingress queue (up to the
    /// fairness budget) into the session. Returns the slot itself when it should be
    /// re-enqueued — the pool requeues it atomically with respect to
    /// [`WorkerPool::wait_idle`].
    fn service(slot: &Slot<R, O>) -> Option<Slot<R, O>> {
        let mut serviced = 0usize;
        loop {
            let item = {
                let mut ingress = slot.ingress.lock().expect("ingress poisoned");
                match ingress.queue.pop_front() {
                    Some(item) => {
                        if matches!(item, WorkItem::Chunk(_)) {
                            ingress.chunks_queued -= 1;
                        }
                        slot.space.notify_all();
                        item
                    }
                    None => {
                        // Observed empty: unschedule in the same critical section,
                        // so a concurrent push either sees `scheduled` still set
                        // (we haven't cleared yet) or an empty queue it will
                        // schedule for — never a lost wakeup.
                        ingress.scheduled = false;
                        return None;
                    }
                }
            };
            let failed = slot.error.lock().expect("error poisoned").is_some();
            if !failed {
                let mut session = slot.session.lock().expect("session poisoned");
                let outcome = match item {
                    WorkItem::Chunk(chunk) => session.push(&chunk),
                    WorkItem::Flush => session.flush(),
                };
                if let Err(e) = outcome {
                    *slot.error.lock().expect("error poisoned") = Some(e);
                }
            }
            serviced += 1;
            if serviced >= FAIRNESS_BUDGET {
                let mut ingress = slot.ingress.lock().expect("ingress poisoned");
                if ingress.queue.is_empty() {
                    ingress.scheduled = false;
                    return None;
                }
                // Still backlogged: keep `scheduled` set and yield the worker.
                return Some(Arc::clone(slot));
            }
        }
    }

    /// Adds a session with no instrumentation-recorder requirement beyond `O`'s
    /// default construction — use [`Self::add_session_with_recorder`] to attach
    /// one. Sessions can be added while the server is live; the handle is
    /// immediately usable.
    pub fn add_session(&self, receiver: R, config: SessionConfig) -> SessionHandle<R, O>
    where
        O: Default,
    {
        self.add_session_with_recorder(receiver, config, O::default())
    }

    /// Adds a session whose receive chain reports into `recorder` (stage timings +
    /// event trace, exactly as a standalone [`RxSession::with_recorder`]).
    pub fn add_session_with_recorder(
        &self,
        receiver: R,
        config: SessionConfig,
        recorder: O,
    ) -> SessionHandle<R, O> {
        let mut slots = self.slots.lock().expect("slots poisoned");
        let slot = Arc::new(SessionSlot {
            id: slots.len(),
            ingress: Mutex::new(Ingress {
                queue: VecDeque::new(),
                chunks_queued: 0,
                scheduled: false,
                closed: false,
            }),
            space: Condvar::new(),
            session: Mutex::new(RxSession::with_recorder(receiver, config, recorder)),
            samples_in: AtomicUsize::new(0),
            error: Mutex::new(None),
        });
        slots.push(Arc::clone(&slot));
        SessionHandle {
            slot,
            pool: Arc::clone(&self.pool),
            capacity: self.config.queue_capacity,
        }
    }

    /// Number of sessions ever added.
    pub fn sessions(&self) -> usize {
        self.slots.lock().expect("slots poisoned").len()
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Blocks until every chunk accepted before this call has been processed.
    ///
    /// This is a barrier, not an end-of-stream: sessions keep their carry-over
    /// buffers, so a frame whose tail has not arrived stays pending and decodes
    /// when the rest is pushed — `drain` never costs a decodable frame. Producers
    /// pushing concurrently with `drain` are outside the barrier.
    pub fn drain(&self) {
        self.pool.wait_idle();
    }

    /// Closes every session, flushes each one (end-of-stream semantics: incomplete
    /// frames become [`RxEvent::SyncLost`]), waits for all queued work and joins the
    /// worker pool. Idempotent. Pushes after (or racing) `shutdown` fail with
    /// [`PushError::Closed`]; handles remain valid for draining events, counters
    /// and snapshots.
    pub fn shutdown(&self) {
        let slots: Vec<Slot<R, O>> = self.slots.lock().expect("slots poisoned").clone();
        for slot in &slots {
            let schedule = {
                let mut ingress = slot.ingress.lock().expect("ingress poisoned");
                if ingress.closed {
                    continue;
                }
                ingress.closed = true;
                ingress.queue.push_back(WorkItem::Flush);
                let schedule = !ingress.scheduled;
                ingress.scheduled = true;
                schedule
            };
            // Wake producers blocked on a full queue; they observe `closed`.
            slot.space.notify_all();
            if schedule {
                self.pool.submit(Arc::clone(slot));
            }
        }
        self.pool.wait_idle();
        self.pool.shutdown();
    }

    /// Aggregate + per-session observability snapshot.
    ///
    /// Unprefixed names are server-wide: the `sessions_active` gauge (sessions not
    /// yet closed), per-session-summed counters (`samples_pushed`,
    /// `frames_decoded`, `fcs_passes`, …), the total `queue_depth` gauge and the
    /// `samples_per_sec` gauge (aggregate accepted-sample rate since the server
    /// started — wall-clock, so outside the determinism contract). Each session's
    /// full snapshot (counters, stage timings, trace) additionally lands under a
    /// `session.{id}.` prefix, plus its own `session.{id}.queue_depth` gauge.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let slots: Vec<Slot<R, O>> = self.slots.lock().expect("slots poisoned").clone();
        let mut snap = MetricsSnapshot::new();
        let mut active = 0usize;
        let mut total_depth = 0usize;
        let mut total_samples = 0usize;
        for slot in &slots {
            let (depth, closed) = {
                let ingress = slot.ingress.lock().expect("ingress poisoned");
                (ingress.chunks_queued, ingress.closed)
            };
            if !closed {
                active += 1;
            }
            total_depth += depth;
            total_samples += slot.samples_in.load(Ordering::Relaxed);
            let per_session = slot
                .session
                .lock()
                .expect("session poisoned")
                .metrics_snapshot();
            // Aggregate counters (sessions are independent, so sums are exact) …
            for (name, value) in &per_session.counters {
                snap.add_counter(name, *value);
            }
            // … and the full per-session view under its prefix.
            let prefix = format!("session.{}.", slot.id);
            snap.merge_prefixed(&prefix, &per_session);
            snap.set_gauge(&format!("session.{}.queue_depth", slot.id), depth as f64);
        }
        snap.set_gauge("sessions_active", active as f64);
        snap.set_gauge("queue_depth", total_depth as f64);
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            snap.set_gauge("samples_per_sec", total_samples as f64 / elapsed);
        }
        snap
    }
}

impl<R, O> Drop for RxServer<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cheaply cloneable handle to one session inside an [`RxServer`].
///
/// The ingest side ([`push`](Self::push) / [`try_push`](Self::try_push)) and the
/// event side ([`drain_events`](Self::drain_events) / [`poll_event`](Self::poll_event))
/// may live on different threads; events always arrive in the session's
/// stream order.
pub struct SessionHandle<R, O = NoopRecorder>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    slot: Slot<R, O>,
    pool: Arc<WorkerPool<Slot<R, O>>>,
    capacity: usize,
}

impl<R, O> Clone for SessionHandle<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    fn clone(&self) -> Self {
        SessionHandle {
            slot: Arc::clone(&self.slot),
            pool: Arc::clone(&self.pool),
            capacity: self.capacity,
        }
    }
}

impl<R, O> SessionHandle<R, O>
where
    R: FrameReceiver + Send + 'static,
    R::Stream: Send,
    O: Recorder + Send + 'static,
{
    /// Index of this session within its server (also its metrics prefix).
    pub fn id(&self) -> usize {
        self.slot.id
    }

    /// Enqueues one work item, optionally blocking for queue space.
    fn submit(&self, item: WorkItem, block: bool) -> Result<(), PushError> {
        let samples = match &item {
            WorkItem::Chunk(c) => c.len(),
            WorkItem::Flush => 0,
        };
        let is_chunk = matches!(item, WorkItem::Chunk(_));
        let schedule = {
            let mut ingress = self.slot.ingress.lock().expect("ingress poisoned");
            if ingress.closed {
                return Err(PushError::Closed);
            }
            // Control items bypass the capacity bound: they never carry samples and
            // must not deadlock against the very backpressure they resolve.
            while is_chunk && ingress.chunks_queued >= self.capacity {
                if !block {
                    return Err(PushError::Full);
                }
                ingress = self.slot.space.wait(ingress).expect("ingress poisoned");
                if ingress.closed {
                    return Err(PushError::Closed);
                }
            }
            if is_chunk {
                ingress.chunks_queued += 1;
            }
            ingress.queue.push_back(item);
            let schedule = !ingress.scheduled;
            ingress.scheduled = true;
            schedule
        };
        self.slot.samples_in.fetch_add(samples, Ordering::Relaxed);
        if schedule {
            self.pool.submit(Arc::clone(&self.slot));
        }
        Ok(())
    }

    /// Enqueues a chunk, blocking while the session's ingress queue is full.
    /// Fails only with [`PushError::Closed`] after [`RxServer::shutdown`].
    pub fn push(&self, chunk: &[Complex]) -> Result<(), PushError> {
        self.submit(WorkItem::Chunk(chunk.to_vec()), true)
    }

    /// Enqueues a chunk without blocking: [`PushError::Full`] means the bounded
    /// queue is at capacity and **nothing was consumed** — resubmitting the same
    /// chunk later yields the same session output as an unthrottled feed.
    pub fn try_push(&self, chunk: &[Complex]) -> Result<(), PushError> {
        self.submit(WorkItem::Chunk(chunk.to_vec()), false)
    }

    /// Enqueues an end-of-stream flush for this session (the asynchronous
    /// counterpart of [`RxSession::flush`]). The flush takes effect after every
    /// previously accepted chunk; use [`RxServer::drain`] to wait for it.
    pub fn flush(&self) -> Result<(), PushError> {
        self.submit(WorkItem::Flush, false)
    }

    /// Chunks currently waiting in this session's ingress queue.
    pub fn queue_depth(&self) -> usize {
        self.slot
            .ingress
            .lock()
            .expect("ingress poisoned")
            .chunks_queued
    }

    /// Samples accepted so far (including ones still queued).
    pub fn samples_pushed(&self) -> usize {
        self.slot.samples_in.load(Ordering::Relaxed)
    }

    /// Drains every event the session has produced so far, in stream order.
    /// Call [`RxServer::drain`] first for a result covering all accepted chunks.
    pub fn drain_events(&self) -> Vec<RxEvent> {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .drain_events()
    }

    /// Next produced event, if any.
    pub fn poll_event(&self) -> Option<RxEvent> {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .poll_event()
    }

    /// The session's health counters (in lockstep with its event stream).
    pub fn counters(&self) -> SessionCounters {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .counters()
    }

    /// The session's observability snapshot (recorder state + counters), as
    /// [`RxSession::metrics_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.slot
            .session
            .lock()
            .expect("session poisoned")
            .metrics_snapshot()
    }

    /// Takes the session's first fatal error, if one occurred. After an error the
    /// session discards further input (its events up to the error remain
    /// drainable).
    pub fn take_error(&self) -> Option<PhyError> {
        self.slot.error.lock().expect("error poisoned").take()
    }

    /// Runs `f` against the underlying session. The session lock is held for the
    /// duration — keep it short; chunks queue up behind it.
    pub fn with_session<T>(&self, f: impl FnOnce(&RxSession<R, O>) -> T) -> T {
        f(&self.slot.session.lock().expect("session poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::frame::{Mcs, Transmitter};
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use ofdmphy::rx::StandardReceiver;

    fn capture(payload: &[u8]) -> Vec<Complex> {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params);
        let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
        let mut c = vec![Complex::zero(); 300];
        c.extend(tx.build_frame(payload, mcs, 0x5D).unwrap().samples);
        c.extend(vec![Complex::zero(); 300]);
        c
    }

    fn payloads(events: &[RxEvent]) -> Vec<Vec<u8>> {
        events
            .iter()
            .filter_map(|e| match e {
                RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn each_session_decodes_its_own_stream() {
        let server = RxServer::new(ServerConfig {
            threads: 4,
            ..Default::default()
        });
        let bodies: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 40]).collect();
        let handles: Vec<SessionHandle<StandardReceiver>> = bodies
            .iter()
            .map(|_| {
                server.add_session(
                    StandardReceiver::new(OfdmParams::ieee80211ag()),
                    SessionConfig::default(),
                )
            })
            .collect();
        for (h, body) in handles.iter().zip(&bodies) {
            for chunk in capture(body).chunks(333) {
                h.push(chunk).unwrap();
            }
        }
        server.drain();
        for (h, body) in handles.iter().zip(&bodies) {
            assert_eq!(payloads(&h.drain_events()), vec![body.clone()]);
            assert_eq!(h.counters().frames_decoded, 1);
            assert!(h.take_error().is_none());
        }
        assert_eq!(server.sessions(), 4);
    }

    #[test]
    fn shutdown_is_idempotent_and_closes_pushes() {
        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads: 2,
            ..Default::default()
        });
        let h = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        h.push(&capture(b"closing time")).unwrap();
        server.shutdown();
        server.shutdown();
        assert_eq!(h.push(&[Complex::zero(); 8]), Err(PushError::Closed));
        assert_eq!(h.try_push(&[Complex::zero(); 8]), Err(PushError::Closed));
        assert_eq!(payloads(&h.drain_events()), vec![b"closing time".to_vec()]);
    }

    #[test]
    fn server_snapshot_aggregates_and_prefixes() {
        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads: 2,
            ..Default::default()
        });
        let a = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        let b = server.add_session(
            StandardReceiver::new(OfdmParams::ieee80211ag()),
            SessionConfig::default(),
        );
        a.push(&capture(b"aaaa")).unwrap();
        b.push(&capture(b"bbbb")).unwrap();
        server.drain();
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("frames_decoded"), 2);
        assert_eq!(snap.counter("session.0.frames_decoded"), 1);
        assert_eq!(snap.counter("session.1.frames_decoded"), 1);
        assert_eq!(snap.gauge("sessions_active"), Some(2.0));
        assert_eq!(snap.gauge("queue_depth"), Some(0.0));
        assert_eq!(
            snap.counter("samples_pushed"),
            (a.samples_pushed() + b.samples_pushed()) as u64
        );
        server.shutdown();
        assert_eq!(
            server.metrics_snapshot().gauge("sessions_active"),
            Some(0.0)
        );
    }
}
