//! Streaming receiver sessions: chunked sample ingestion over any [`FrameReceiver`].
//!
//! The paper's receiver (§4.3, Algorithm 1) is an online radio pipeline — frames
//! arrive as a continuous sample stream, and the §4.1 interference model is meant to
//! be *updated* as new preambles arrive. [`RxSession`] is that pipeline's top-level
//! API: callers [`push`](RxSession::push) arbitrary-length sample chunks and drain
//! [`RxEvent`]s; the session owns everything per-stream — the incremental
//! Schmidl–Cox detector state ([`ofdmphy::sync::CoarseDetector`]), a carry-over
//! buffer so detection and decoding resume correctly across chunk boundaries, and
//! the receiver's cross-frame state ([`crate::RxStream`]: extraction/decision
//! scratch plus the [`ModelPersistence`]-governed interference model).
//!
//! ```text
//!                 push(&[Complex]) chunks, any length ≥ 0
//!                          │
//!                          ▼
//!        ┌──────────── carry-over buffer (absolute indices) ───────────┐
//!        │                                                             │
//!   Hunting ──plateau──▶ Refining ──SyncResult──▶ Decoding ──────────┐ │
//!   (CoarseDetector,     (wait for LTF search     (wait for exactly  │ │
//!    O(1)/sample,         window + fine-CFO        `needed` samples, │ │
//!    trims buffer)        span, then refine)       then decode)      │ │
//!        ▲                                                           │ │
//!        └──────── FrameDecoded / FalseAlarm: resume hunting ◀───────┘ │
//!        └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Chunk-boundary invariants (the properties `tests/session_equivalence.rs` pins):
//!
//! * the incremental detector performs the same floating-point operations in the
//!   same order as the whole-buffer sweep, so the coarse detection is bit-identical
//!   for every chunking of the same capture;
//! * fine sync only runs once the buffer holds the coarse start plus
//!   [`Synchronizer::refine_lookahead`] samples, so the refined [`SyncResult`] is
//!   bit-identical to a whole-capture [`Synchronizer::detect`];
//! * a decode is only attempted when the buffer can satisfy the receiver's exact
//!   `InsufficientSamples::needed` count, and the final successful decode call sees
//!   the same sample values as a batch `decode_frame` at the same start — so the
//!   decoded frame (PSDU, FCS verdict, every subcarrier decision) is **bit-for-bit**
//!   the batch result, for every chunk size.

use crate::Result;
use obs::{MetricsSnapshot, NoopRecorder, Recorder, TraceEvent};
use ofdmphy::preamble;
use ofdmphy::rx::{FrameReceiver, ModelPersistence, RxFrame};
use ofdmphy::sync::{CoarseDetection, CoarseDetector, SyncResult, Synchronizer};
use ofdmphy::PhyError;
use rfdsp::Complex;
use std::collections::VecDeque;

/// Configuration of one streaming session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// How the receiver's interference model persists across the stream's frames
    /// (ignored by receivers without a model). [`ModelPersistence::PerFrame`] (the
    /// default) retrains per frame and keeps streamed decodes bit-for-bit identical
    /// to batch decodes; [`ModelPersistence::Rolling`] feeds every decoded frame's
    /// LTF segments through the incremental `InterferenceModel::update`.
    pub persistence: ModelPersistence,
    /// Detection threshold on the normalised STF autocorrelation. Defaults to
    /// [`Synchronizer::DEFAULT_THRESHOLD`]; lower it to keep detecting under strong
    /// asynchronous interference, which inflates the energy normaliser (the bursty
    /// stream campaigns run at 0.45).
    pub detection_threshold: f64,
    /// Estimate and remove the carrier frequency offset before decoding each frame.
    /// Off by default: the controlled experiments are CFO-free and the
    /// session≡batch equivalence property compares against uncorrected batch
    /// decodes; enable for captures from unsynchronised radios.
    pub correct_cfo: bool,
    /// Sanity cap on the sample length a detected frame may claim. A detection on a
    /// foreign or corrupted preamble sometimes yields a SIGNAL field that passes its
    /// parity check with a garbage length; without a cap the session head-of-line
    /// blocks waiting for (up to ~110 k) samples of a frame that does not exist. A
    /// detection whose implied length exceeds the cap becomes an
    /// [`RxEvent::FalseAlarm`]. `None` (the default) disables the check; bursty
    /// campaigns set it a little above their longest legitimate frame — a receiver
    /// knows its network's maximum frame duration.
    pub max_frame_samples: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            persistence: ModelPersistence::PerFrame,
            detection_threshold: Synchronizer::DEFAULT_THRESHOLD,
            correct_cfo: false,
            max_frame_samples: None,
        }
    }
}

/// An event produced by an [`RxSession`]. All sample indices are absolute positions
/// in the stream (index 0 = first sample ever pushed).
#[derive(Debug, Clone)]
pub enum RxEvent {
    /// A frame preamble was detected and synchronised; decoding is under way.
    /// `sync.frame_start` is stream-absolute.
    FrameDetected {
        /// The timing/CFO estimate of the detection.
        sync: SyncResult,
    },
    /// A detected frame was fully decoded (the FCS may still have failed — check
    /// [`RxFrame::crc_ok`], which is what the campaigns count).
    FrameDecoded {
        /// The decoded frame.
        frame: Box<RxFrame>,
        /// Stream-absolute index of the frame's first STF sample.
        frame_start: usize,
    },
    /// A detection did not lead to a decodable frame (the SIGNAL field failed to
    /// parse — a noise spike or a colliding transmission); hunting resumed just past
    /// the false plateau.
    FalseAlarm {
        /// Stream-absolute index of the abandoned coarse detection.
        at: usize,
    },
    /// The stream was flushed while a detected frame was still incomplete.
    SyncLost {
        /// Stream-absolute index of the frame (or coarse detection) that was lost.
        at: usize,
    },
}

/// Health counters an [`RxSession`] maintains as events flow, so callers can
/// read stream health without draining (or retaining) the event queue. Each
/// counter is incremented exactly when the corresponding [`RxEvent`] is
/// queued, so the tallies always agree with the drained event stream (a
/// property `tests/obs_equivalence.rs` pins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Preamble detections that reached fine sync ([`RxEvent::FrameDetected`]).
    pub frames_detected: usize,
    /// Frames fully decoded, FCS pass or fail ([`RxEvent::FrameDecoded`]).
    pub frames_decoded: usize,
    /// Decoded frames whose FCS checked out.
    pub fcs_passes: usize,
    /// Decoded frames whose FCS failed (corrupt frames and phantoms).
    pub fcs_failures: usize,
    /// Detections abandoned without a decodable frame ([`RxEvent::FalseAlarm`]).
    pub false_alarms: usize,
    /// Frames lost to a stream flush mid-decode ([`RxEvent::SyncLost`]).
    pub sync_losses: usize,
    /// Decoded frames whose preamble the rolling interference model absorbed
    /// (FCS-passing frames of a [`ModelPersistence::Rolling`] session).
    pub model_absorbs: usize,
    /// Decoded frames the rolling model refused to learn from (FCS failures —
    /// the phantom-poisoning guard). Zero under [`ModelPersistence::PerFrame`].
    pub model_rejects: usize,
}

/// Where the session is in its per-frame state machine.
#[derive(Debug, Clone)]
enum State {
    /// Scanning for an STF plateau with the incremental detector.
    Hunting,
    /// Coarse detection fired; waiting for the fine-sync lookahead to be buffered.
    Refining(CoarseDetection),
    /// Fine sync done; waiting for (exactly) enough samples to decode the frame.
    Decoding {
        sync: SyncResult,
        /// Coarse-detection start, for false-alarm resume.
        coarse: usize,
        /// Stream-absolute sample count the next decode attempt needs (grows as the
        /// receiver reports `InsufficientSamples` for later pipeline stages).
        needed: usize,
    },
}

/// A streaming receiver session over any [`FrameReceiver`].
///
/// The streaming quickstart (mirrored in the README): build a couple of frames with
/// noise gaps, push the capture in arbitrary chunks, drain the decoded frames.
///
/// ```
/// use cprecycle::session::{RxEvent, RxSession};
/// use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
/// use ofdmphy::convcode::CodeRate;
/// use ofdmphy::frame::{Mcs, Transmitter};
/// use ofdmphy::modulation::Modulation;
/// use ofdmphy::params::OfdmParams;
/// use rfdsp::Complex;
///
/// let params = OfdmParams::ieee80211ag();
/// let tx = Transmitter::new(params.clone());
/// let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
///
/// // A bursty capture: noise, frame, gap, frame, noise.
/// let mut capture = vec![Complex::zero(); 400];
/// capture.extend(tx.build_frame(b"first frame", mcs, 0x5D).unwrap().samples);
/// capture.extend(vec![Complex::zero(); 250]);
/// capture.extend(tx.build_frame(b"second frame", mcs, 0x2B).unwrap().samples);
/// capture.extend(vec![Complex::zero(); 400]);
///
/// // Stream it through a session in 480-sample chunks.
/// let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
/// let mut session = RxSession::new(rx);
/// for chunk in capture.chunks(480) {
///     session.push(chunk).unwrap();
/// }
/// session.flush().unwrap();
///
/// let payloads: Vec<Vec<u8>> = session
///     .drain_events()
///     .into_iter()
///     .filter_map(|e| match e {
///         RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
///         _ => None,
///     })
///     .collect();
/// assert_eq!(payloads, vec![b"first frame".to_vec(), b"second frame".to_vec()]);
/// ```
#[derive(Debug)]
pub struct RxSession<R: FrameReceiver, O: Recorder = NoopRecorder> {
    receiver: R,
    sync: Synchronizer,
    config: SessionConfig,
    stream: R::Stream,
    /// Carry-over samples; `buffer[i]` is stream-absolute sample `base + i`.
    buffer: Vec<Complex>,
    /// Stream-absolute index of `buffer[0]`.
    base: usize,
    /// Total samples pushed so far (stream-absolute end of the buffer).
    end: usize,
    detector: CoarseDetector,
    state: State,
    events: VecDeque<RxEvent>,
    counters: SessionCounters,
    obs: O,
}

impl<R: FrameReceiver> RxSession<R> {
    /// A session with the default [`SessionConfig`] and no instrumentation.
    pub fn new(receiver: R) -> Self {
        Self::with_config(receiver, SessionConfig::default())
    }

    /// A session with an explicit configuration and no instrumentation.
    pub fn with_config(receiver: R, config: SessionConfig) -> Self {
        Self::with_recorder(receiver, config, NoopRecorder)
    }
}

impl<R: FrameReceiver, O: Recorder> RxSession<R, O> {
    /// A session whose receive chain emits stage timings into `obs` and whose
    /// [`RxEvent`] flow is mirrored into the recorder's trace ring. Pass a
    /// [`NoopRecorder`] (or use [`RxSession::new`]) for the uninstrumented
    /// pipeline — decodes are bit-for-bit identical either way.
    pub fn with_recorder(receiver: R, config: SessionConfig, obs: O) -> Self {
        let params = receiver.params().clone();
        let sync = Synchronizer::with_threshold(params, config.detection_threshold);
        let stream = receiver.new_stream(config.persistence);
        let detector = sync.coarse_detector(0);
        RxSession {
            receiver,
            sync,
            config,
            stream,
            buffer: Vec::new(),
            base: 0,
            end: 0,
            detector,
            state: State::Hunting,
            events: VecDeque::new(),
            counters: SessionCounters::default(),
            obs,
        }
    }

    /// The recorder this session reports into.
    pub fn recorder(&self) -> &O {
        &self.obs
    }

    /// The receiver driving this session.
    pub fn receiver(&self) -> &R {
        &self.receiver
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The receiver's per-stream state (e.g. `cprecycle::RxStream`, whose rolling
    /// interference model diagnostics can be inspected between pushes).
    pub fn stream(&self) -> &R::Stream {
        &self.stream
    }

    /// Total number of samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.end
    }

    /// Number of frames decoded so far (counting FCS failures).
    pub fn frames_decoded(&self) -> usize {
        self.counters.frames_decoded
    }

    /// Number of preamble detections that reached fine sync so far.
    pub fn frames_detected(&self) -> usize {
        self.counters.frames_detected
    }

    /// Number of detections abandoned as false alarms so far.
    pub fn false_alarms(&self) -> usize {
        self.counters.false_alarms
    }

    /// Number of frames lost to a mid-decode flush so far.
    pub fn sync_losses(&self) -> usize {
        self.counters.sync_losses
    }

    /// Number of decoded frames whose FCS failed so far.
    pub fn fcs_failures(&self) -> usize {
        self.counters.fcs_failures
    }

    /// All health counters at once.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Freezes this session's health into a [`MetricsSnapshot`]: the recorder's
    /// stage timings and trace (when one is attached) overlaid with the session
    /// counters. With a [`NoopRecorder`] the snapshot carries the counters only.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.snapshot().unwrap_or_default();
        snap.add_counter("samples_pushed", self.end as u64);
        let c = &self.counters;
        snap.add_counter("frames_detected", c.frames_detected as u64);
        snap.add_counter("frames_decoded", c.frames_decoded as u64);
        snap.add_counter("fcs_passes", c.fcs_passes as u64);
        snap.add_counter("fcs_failures", c.fcs_failures as u64);
        snap.add_counter("false_alarms", c.false_alarms as u64);
        snap.add_counter("sync_losses", c.sync_losses as u64);
        snap.add_counter("session_model_absorbs", c.model_absorbs as u64);
        snap.add_counter("session_model_rejects", c.model_rejects as u64);
        snap
    }

    /// Queues an event for the caller, keeping the health counters in lockstep
    /// and mirroring the event into the recorder's structured trace.
    fn queue_event(&mut self, event: RxEvent) {
        match &event {
            RxEvent::FrameDetected { sync } => {
                self.counters.frames_detected += 1;
                self.obs.trace(TraceEvent::new(
                    "frame_detected",
                    sync.frame_start as u64,
                    0,
                ));
            }
            RxEvent::FrameDecoded { frame, frame_start } => {
                self.counters.frames_decoded += 1;
                let rolling = self.config.persistence == ModelPersistence::Rolling;
                if frame.crc_ok {
                    self.counters.fcs_passes += 1;
                    if rolling {
                        self.counters.model_absorbs += 1;
                    }
                } else {
                    self.counters.fcs_failures += 1;
                    if rolling {
                        self.counters.model_rejects += 1;
                    }
                }
                self.obs.trace(TraceEvent::new(
                    "frame_decoded",
                    *frame_start as u64,
                    frame.crc_ok as i64,
                ));
            }
            RxEvent::FalseAlarm { at } => {
                self.counters.false_alarms += 1;
                self.obs
                    .trace(TraceEvent::new("false_alarm", *at as u64, 0));
            }
            RxEvent::SyncLost { at } => {
                self.counters.sync_losses += 1;
                self.obs.trace(TraceEvent::new("sync_lost", *at as u64, 0));
            }
        }
        self.events.push_back(event);
    }

    /// Next queued event, if any.
    pub fn poll_event(&mut self) -> Option<RxEvent> {
        self.events.pop_front()
    }

    /// Drains every queued event.
    pub fn drain_events(&mut self) -> Vec<RxEvent> {
        self.events.drain(..).collect()
    }

    /// Number of events queued and not yet drained. Handle-friendly: a server can
    /// poll readiness without taking the events themselves.
    pub fn events_queued(&self) -> usize {
        self.events.len()
    }

    /// Ingests one chunk of samples (any length, including empty) and advances the
    /// state machine as far as the buffered stream allows, queueing events.
    ///
    /// Errors are *fatal* misconfigurations (e.g. a decision stage that needs a genie
    /// waveform no stream can carry); recoverable conditions — short buffers,
    /// unparseable SIGNAL fields — are handled internally as waiting or
    /// [`RxEvent::FalseAlarm`].
    pub fn push(&mut self, chunk: &[Complex]) -> Result<()> {
        self.buffer.extend_from_slice(chunk);
        self.end += chunk.len();
        self.advance(false)
    }

    /// Declares the end of the stream: runs the state machine best-effort on what is
    /// buffered (a frame whose tail never arrived becomes [`RxEvent::SyncLost`]) and
    /// resets to hunting at the stream end, so a later `push` starts a fresh scan.
    ///
    /// End-of-stream semantics, pinned by `flush_*` regression tests:
    ///
    /// * **Partially buffered frame** (any length short of the decode's `needed`
    ///   watermark, including one shorter than [`SessionConfig::max_frame_samples`]):
    ///   exactly one [`RxEvent::SyncLost`] is queued for the pending detection —
    ///   a truncated frame is a loss, never a [`RxEvent::FalseAlarm`]. A coarse
    ///   detection still awaiting fine sync (even one whose preamble never fully
    ///   arrived) is reported the same way, at its coarse start.
    /// * **Completable work first**: anything the buffered samples *can* finish —
    ///   frames wholly buffered but not yet decoded because a previous decode was
    ///   pending — decodes normally before the loss is assessed.
    /// * **Idempotence**: `flush` resets to hunting at the stream end, so a second
    ///   `flush` (with no intervening [`push`](Self::push)) queues nothing, and
    ///   [`drain_events`](Self::drain_events) after it returns empty — callers may
    ///   treat `flush(); drain_events()` as an idempotent end-of-stream step.
    /// * **Reusability**: the session survives its stream's end; later pushes scan
    ///   fresh samples with the same cross-frame state (a Rolling model keeps what
    ///   it learned).
    pub fn flush(&mut self) -> Result<()> {
        self.advance(true)?;
        match &self.state {
            State::Hunting => {}
            State::Refining(d) => {
                let at = d.start;
                self.queue_event(RxEvent::SyncLost { at });
            }
            State::Decoding { sync, .. } => {
                let at = sync.frame_start;
                self.queue_event(RxEvent::SyncLost { at });
            }
        }
        self.resume_hunting_at(self.end);
        Ok(())
    }

    /// Restarts plateau hunting at stream-absolute position `at` and drops buffered
    /// samples that can no longer matter.
    fn resume_hunting_at(&mut self, at: usize) {
        let at = at.max(self.base).min(self.end);
        self.detector = self.sync.coarse_detector(at);
        self.state = State::Hunting;
        self.discard_before(at);
    }

    /// Drops buffer contents before stream-absolute index `cut`.
    fn discard_before(&mut self, cut: usize) {
        let cut = cut.max(self.base).min(self.end);
        let rel = cut - self.base;
        if rel > 0 {
            self.buffer.drain(..rel);
            self.base = cut;
        }
    }

    /// Runs the state machine until it needs more samples.
    fn advance(&mut self, flushing: bool) -> Result<()> {
        loop {
            match self.state.clone() {
                State::Hunting => {
                    let mut fired = None;
                    while self.detector.position() < self.end {
                        let rel = self.detector.position() - self.base;
                        if let Some(d) = self.detector.push(self.buffer[rel]) {
                            fired = Some(d);
                            break;
                        }
                    }
                    match fired {
                        Some(d) => {
                            self.state = State::Refining(d);
                            // Fine timing may place the frame start slightly before
                            // the coarse plateau (the LTF search spans ±24); keep a
                            // little history behind it.
                            self.discard_before(d.start.saturating_sub(32));
                        }
                        None => {
                            // Steady-state hunting: only the detector's lookback can
                            // still matter.
                            self.discard_before(self.end.saturating_sub(
                                self.detector.lookback() + self.sync.refine_lookahead(),
                            ));
                            return Ok(());
                        }
                    }
                }
                State::Refining(d) => {
                    let have_lookahead = self.end >= d.start + self.sync.refine_lookahead();
                    if !have_lookahead && !flushing {
                        return Ok(());
                    }
                    let params = self.receiver.params();
                    let min_len = preamble::preamble_len(params) + params.symbol_len();
                    if flushing && self.end < d.start + min_len {
                        // Not even a whole preamble arrived; flush() reports the loss.
                        return Ok(());
                    }
                    let rel = CoarseDetection {
                        start: d.start - self.base,
                        metric: d.metric,
                    };
                    let refined = self.sync.refine(&self.buffer, rel)?;
                    let sync = SyncResult {
                        frame_start: refined.frame_start + self.base,
                        ..refined
                    };
                    self.queue_event(RxEvent::FrameDetected { sync });
                    self.receiver.begin_frame(&mut self.stream);
                    self.state = State::Decoding {
                        sync,
                        coarse: d.start,
                        needed: sync.frame_start,
                    };
                }
                State::Decoding {
                    sync,
                    coarse,
                    needed,
                } => {
                    if self.end < needed && !flushing {
                        return Ok(());
                    }
                    match self.try_decode(&sync) {
                        Ok(frame) => {
                            let params = self.receiver.params();
                            let frame_len = frame.info.frame_sample_len(params);
                            let crc_ok = frame.crc_ok;
                            self.queue_event(RxEvent::FrameDecoded {
                                frame: Box::new(frame),
                                frame_start: sync.frame_start,
                            });
                            if crc_ok {
                                self.resume_hunting_at(sync.frame_start + frame_len);
                            } else {
                                // An FCS failure can be a genuinely corrupt frame —
                                // or a *phantom*: a false detection whose SIGNAL
                                // field happened to parse. Trusting a phantom's
                                // claimed length would swallow the real frame hiding
                                // behind it, so resume just past this detection's
                                // own STF instead.
                                let resume = self.resume_past_stf(sync.frame_start);
                                self.resume_hunting_at(resume);
                            }
                        }
                        Err(PhyError::InsufficientSamples { needed: n, .. }) => {
                            // `n` is relative to the buffer slice handed to the
                            // receiver; translate to a stream-absolute watermark.
                            let needed_abs = self.base + n;
                            if self
                                .config
                                .max_frame_samples
                                .is_some_and(|cap| needed_abs - sync.frame_start > cap)
                            {
                                // The SIGNAL field claimed an implausibly long frame
                                // (a parity fluke on a foreign/corrupt preamble):
                                // treat as a false alarm instead of head-of-line
                                // blocking the stream on samples that never come.
                                self.queue_event(RxEvent::FalseAlarm { at: coarse });
                                let resume = self.resume_past_stf(coarse);
                                self.resume_hunting_at(resume);
                                continue;
                            }
                            if flushing || needed_abs <= self.end {
                                // The stream ended (flush() reports the loss), or the
                                // receiver asked for samples we already have — the
                                // latter would loop forever, so surface it.
                                if !flushing {
                                    return Err(PhyError::InsufficientSamples {
                                        needed: n,
                                        available: self.end - self.base,
                                    });
                                }
                                return Ok(());
                            }
                            self.state = State::Decoding {
                                sync,
                                coarse,
                                needed: needed_abs,
                            };
                            return Ok(());
                        }
                        Err(PhyError::DecodeFailure(_)) => {
                            // The SIGNAL field did not parse: a false plateau or a
                            // colliding transmission. Resume scanning past this
                            // detection's plateau.
                            self.queue_event(RxEvent::FalseAlarm { at: coarse });
                            let resume = self.resume_past_stf(coarse);
                            self.resume_hunting_at(resume);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Where hunting resumes after abandoning a detection anchored at `anchor` (the
    /// coarse start of a false alarm, or the refined frame start of a CRC-failed
    /// possibly-phantom frame): past that detection's own STF plateau. Resuming any
    /// closer would re-fire on the same ~`stf_len` plateau and re-run fine sync plus
    /// a (model-training) decode attempt once per small hop — several-fold wasted
    /// work per leaked interferer preamble. A *distinct* later frame's STF is
    /// untouched by the skip; a preamble overlapping the abandoned one was a
    /// collision this detection could not have recovered anyway.
    fn resume_past_stf(&self, anchor: usize) -> usize {
        let params = self.receiver.params();
        anchor + preamble::stf_len(params) - preamble::stf_period(params)
    }

    /// One decode attempt of the frame at `sync` against the current buffer.
    fn try_decode(&mut self, sync: &SyncResult) -> Result<RxFrame> {
        let rel_start = sync.frame_start - self.base;
        if self.config.correct_cfo && sync.cfo_hz != 0.0 {
            // Rotate a copy of the frame's samples so the correction's phase
            // reference is the frame start, then decode at offset 0 and translate
            // any `needed` count back to buffer coordinates. The copy spans the
            // buffered tail and is redone per retry — acceptable while CFO
            // correction is an opt-in for real captures; cache the rotated prefix
            // if this ever sits on a hot path.
            let mut corrected = self.buffer[rel_start..].to_vec();
            self.sync.correct_cfo(&mut corrected, sync.cfo_hz);
            self.receiver
                .decode_stream_observed(&mut self.stream, &corrected, 0, None, &self.obs)
                .map_err(|e| match e {
                    PhyError::InsufficientSamples { needed, available } => {
                        PhyError::InsufficientSamples {
                            needed: needed + rel_start,
                            available: available + rel_start,
                        }
                    }
                    other => other,
                })
        } else {
            self.receiver.decode_stream_observed(
                &mut self.stream,
                &self.buffer,
                rel_start,
                None,
                &self.obs,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpRecycleConfig, CpRecycleReceiver};
    use ofdmphy::convcode::CodeRate;
    use ofdmphy::frame::{Mcs, Transmitter};
    use ofdmphy::modulation::Modulation;
    use ofdmphy::params::OfdmParams;
    use ofdmphy::rx::StandardReceiver;
    use rand::SeedableRng;
    use wirelesschan::awgn::AwgnChannel;
    use wirelesschan::impairments::apply_cfo;

    fn mcs() -> Mcs {
        Mcs::new(Modulation::Qpsk, CodeRate::Half)
    }

    fn noisy_capture(
        payloads: &[&[u8]],
        gaps: &[usize],
        snr_db: f64,
        seed: u64,
    ) -> (Vec<Complex>, Vec<usize>) {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = rfdsp::noise::GaussianSource::new();
        let mut frames = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            frames.push(tx.build_frame(p, mcs(), 0x5D - i as u8).unwrap());
        }
        let power = rfdsp::power::signal_power(&frames[0].samples).unwrap();
        let noise_var = power / rfdsp::power::db_to_lin(snr_db);
        let mut capture = g.complex_vector(&mut rng, gaps[0], noise_var);
        let mut starts = Vec::new();
        for (frame, gap) in frames.iter().zip(gaps[1..].iter()) {
            starts.push(capture.len());
            capture.extend_from_slice(&frame.samples);
            capture.extend(g.complex_vector(&mut rng, *gap, noise_var));
        }
        let mut chan = AwgnChannel::new();
        chan.add_noise_variance(&mut rng, &mut capture, noise_var)
            .unwrap();
        (capture, starts)
    }

    fn decoded_payloads(events: &[RxEvent]) -> Vec<Vec<u8>> {
        events
            .iter()
            .filter_map(|e| match e {
                RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_frame_is_decoded_for_any_chunk_size() {
        let (capture, _) = noisy_capture(&[&[0xA5; 80]], &[400, 300], 28.0, 1);
        for chunk in [1usize, 7, 64, 480, capture.len()] {
            let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
            let mut session = RxSession::new(rx);
            for c in capture.chunks(chunk) {
                session.push(c).unwrap();
            }
            let events = session.drain_events();
            assert_eq!(
                decoded_payloads(&events),
                vec![vec![0xA5u8; 80]],
                "chunk {chunk}"
            );
            assert_eq!(session.frames_decoded(), 1);
        }
    }

    #[test]
    fn multi_frame_capture_recovers_all_frames_in_order() {
        let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i.wrapping_mul(37) + 1; 60]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let (capture, starts) = noisy_capture(&refs, &[350, 220, 140, 260], 28.0, 2);
        for chunk in [7usize, 480] {
            let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
            let mut session = RxSession::new(rx);
            for c in capture.chunks(chunk) {
                session.push(c).unwrap();
            }
            session.flush().unwrap();
            let events = session.drain_events();
            assert_eq!(decoded_payloads(&events), payloads, "chunk {chunk}");
            // Detections land within CP tolerance of the true starts, in order.
            let detected: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    RxEvent::FrameDetected { sync } => Some(sync.frame_start),
                    _ => None,
                })
                .collect();
            assert_eq!(detected.len(), 3);
            for (d, s) in detected.iter().zip(&starts) {
                assert!(
                    (*d as isize - *s as isize).abs() <= 8,
                    "detected {d}, true {s}"
                );
            }
        }
    }

    #[test]
    fn standard_receiver_sessions_work_too() {
        let (capture, _) = noisy_capture(&[&[0x42; 60]], &[500, 250], 28.0, 3);
        let rx = StandardReceiver::new(OfdmParams::ieee80211ag());
        let mut session = RxSession::new(rx);
        for c in capture.chunks(333) {
            session.push(c).unwrap();
        }
        assert_eq!(
            decoded_payloads(&session.drain_events()),
            vec![vec![0x42u8; 60]]
        );
    }

    #[test]
    fn noise_only_stream_stays_silent_and_flush_is_clean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut g = rfdsp::noise::GaussianSource::new();
        let noise = g.complex_vector(&mut rng, 4000, 1.0);
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        for c in noise.chunks(256) {
            session.push(c).unwrap();
        }
        session.flush().unwrap();
        assert!(session.drain_events().is_empty());
        // The carry-over buffer stays bounded while hunting.
        assert!(session.buffer.len() < 1024);
    }

    #[test]
    fn flush_mid_frame_reports_sync_lost() {
        let (capture, starts) = noisy_capture(&[&[0x5A; 120]], &[300, 200], 30.0, 5);
        // Cut the capture in the middle of the frame's DATA symbols.
        let cut = starts[0] + 700;
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        session.push(&capture[..cut]).unwrap();
        session.flush().unwrap();
        let events = session.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::FrameDetected { .. })));
        assert!(events.iter().any(|e| matches!(e, RxEvent::SyncLost { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, RxEvent::FrameDecoded { .. })));
        // The session remains usable: stream the full capture afterwards.
        session.push(&capture).unwrap();
        session.flush().unwrap();
        assert_eq!(decoded_payloads(&session.drain_events()).len(), 1);
    }

    #[test]
    fn flush_is_idempotent_and_drain_after_flush_returns_empty() {
        let (capture, starts) = noisy_capture(&[&[0x11; 80]], &[300, 200], 30.0, 11);
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        // Truncate mid-frame so flush has a loss to report.
        session.push(&capture[..starts[0] + 600]).unwrap();
        session.flush().unwrap();
        let first = session.drain_events();
        assert_eq!(
            first
                .iter()
                .filter(|e| matches!(e, RxEvent::SyncLost { .. }))
                .count(),
            1,
            "exactly one SyncLost for the one pending detection"
        );
        let counters = session.counters();
        // Repeated flushes with no new samples queue nothing and move no counter.
        for _ in 0..3 {
            session.flush().unwrap();
            assert_eq!(session.events_queued(), 0);
            assert!(session.drain_events().is_empty());
            assert_eq!(session.counters(), counters);
        }
    }

    #[test]
    fn flush_of_partial_frame_below_length_cap_is_sync_lost_not_false_alarm() {
        // A frame well under `max_frame_samples` whose tail never arrives: the cap
        // logic (which turns implausibly long claims into FalseAlarm) must not
        // misfire — a plausible-but-truncated frame is a SyncLost.
        let (capture, starts) = noisy_capture(&[&[0x33; 80]], &[300, 200], 30.0, 12);
        let frame_len = capture.len() - 300 - 200;
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::with_config(
            rx,
            SessionConfig {
                max_frame_samples: Some(frame_len + 512),
                ..Default::default()
            },
        );
        session.push(&capture[..starts[0] + 900]).unwrap();
        session.flush().unwrap();
        let events = session.drain_events();
        assert!(events.iter().any(|e| matches!(e, RxEvent::SyncLost { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, RxEvent::FalseAlarm { .. })));
        assert_eq!(session.counters().sync_losses, 1);
        assert_eq!(session.counters().false_alarms, 0);
    }

    #[test]
    fn flush_with_partial_preamble_reports_loss_at_coarse_start() {
        // End the stream while fine sync is still waiting for its lookahead: the
        // coarse detection (state `Refining`) is reported lost at its own start.
        let (capture, starts) = noisy_capture(&[&[0x44; 80]], &[300, 200], 30.0, 13);
        let params = OfdmParams::ieee80211ag();
        let cut = starts[0] + preamble::preamble_len(&params) - 8;
        let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        session.push(&capture[..cut]).unwrap();
        session.flush().unwrap();
        let events = session.drain_events();
        let lost: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                RxEvent::SyncLost { at } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(lost.len(), 1);
        assert!(
            (lost[0] as isize - starts[0] as isize).abs() <= 32,
            "loss at {} vs true start {}",
            lost[0],
            starts[0]
        );
        assert!(!events
            .iter()
            .any(|e| matches!(e, RxEvent::FrameDecoded { .. })));
    }

    #[test]
    fn flush_decodes_a_wholly_buffered_frame_before_assessing_loss() {
        // The entire frame is buffered when flush runs: it must decode, not be
        // reported lost, and the session must end back in hunting.
        let (capture, _) = noisy_capture(&[&[0x55; 80]], &[300, 4], 30.0, 14);
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::new(rx);
        session.push(&capture).unwrap();
        session.flush().unwrap();
        let events = session.drain_events();
        assert_eq!(decoded_payloads(&events), vec![vec![0x55u8; 80]]);
        assert!(!events.iter().any(|e| matches!(e, RxEvent::SyncLost { .. })));
    }

    #[test]
    fn cfo_correction_recovers_an_offset_frame() {
        let params = OfdmParams::ieee80211ag();
        let tx = Transmitter::new(params.clone());
        let payload = vec![0x77u8; 60];
        let frame = tx.build_frame(&payload, mcs(), 0x5D).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut g = rfdsp::noise::GaussianSource::new();
        let power = rfdsp::power::signal_power(&frame.samples).unwrap();
        let noise_var = power / rfdsp::power::db_to_lin(30.0);
        let mut body = frame.samples.clone();
        apply_cfo(&mut body, 80_000.0, 20e6).unwrap();
        let mut capture = g.complex_vector(&mut rng, 400, noise_var);
        capture.extend(body);
        capture.extend(g.complex_vector(&mut rng, 300, noise_var));
        let mut chan = AwgnChannel::new();
        chan.add_noise_variance(&mut rng, &mut capture, noise_var)
            .unwrap();

        let rx = CpRecycleReceiver::new(params, CpRecycleConfig::default());
        let mut session = RxSession::with_config(
            rx,
            SessionConfig {
                correct_cfo: true,
                ..Default::default()
            },
        );
        for c in capture.chunks(480) {
            session.push(c).unwrap();
        }
        session.flush().unwrap();
        let payloads = decoded_payloads(&session.drain_events());
        assert_eq!(payloads, vec![payload]);
    }

    #[test]
    fn rolling_session_grows_the_model_across_frames() {
        let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i + 1; 60]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let (capture, _) = noisy_capture(&refs, &[400, 200, 200, 200], 28.0, 7);
        let rx = CpRecycleReceiver::new(OfdmParams::ieee80211ag(), CpRecycleConfig::default());
        let mut session = RxSession::with_config(
            rx,
            SessionConfig {
                persistence: ModelPersistence::Rolling,
                ..Default::default()
            },
        );
        for c in capture.chunks(480) {
            session.push(c).unwrap();
        }
        session.flush().unwrap();
        assert_eq!(decoded_payloads(&session.drain_events()), payloads);
        // Three frames × two LTF symbols each accumulated into one model.
        assert_eq!(session.stream().model().unwrap().num_preambles(), 6);
    }
}
