//! The fixed-sphere maximum-likelihood decoder (paper §4.2, Eq. 5).
//!
//! For each data subcarrier the decoder receives `P` segment observations. It:
//!
//! 1. computes their **centroid** (average of real and imaginary parts),
//! 2. restricts the search to lattice points within a **fixed sphere** of radius `R`
//!    around the centroid (falling back to the nearest lattice point when the sphere is
//!    empty, so the decoder never fails outright),
//! 3. scores every candidate by the sum over segments of the log-likelihood from the
//!    per-subcarrier interference model (the product of Eq. 5 in log domain) and picks
//!    the maximum.

use crate::interference_model::InterferenceModel;
use crate::segments::SymbolSegments;
use ofdmphy::modulation::Modulation;
use rfdsp::stats::centroid;
use rfdsp::Complex;

/// The fixed-sphere ML decoder for one modulation order.
#[derive(Debug, Clone)]
pub struct FixedSphereMlDecoder {
    modulation: Modulation,
    /// Sphere radius in absolute constellation units.
    radius: f64,
    /// The full lattice (cached constellation) searched by the decoder.
    constellation: Vec<(Complex, Vec<u8>)>,
}

impl FixedSphereMlDecoder {
    /// Creates a decoder for `modulation` with sphere radius expressed as a multiple of
    /// the constellation's minimum distance (the paper's `R`, made scale-free so one
    /// setting works across modulations).
    pub fn new(modulation: Modulation, radius_min_distances: f64) -> Self {
        let radius = radius_min_distances.max(0.0) * modulation.min_distance();
        FixedSphereMlDecoder {
            modulation,
            radius,
            constellation: modulation.constellation(),
        }
    }

    /// The modulation this decoder searches over.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// The absolute sphere radius in constellation units.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The candidate lattice points within the sphere centred at the centroid of
    /// `observations` (paper Fig. 6c). Falls back to the single nearest lattice point
    /// when the sphere is empty.
    pub fn candidates(&self, observations: &[Complex]) -> Vec<(Complex, Vec<u8>)> {
        let center = centroid(observations).unwrap_or(Complex::zero());
        let inside: Vec<(Complex, Vec<u8>)> = self
            .constellation
            .iter()
            .filter(|(p, _)| (*p - center).norm() <= self.radius)
            .cloned()
            .collect();
        if inside.is_empty() {
            let (p, bits) = self.modulation.nearest_point(center);
            vec![(p, bits)]
        } else {
            inside
        }
    }

    /// Decodes one subcarrier: returns the ML lattice point and its bits.
    ///
    /// * `bin` — the FFT bin index (selects the per-subcarrier interference model).
    /// * `observations` — the `P` segment values of this subcarrier.
    pub fn decode_subcarrier(
        &self,
        model: &InterferenceModel,
        bin: usize,
        observations: &[Complex],
    ) -> (Complex, Vec<u8>) {
        let candidates = self.candidates(observations);
        let mut best = candidates[0].clone();
        let mut best_score = f64::NEG_INFINITY;
        for (point, bits) in candidates {
            let score: f64 = observations
                .iter()
                .map(|obs| model.log_likelihood(bin, *obs, point))
                .sum();
            if score > best_score {
                best_score = score;
                best = (point, bits);
            }
        }
        best
    }

    /// Decodes a whole symbol: for every FFT bin in `bins` (increasing order), the
    /// decoder reads that bin's `P` observations straight from the extracted
    /// segments — a contiguous, allocation-free slice in the bin-major layout — and
    /// returns the decided lattice points in the same order, ready for the shared
    /// `ofdmphy` bit pipeline.
    pub fn decode_symbol(
        &self,
        model: &InterferenceModel,
        segments: &SymbolSegments,
        bins: &[usize],
    ) -> Vec<Complex> {
        bins.iter()
            .map(|&bin| {
                self.decode_subcarrier(model, bin, segments.bin_observations(bin))
                    .0
            })
            .collect()
    }

    /// Average number of lattice points inside the sphere over the given subcarriers —
    /// a complexity diagnostic (the quantity the fixed sphere is meant to keep small).
    pub fn mean_search_space(&self, segments: &SymbolSegments, bins: &[usize]) -> f64 {
        if bins.is_empty() {
            return 0.0;
        }
        let total: usize = bins
            .iter()
            .map(|&bin| self.candidates(segments.bin_observations(bin)).len())
            .sum();
        total as f64 / bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpRecycleConfig;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sphere_radius_scales_with_modulation() {
        let qpsk = FixedSphereMlDecoder::new(Modulation::Qpsk, 1.5);
        let qam64 = FixedSphereMlDecoder::new(Modulation::Qam64, 1.5);
        assert!(qpsk.radius() > qam64.radius());
        assert_eq!(qpsk.modulation(), Modulation::Qpsk);
    }

    #[test]
    fn candidates_within_sphere_only() {
        let dec = FixedSphereMlDecoder::new(Modulation::Qam16, 1.0);
        // Observations clustered near one corner point.
        let corner = Modulation::Qam16
            .points()
            .into_iter()
            .max_by(|a, b| a.norm().partial_cmp(&b.norm()).unwrap())
            .unwrap();
        let obs = vec![corner; 4];
        let cands = dec.candidates(&obs);
        // All candidates lie within R of the corner, so the search space is much smaller
        // than the full 16-point constellation.
        assert!(!cands.is_empty());
        assert!(cands.len() <= 4, "sphere too large: {}", cands.len());
        for (p, _) in &cands {
            assert!((*p - corner).norm() <= dec.radius() + 1e-12);
        }
    }

    #[test]
    fn empty_sphere_falls_back_to_nearest_point() {
        let dec = FixedSphereMlDecoder::new(Modulation::Qpsk, 0.01);
        // Centroid far away from every lattice point.
        let obs = vec![Complex::new(10.0, 10.0); 3];
        let cands = dec.candidates(&obs);
        assert_eq!(cands.len(), 1);
        let nearest = Modulation::Qpsk.nearest_point(Complex::new(10.0, 10.0)).0;
        assert!((cands[0].0 - nearest).norm() < 1e-12);
    }

    #[test]
    fn fallback_model_decodes_by_distance() {
        // With no trained model the log-likelihood falls back to a distance penalty, so
        // the decoder behaves like a robust nearest-point decision on the centroid.
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(Modulation::Qpsk, 2.0);
        for (point, bits) in Modulation::Qpsk.constellation() {
            let obs = vec![point, point, point + Complex::new(0.05, -0.02)];
            let (decided, decided_bits) = dec.decode_subcarrier(&model, 1, &obs);
            assert!((decided - point).norm() < 1e-12);
            assert_eq!(decided_bits, bits);
        }
    }

    #[test]
    fn corrupted_segments_do_not_fool_the_ml_decoder() {
        // The scenario where the naive decoder fails (§3.3): the transmitted BPSK point
        // is +1; two segments observe it cleanly and three are hit by an interference
        // vector of amplitude ≈ 3.1. The interference model — trained on a preamble that
        // experienced the same per-segment interference statistics — has density mass at
        // deviation amplitudes ≈ 0 and ≈ 3.1 but not at ≈ 2 (the distance to the wrong
        // lattice point), so the ML decoder keeps the correct decision while the naive
        // average-distance decoder flips.
        use crate::segments::SymbolSegments;
        use ofdmphy::ofdm::OfdmEngine;
        use ofdmphy::params::OfdmParams;

        let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
        let bin = engine.params().data_bins()[10];
        let reference_value = Complex::new(1.0, 0.0);
        let mut reference = vec![Complex::zero(); 64];
        reference[bin] = reference_value;
        // Synthetic preamble segments: 5 segments, two clean, three interfered with an
        // amplitude-≈3.1 error vector at assorted phases.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut values = Vec::new();
        for j in 0..5 {
            let mut seg = vec![Complex::zero(); 64];
            let noise = Complex::new(rng.gen::<f64>() * 0.02, rng.gen::<f64>() * 0.02);
            let interference = match j {
                0 | 1 => Complex::zero(),
                2 => Complex::from_polar(3.1, 2.8),
                3 => Complex::from_polar(3.15, -3.0),
                _ => Complex::from_polar(3.05, 3.05),
            };
            seg[bin] = reference_value + interference + noise;
            values.push(seg);
        }
        let segments = SymbolSegments::from_rows(values);
        let model = InterferenceModel::train(
            &engine,
            &[segments],
            &[reference],
            CpRecycleConfig::default(),
        )
        .unwrap();

        // Data-symbol observations with the same structure, transmitted point = +1:
        // three segments pushed to ≈ −2.1 (error amplitude ≈ 3.1), two clean.
        let obs = vec![
            Complex::new(1.02, 0.01),
            Complex::new(0.99, -0.02),
            Complex::new(-2.1, 0.15),
            Complex::new(-2.05, -0.1),
            Complex::new(-2.12, 0.05),
        ];
        let dec = FixedSphereMlDecoder::new(Modulation::Bpsk, 6.0);
        let (decided, _) = dec.decode_subcarrier(&model, bin, &obs);
        assert!(
            (decided - Complex::new(1.0, 0.0)).norm() < 1e-9,
            "ML decoder should resist the corrupted majority, got {decided}"
        );
        // The naive decoder is fooled on the same input (cross-check of the paper's
        // motivating example).
        let (naive_decision, _) = crate::naive::decode_subcarrier(&obs, Modulation::Bpsk);
        assert!((naive_decision - Complex::new(-1.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn decode_symbol_and_search_space() {
        use crate::segments::SymbolSegments;
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(Modulation::Qam16, 1.0);
        let points = Modulation::Qam16.points();
        // Three segments whose bin `i + 1` all observe constellation point `i`.
        let row: Vec<Complex> = (0..64)
            .map(|bin| {
                if (1..=8).contains(&bin) {
                    points[bin - 1]
                } else {
                    Complex::zero()
                }
            })
            .collect();
        let segments = SymbolSegments::from_rows(vec![row.clone(), row.clone(), row]);
        let bins: Vec<usize> = (1..=8).collect();
        let decided = dec.decode_symbol(&model, &segments, &bins);
        assert_eq!(decided.len(), 8);
        for (d, p) in decided.iter().zip(points.iter().take(8)) {
            assert!((*d - *p).norm() < 1e-12);
        }
        let mean_space = dec.mean_search_space(&segments, &bins);
        assert!((1.0..16.0).contains(&mean_space));
        assert_eq!(dec.mean_search_space(&segments, &[]), 0.0);
    }
}
