//! The fixed-sphere maximum-likelihood decoder (paper §4.2, Eq. 5).
//!
//! For each data subcarrier the decoder receives `P` segment observations. It:
//!
//! 1. computes their **centroid** (average of real and imaginary parts),
//! 2. restricts the search to lattice points within a **fixed sphere** of radius `R`
//!    around the centroid (falling back to the nearest lattice point when the sphere is
//!    empty, so the decoder never fails outright),
//! 3. scores every candidate by the sum over segments of the log-likelihood from the
//!    per-subcarrier interference model (the product of Eq. 5 in log domain) and picks
//!    the maximum.
//!
//! The decoder implements [`SubcarrierDecoder`] over the cached
//! [`Modulation::lattice`] table: candidates are `u16` lattice indices accumulated in
//! the shared [`DecoderScratch`], so the whole search — enumeration, scoring, argmax —
//! performs **zero heap allocations** after the scratch has warmed up (previously
//! every candidate of every bin of every symbol cloned a `(Complex, Vec<u8>)` pair).

use crate::decision::{DecoderScratch, LatticePoint, SubcarrierDecoder};
use crate::interference_model::{deviation, InterferenceModel};
use crate::segments::SymbolSegments;
use ofdmphy::modulation::{Lattice, Modulation};
use rfdsp::stats::centroid;
use rfdsp::Complex;

/// The fixed-sphere ML decoder for one modulation order, bound to the interference
/// model trained from the current frame's preamble.
#[derive(Debug, Clone, Copy)]
pub struct FixedSphereMlDecoder<'m> {
    model: &'m InterferenceModel,
    modulation: Modulation,
    /// Sphere radius in absolute constellation units.
    radius: f64,
    lattice: &'static Lattice,
}

impl<'m> FixedSphereMlDecoder<'m> {
    /// Creates a decoder for `modulation` with sphere radius expressed as a multiple of
    /// the constellation's minimum distance (the paper's `R`, made scale-free so one
    /// setting works across modulations). Construction is cheap — the lattice table is
    /// process-wide and the model is borrowed — so the receiver builds one per frame.
    pub fn new(
        model: &'m InterferenceModel,
        modulation: Modulation,
        radius_min_distances: f64,
    ) -> Self {
        let radius = radius_min_distances.max(0.0) * modulation.min_distance();
        FixedSphereMlDecoder {
            model,
            modulation,
            radius,
            lattice: modulation.lattice(),
        }
    }

    /// The absolute sphere radius in constellation units.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Enumerates the candidate lattice indices within the sphere centred at the
    /// centroid of `observations` (paper Fig. 6c) into the scratch buffer and returns
    /// them. Falls back to the single nearest lattice point when the sphere is empty.
    pub fn candidates<'s>(
        &self,
        observations: &[Complex],
        scratch: &'s mut DecoderScratch,
    ) -> &'s [u16] {
        self.enumerate_candidates(observations, scratch);
        &scratch.candidates
    }

    fn enumerate_candidates(&self, observations: &[Complex], scratch: &mut DecoderScratch) {
        scratch.prepare(self.modulation);
        let center = centroid(observations).unwrap_or(Complex::zero());
        for (i, point) in self.lattice.points().iter().enumerate() {
            if (*point - center).norm() <= self.radius {
                scratch.candidates.push(i as u16);
            }
        }
        if scratch.candidates.is_empty() {
            scratch.candidates.push(self.lattice.nearest_index(center));
        }
    }

    /// Average number of lattice points inside the sphere over the given subcarriers —
    /// a complexity diagnostic (the quantity the fixed sphere is meant to keep small).
    pub fn mean_search_space(
        &self,
        segments: &SymbolSegments,
        bins: &[usize],
        scratch: &mut DecoderScratch,
    ) -> f64 {
        if bins.is_empty() {
            return 0.0;
        }
        let total: usize = bins
            .iter()
            .map(|&bin| {
                self.candidates(segments.bin_observations(bin), scratch)
                    .len()
            })
            .sum();
        total as f64 / bins.len() as f64
    }
}

impl SubcarrierDecoder for FixedSphereMlDecoder<'_> {
    fn modulation(&self) -> Modulation {
        self.modulation
    }

    fn decide(
        &self,
        bin: usize,
        observations: &[Complex],
        scratch: &mut DecoderScratch,
    ) -> LatticePoint {
        self.enumerate_candidates(observations, scratch);
        // Batched scoring: hoist every candidate/observation deviation into
        // candidate-major planes, score them all with ONE estimator call (the
        // lane-parallel batch path), then reduce per candidate. The per-candidate sum
        // iterates observations in the same order as the old per-query loop, so
        // scores are unchanged wherever the batch path is bit-for-bit (grid f64,
        // Gaussian, fallback) and within 1e-9 elsewhere.
        let p = observations.len();
        scratch.dev_amp.clear();
        scratch.dev_phase.clear();
        let total = scratch.candidates.len() * p;
        scratch.dev_amp.reserve(total);
        scratch.dev_phase.reserve(total);
        for &index in &scratch.candidates {
            let point = self.lattice.point(index);
            for obs in observations {
                let (amplitude, phase) = deviation(*obs, point);
                scratch.dev_amp.push(amplitude);
                scratch.dev_phase.push(phase);
            }
        }
        scratch.log_likes.clear();
        scratch.log_likes.resize(total, 0.0);
        self.model.log_likelihood_batch(
            bin,
            &scratch.dev_amp,
            &scratch.dev_phase,
            &mut scratch.log_likes,
        );
        for chunk in scratch.log_likes.chunks_exact(p) {
            scratch.scores.push(chunk.iter().sum());
        }
        // First strict maximum wins, so ties keep the earliest (lowest-index)
        // candidate — the pre-trait decoder's behaviour, pinned bit-for-bit by the
        // decision_equivalence property tests.
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (k, &score) in scratch.scores.iter().enumerate() {
            if score > best_score {
                best_score = score;
                best = k;
            }
        }
        let index = scratch.candidates[best];
        LatticePoint {
            index,
            value: self.lattice.point(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpRecycleConfig;
    use crate::decision::NaiveCentroidDecoder;
    use rand::{Rng, SeedableRng};

    fn scratch() -> DecoderScratch {
        DecoderScratch::new()
    }

    #[test]
    fn sphere_radius_scales_with_modulation() {
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let qpsk = FixedSphereMlDecoder::new(&model, Modulation::Qpsk, 1.5);
        let qam64 = FixedSphereMlDecoder::new(&model, Modulation::Qam64, 1.5);
        assert!(qpsk.radius() > qam64.radius());
        assert_eq!(qpsk.modulation(), Modulation::Qpsk);
    }

    #[test]
    fn candidates_within_sphere_only() {
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(&model, Modulation::Qam16, 1.0);
        // Observations clustered near one corner point.
        let corner = Modulation::Qam16
            .points()
            .into_iter()
            .max_by(|a, b| a.norm().partial_cmp(&b.norm()).unwrap())
            .unwrap();
        let obs = vec![corner; 4];
        let mut s = scratch();
        let cands = dec.candidates(&obs, &mut s);
        // All candidates lie within R of the corner, so the search space is much smaller
        // than the full 16-point constellation.
        assert!(!cands.is_empty());
        assert!(cands.len() <= 4, "sphere too large: {}", cands.len());
        let lattice = Modulation::Qam16.lattice();
        for &i in cands {
            assert!((lattice.point(i) - corner).norm() <= dec.radius() + 1e-12);
        }
    }

    #[test]
    fn empty_sphere_falls_back_to_nearest_point() {
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(&model, Modulation::Qpsk, 0.01);
        // Centroid far away from every lattice point.
        let obs = vec![Complex::new(10.0, 10.0); 3];
        let mut s = scratch();
        let cands = dec.candidates(&obs, &mut s).to_vec();
        assert_eq!(cands.len(), 1);
        let nearest = Modulation::Qpsk.nearest_point(Complex::new(10.0, 10.0)).0;
        assert!((Modulation::Qpsk.lattice().point(cands[0]) - nearest).norm() < 1e-12);
    }

    #[test]
    fn fallback_model_decodes_by_distance() {
        // With no trained model the log-likelihood falls back to a distance penalty, so
        // the decoder behaves like a robust nearest-point decision on the centroid.
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(&model, Modulation::Qpsk, 2.0);
        let mut s = scratch();
        for (point, bits) in Modulation::Qpsk.constellation() {
            let obs = vec![point, point, point + Complex::new(0.05, -0.02)];
            let decided = dec.decide(1, &obs, &mut s);
            assert!((decided.value - point).norm() < 1e-12);
            assert_eq!(decided.bits(Modulation::Qpsk), &bits[..]);
        }
    }

    #[test]
    fn corrupted_segments_do_not_fool_the_ml_decoder() {
        // The scenario where the naive decoder fails (§3.3): the transmitted BPSK point
        // is +1; two segments observe it cleanly and three are hit by an interference
        // vector of amplitude ≈ 3.1. The interference model — trained on a preamble that
        // experienced the same per-segment interference statistics — has density mass at
        // deviation amplitudes ≈ 0 and ≈ 3.1 but not at ≈ 2 (the distance to the wrong
        // lattice point), so the ML decoder keeps the correct decision while the naive
        // average-distance decoder flips.
        use crate::segments::SymbolSegments;
        use ofdmphy::ofdm::OfdmEngine;
        use ofdmphy::params::OfdmParams;

        let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
        let bin = engine.params().data_bins()[10];
        let reference_value = Complex::new(1.0, 0.0);
        let mut reference = vec![Complex::zero(); 64];
        reference[bin] = reference_value;
        // Synthetic preamble segments: 5 segments, two clean, three interfered with an
        // amplitude-≈3.1 error vector at assorted phases.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut values = Vec::new();
        for j in 0..5 {
            let mut seg = vec![Complex::zero(); 64];
            let noise = Complex::new(rng.gen::<f64>() * 0.02, rng.gen::<f64>() * 0.02);
            let interference = match j {
                0 | 1 => Complex::zero(),
                2 => Complex::from_polar(3.1, 2.8),
                3 => Complex::from_polar(3.15, -3.0),
                _ => Complex::from_polar(3.05, 3.05),
            };
            seg[bin] = reference_value + interference + noise;
            values.push(seg);
        }
        let segments = SymbolSegments::from_rows(values);
        let model = InterferenceModel::train(
            &engine,
            &[segments],
            &[reference],
            CpRecycleConfig::default(),
        )
        .unwrap();

        // Data-symbol observations with the same structure, transmitted point = +1:
        // three segments pushed to ≈ −2.1 (error amplitude ≈ 3.1), two clean.
        let obs = vec![
            Complex::new(1.02, 0.01),
            Complex::new(0.99, -0.02),
            Complex::new(-2.1, 0.15),
            Complex::new(-2.05, -0.1),
            Complex::new(-2.12, 0.05),
        ];
        let dec = FixedSphereMlDecoder::new(&model, Modulation::Bpsk, 6.0);
        let mut s = scratch();
        let decided = dec.decide(bin, &obs, &mut s);
        assert!(
            (decided.value - Complex::new(1.0, 0.0)).norm() < 1e-9,
            "ML decoder should resist the corrupted majority, got {}",
            decided.value
        );
        // The naive decoder is fooled on the same input (cross-check of the paper's
        // motivating example).
        let naive = NaiveCentroidDecoder::new(Modulation::Bpsk).decide(bin, &obs, &mut s);
        assert!((naive.value - Complex::new(-1.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn decode_symbol_and_search_space() {
        use crate::segments::SymbolSegments;
        let model = InterferenceModel::new(64, CpRecycleConfig::default());
        let dec = FixedSphereMlDecoder::new(&model, Modulation::Qam16, 1.0);
        let points = Modulation::Qam16.points();
        // Three segments whose bin `i + 1` all observe constellation point `i`.
        let row: Vec<Complex> = (0..64)
            .map(|bin| {
                if (1..=8).contains(&bin) {
                    points[bin - 1]
                } else {
                    Complex::zero()
                }
            })
            .collect();
        let segments = SymbolSegments::from_rows(vec![row.clone(), row.clone(), row]);
        let bins: Vec<usize> = (1..=8).collect();
        let mut s = scratch();
        let decided = dec.decide_symbol(&segments, &bins, &mut s);
        assert_eq!(decided.len(), 8);
        for (d, p) in decided.iter().zip(points.iter().take(8)) {
            assert!((*d - *p).norm() < 1e-12);
        }
        let mean_space = dec.mean_search_space(&segments, &bins, &mut s);
        assert!((1.0..16.0).contains(&mean_space));
        assert_eq!(dec.mean_search_space(&segments, &[], &mut s), 0.0);
    }
}
