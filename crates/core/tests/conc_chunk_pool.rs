//! Model-check suite for [`cprecycle::chunk_pool::ChunkPool`] recycling races.
//!
//! Built and run **only** under `--cfg cprecycle_conc`
//! (`RUSTFLAGS="--cfg cprecycle_conc" cargo test -p cprecycle --test
//! conc_chunk_pool`); the `cprecycle_engine::sync` facade then routes the
//! pool's freelist ring and stat counters through the `conc` instrumented
//! shims, so every bounded interleaving of acquire/release is explored.
//!
//! The initialization contract under test (see the `PooledBuf` docs): a
//! recycled buffer re-enters the freelist with `len == 0` and only its
//! *capacity* preserved, so an acquire that wins a recycled buffer carries
//! exactly the new chunk — never a stale sample from the previous trip —
//! and the miss path's `Vec::with_capacity` + `extend_from_slice` never
//! reads uninitialized memory.
#![cfg(cprecycle_conc)]

use std::sync::Arc;

use conc::Builder;
use cprecycle::chunk_pool::ChunkPool;
use cprecycle_engine::sync::thread as cthread;
use rfdsp::Complex;

/// Bounded-exhaustive exploration (loom/CHESS-style): every interleaving
/// with at most 2 involuntary preemptions. Unbounded, the three-way release
/// races here exceed the schedule cap without adding coverage beyond what
/// the bound explores.
fn model_bounded(f: impl Fn() + Send + Sync + 'static) {
    match Builder::new().max_preemptions(2).check(f) {
        Ok(report) => assert!(
            report.complete,
            "bounded exploration must exhaust its space: {report:?}"
        ),
        Err(failure) => panic!("model check failed: {failure}"),
    }
}

fn chunk(n: usize, tag: f64) -> Vec<Complex> {
    (0..n).map(|i| Complex::new(i as f64, tag)).collect()
}

fn assert_carries(buf: &[Complex], n: usize, tag: f64) {
    assert_eq!(buf.len(), n, "buffer carries exactly the live chunk");
    for (i, s) in buf.iter().enumerate() {
        assert_eq!(
            *s,
            Complex::new(i as f64, tag),
            "sample {i} is from this chunk, not a previous occupant"
        );
    }
}

#[test]
fn pool_racing_acquirers_get_disjoint_exact_buffers() {
    // One recycled buffer in the freelist, two racing acquirers: exactly one
    // of the concurrent try_pops can win it (the other misses and
    // allocates) — unless the winner's release laps back in time for the
    // loser, which is also legal. Either way each acquirer's buffer carries
    // exactly its own chunk.
    model_bounded(|| {
        let pool = Arc::new(ChunkPool::new(4, 8));
        let seed = pool.acquire(&chunk(2, 0.5));
        pool.release(seed);
        let racers: Vec<_> = (0..2usize)
            .map(|t| {
                let pool = Arc::clone(&pool);
                cthread::spawn(move || {
                    let tag = 1.0 + t as f64;
                    let buf = pool.acquire(&chunk(3, tag));
                    assert_carries(&buf, 3, tag);
                    pool.release(buf);
                })
            })
            .collect();
        for r in racers {
            r.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 3, "every acquire is a hit or a miss");
        assert!(s.hits >= 1, "the seeded buffer is won by some acquirer");
        assert_eq!(s.recycled, 3, "all three releases fit the freelist");
        assert_eq!(s.dropped, 0);
    });
}

#[test]
fn pool_recycle_race_never_leaks_stale_data() {
    // A release racing an acquire: the acquirer either hits the in-flight
    // recycled buffer or misses and allocates. The len-0 recycling contract
    // means a hit can never surface the releaser's old samples.
    model_bounded(|| {
        let pool = Arc::new(ChunkPool::new(4, 8));
        let buf0 = pool.acquire(&chunk(4, 9.0)); // miss; carries tag-9 data
        let p2 = Arc::clone(&pool);
        let releaser = cthread::spawn(move || {
            p2.release(buf0);
        });
        let p3 = Arc::clone(&pool);
        let acquirer = cthread::spawn(move || {
            let buf = p3.acquire(&chunk(2, 2.0));
            assert_carries(&buf, 2, 2.0);
            p3.release(buf);
        });
        releaser.join().unwrap();
        acquirer.join().unwrap();
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 2, "initial acquire plus the racer");
        assert_eq!(s.recycled, 2, "both buffers returned to the freelist");
        assert_eq!(s.dropped, 0);
        // A hit recycles buf0 itself, so the freelist converges to one buffer;
        // a miss leaves two distinct buffers. Exact in every interleaving:
        assert_eq!(pool.free_buffers(), 2 - s.hits as usize);
    });
}

#[test]
fn pool_retention_bound_holds_under_racing_releases() {
    // Three concurrent releases into a max_buffers=2 freelist: the ring's
    // capacity check admits exactly two in every schedule; the third is
    // dropped, never silently retained past the bound.
    model_bounded(|| {
        let pool = Arc::new(ChunkPool::new(2, 4));
        let a = pool.acquire(&chunk(4, 1.0));
        let b = pool.acquire(&chunk(4, 2.0));
        let c = pool.acquire(&chunk(4, 3.0));
        let releasers: Vec<_> = [a, b]
            .into_iter()
            .map(|buf| {
                let pool = Arc::clone(&pool);
                cthread::spawn(move || pool.release(buf))
            })
            .collect();
        pool.release(c);
        for r in releasers {
            r.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.recycled, 2, "freelist admits exactly max_buffers");
        assert_eq!(s.dropped, 1, "the overflow release is dropped, not leaked");
        assert_eq!(
            pool.free_buffers(),
            2,
            "retention bound exact after the race"
        );
    });
}
