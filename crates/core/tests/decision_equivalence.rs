//! Property tests for the decision-stage refactor (the tentpole invariant of the
//! `SubcarrierDecoder` port): across random observation sets, every modulation and
//! every valid segment count `P ∈ {1..C+1}`, the trait-based decoders must agree
//! **bit-for-bit** with the pre-refactor implementations (reproduced here verbatim as
//! reference code), the sphere path must never reallocate its candidate buffers after
//! warm-up, and a `DecisionStage::Standard` receiver must match a `P = 1` sphere
//! receiver frame-for-frame.

use cprecycle::decision::{
    DecoderScratch, NaiveCentroidDecoder, StandardNearestDecoder, SubcarrierDecoder,
};
use cprecycle::segments::SymbolSegments;
use cprecycle::{
    CpRecycleConfig, CpRecycleReceiver, DecisionStage, FixedSphereMlDecoder, InterferenceModel,
    SegmentScratch,
};
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rfdsp::stats::centroid;
use rfdsp::Complex;
use wirelesschan::awgn::AwgnChannel;

const ALL_MODULATIONS: [Modulation; 5] = [
    Modulation::Bpsk,
    Modulation::Qpsk,
    Modulation::Qam16,
    Modulation::Qam64,
    Modulation::Qam256,
];

/// The pre-refactor sphere decoder (`FixedSphereMlDecoder::decode_subcarrier` before
/// the trait port), reproduced verbatim: per-call candidate `Vec` with cloned
/// `(point, bits)` pairs, nearest-point fallback, max-log-likelihood scan.
fn reference_sphere_decode(
    model: &InterferenceModel,
    modulation: Modulation,
    radius_min_distances: f64,
    bin: usize,
    observations: &[Complex],
) -> (Complex, Vec<u8>) {
    let radius = radius_min_distances.max(0.0) * modulation.min_distance();
    let constellation = modulation.constellation();
    let center = centroid(observations).unwrap_or(Complex::zero());
    let inside: Vec<(Complex, Vec<u8>)> = constellation
        .iter()
        .filter(|(p, _)| (*p - center).norm() <= radius)
        .cloned()
        .collect();
    let candidates = if inside.is_empty() {
        let (p, bits) = modulation.nearest_point(center);
        vec![(p, bits)]
    } else {
        inside
    };
    let mut best = candidates[0].clone();
    let mut best_score = f64::NEG_INFINITY;
    for (point, bits) in candidates {
        let score: f64 = observations
            .iter()
            .map(|obs| model.log_likelihood(bin, *obs, point))
            .sum();
        if score > best_score {
            best_score = score;
            best = (point, bits);
        }
    }
    best
}

/// The pre-refactor naive decoder (`naive::decode_subcarrier`), reproduced verbatim.
fn reference_naive_decode(observations: &[Complex], modulation: Modulation) -> (Complex, Vec<u8>) {
    let mut best_point = Complex::zero();
    let mut best_bits = Vec::new();
    let mut best_metric = f64::INFINITY;
    for (point, bits) in modulation.constellation() {
        let metric: f64 = observations.iter().map(|o| (*o - point).norm()).sum();
        if metric < best_metric {
            best_metric = metric;
            best_point = point;
            best_bits = bits;
        }
    }
    (best_point, best_bits)
}

/// Random observation clusters: a transmitted lattice point plus noise, with a
/// fraction of segments hit by a strong interference vector — the shape the decoders
/// actually see, spanning both the "sphere around the cluster" and the empty-sphere
/// fallback regimes.
fn random_observations<R: Rng>(rng: &mut R, modulation: Modulation, p: usize) -> Vec<Complex> {
    let points = modulation.points();
    let tx = points[rng.gen_range(0..points.len())];
    (0..p)
        .map(|_| {
            let noise = Complex::new(rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1));
            let interference = if rng.gen_range(0..3) == 0 {
                Complex::from_polar(rng.gen_range(0.0..4.0), rng.gen_range(-3.1..3.1))
            } else {
                Complex::zero()
            };
            tx + noise + interference
        })
        .collect()
}

/// A model trained on synthetic per-bin deviation samples so the KDE scoring path
/// (not just the untrained fallback) is exercised.
fn trained_model(engine: &OfdmEngine, seed: u64) -> InterferenceModel {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let reference: Vec<Complex> = (0..64)
        .map(|bin| {
            if engine.params().occupied_bins().contains(&bin) {
                Complex::new(1.0, 0.0)
            } else {
                Complex::zero()
            }
        })
        .collect();
    let rows: Vec<Vec<Complex>> = (0..6)
        .map(|_| {
            reference
                .iter()
                .map(|r| {
                    if r.norm_sqr() == 0.0 {
                        Complex::zero()
                    } else {
                        *r + Complex::from_polar(rng.gen_range(0.0..2.0), rng.gen_range(-3.1..3.1))
                    }
                })
                .collect()
        })
        .collect();
    InterferenceModel::train(
        engine,
        &[SymbolSegments::from_rows(rows)],
        &[reference],
        CpRecycleConfig::default(),
    )
    .expect("synthetic training succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Trait-based sphere decisions are bit-for-bit the pre-refactor decisions for
    /// every modulation and every valid `P ∈ {1..C+1}`, through both the trained-KDE
    /// and the empty-sphere/fallback paths.
    #[test]
    fn sphere_trait_matches_reference_bit_for_bit(seed in any::<u64>(), radius in 0.0f64..4.0) {
        let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
        let model = trained_model(&engine, seed);
        let bin = engine.params().data_bins()[10];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD1CE);
        let mut scratch = DecoderScratch::new();
        for modulation in ALL_MODULATIONS {
            let decoder = FixedSphereMlDecoder::new(&model, modulation, radius);
            for p in 1..=engine.params().cp_len + 1 {
                let obs = random_observations(&mut rng, modulation, p);
                let decided = decoder.decide(bin, &obs, &mut scratch);
                let (ref_point, ref_bits) =
                    reference_sphere_decode(&model, modulation, radius, bin, &obs);
                prop_assert_eq!(
                    decided.value, ref_point,
                    "{:?} P {} radius {}", modulation, p, radius
                );
                prop_assert_eq!(decided.bits(modulation), &ref_bits[..]);
            }
        }
    }

    /// Trait-based naive decisions are bit-for-bit the pre-refactor
    /// `naive::decode_subcarrier` decisions.
    #[test]
    fn naive_trait_matches_reference_bit_for_bit(seed in any::<u64>()) {
        let params = OfdmParams::ieee80211ag();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut scratch = DecoderScratch::new();
        for modulation in ALL_MODULATIONS {
            let decoder = NaiveCentroidDecoder::new(modulation);
            for p in 1..=params.cp_len + 1 {
                let obs = random_observations(&mut rng, modulation, p);
                let decided = decoder.decide(0, &obs, &mut scratch);
                let (ref_point, ref_bits) = reference_naive_decode(&obs, modulation);
                prop_assert_eq!(decided.value, ref_point, "{:?} P {}", modulation, p);
                prop_assert_eq!(decided.bits(modulation), &ref_bits[..]);
            }
        }
    }

    /// Trait-based standard-window decisions are bit-for-bit
    /// `Modulation::nearest_point` on the last segment (the conventional receiver's
    /// decision).
    #[test]
    fn standard_trait_matches_nearest_point_bit_for_bit(seed in any::<u64>()) {
        let params = OfdmParams::ieee80211ag();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut scratch = DecoderScratch::new();
        for modulation in ALL_MODULATIONS {
            let decoder = StandardNearestDecoder::new(modulation);
            for p in 1..=params.cp_len + 1 {
                let obs = random_observations(&mut rng, modulation, p);
                let decided = decoder.decide(0, &obs, &mut scratch);
                let (ref_point, ref_bits) = modulation.nearest_point(*obs.last().unwrap());
                prop_assert_eq!(decided.value, ref_point, "{:?} P {}", modulation, p);
                prop_assert_eq!(decided.bits(modulation), &ref_bits[..]);
            }
        }
    }
}

/// Regression for the old per-candidate allocation bug: across a 1000-symbol sphere
/// decode (including empty-sphere fallbacks), the candidate buffer must warm up once
/// and never reallocate again.
#[test]
fn sphere_candidate_buffer_never_reallocates_across_1000_symbols() {
    let engine = OfdmEngine::new(OfdmParams::ieee80211ag());
    let model = InterferenceModel::new(64, CpRecycleConfig::default());
    let modulation = Modulation::Qam16;
    let decoder = FixedSphereMlDecoder::new(&model, modulation, 1.0);
    let data_bins = engine.params().data_bins();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let mut scratch = DecoderScratch::new();

    // Warm-up symbol: sizes the buffers to the full lattice.
    let warmup = symbol_for(&mut rng, modulation, 4);
    decoder.decide_symbol(&warmup, &data_bins, &mut scratch);
    let capacity = scratch.candidate_capacity();
    assert!(
        capacity >= modulation.num_points(),
        "warm-up must reserve the full lattice, got {capacity}"
    );

    for _ in 0..999 {
        let segments = symbol_for(&mut rng, modulation, 4);
        let decided = decoder.decide_symbol(&segments, &data_bins, &mut scratch);
        assert_eq!(decided.len(), data_bins.len());
        assert_eq!(
            scratch.candidate_capacity(),
            capacity,
            "candidate buffer reallocated mid-campaign"
        );
    }
}

fn symbol_for(rng: &mut rand::rngs::StdRng, modulation: Modulation, p: usize) -> SymbolSegments {
    let rows: Vec<Vec<Complex>> = (0..p)
        .map(|_| {
            (0..64)
                .map(|_| {
                    // A mix of tight clusters and far-out observations so both the
                    // populated-sphere and the nearest-point fallback paths run.
                    let points = modulation.points();
                    let tx = points[rng.gen_range(0..points.len())];
                    let offset = if rng.gen_range(0..8) == 0 {
                        Complex::new(10.0, 10.0)
                    } else {
                        Complex::new(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2))
                    };
                    tx + offset
                })
                .collect()
        })
        .collect();
    SymbolSegments::from_rows(rows)
}

/// `DecisionStage::Standard` is the conventional decision; with one segment the sphere
/// stage sees a single observation whose centroid is the observation itself, so the
/// two receivers must decode identical frames (same PSDU, same FCS verdict) across
/// noisy captures — the decision-stage counterpart of the `P = 1` ≡ standard-receiver
/// regression in `segment_equivalence.rs`.
#[test]
fn standard_stage_matches_single_segment_sphere_decode() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let standard_rx = CpRecycleReceiver::new(
        params.clone(),
        CpRecycleConfig::with_decision(DecisionStage::Standard),
    );
    let sphere_p1_rx =
        CpRecycleReceiver::new(params, CpRecycleConfig::builder().num_segments(1).build());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
    let mut awgn = AwgnChannel::new();
    let mut scratch = SegmentScratch::new();
    for (trial, mcs) in Mcs::paper_set().iter().take(3).enumerate() {
        let payload: Vec<u8> = (0..100).map(|_| rng.gen()).collect();
        let frame = tx.build_frame(&payload, *mcs, 0x5D).unwrap();
        let mut noisy = frame.samples.clone();
        awgn.add_noise_snr(&mut rng, &mut noisy, 22.0).unwrap();
        let a = standard_rx
            .decode_frame_scratch(&noisy, 0, None, &mut scratch)
            .unwrap();
        let b = sphere_p1_rx
            .decode_frame_scratch(&noisy, 0, None, &mut scratch)
            .unwrap();
        assert_eq!(a.psdu, b.psdu, "trial {trial}: PSDU diverged");
        assert_eq!(a.crc_ok, b.crc_ok, "trial {trial}");
        assert_eq!(a.payload, b.payload, "trial {trial}");
    }
}
