//! Property tests for the pluggable interference-estimator subsystem (the tentpole
//! invariants of the estimator refactor):
//!
//! * `GridKde` tracks `ExactKde`: over random sample sets, bandwidths and query
//!   points inside the grid, the precomputed log-likelihood agrees with the exact
//!   kernel sum to a tolerance that scales with how deep into the tails the query
//!   sits (the decisive region near the density peak is tight; valleys between
//!   well-separated modes — where curvature can exceed the grid resolution — are
//!   proportionally looser, exactly the regions the ML argmax never hinges on);
//! * the far tail is finite and **strictly ordered** for both backends, so distant
//!   lattice candidates never tie (the old linear-domain floor collapsed them);
//! * incremental `update()` (dirty-bin refit after each preamble) produces a model
//!   **bit-for-bit identical** to batch `train()` on the same preambles, for every
//!   backend.

use cprecycle::estimator::{
    EstimatorState, ExactKdeEstimator, GridKdeEstimator, InterferenceEstimator, ModelBackend,
};
use cprecycle::segments::{extract_segments, SymbolSegments};
use cprecycle::{CpRecycleConfig, InterferenceModel};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rfdsp::kde::{GridKde2d, GridSpec, ProductKde2d};
use rfdsp::Complex;

fn engine() -> OfdmEngine {
    OfdmEngine::new(OfdmParams::ieee80211ag())
}

/// Synthetic preamble segment sets with per-bin interference of varying strength.
fn synthetic_preambles(seed: u64, num_preambles: usize, p: usize) -> Vec<SymbolSegments> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let e = engine();
    let reference = preamble::ltf_bins(e.params());
    (0..num_preambles)
        .map(|_| {
            let rows: Vec<Vec<Complex>> = (0..p)
                .map(|_| {
                    reference
                        .iter()
                        .map(|r| {
                            if r.norm_sqr() == 0.0 {
                                Complex::zero()
                            } else {
                                *r + Complex::from_polar(
                                    rng.gen_range(0.0..1.5),
                                    rng.gen_range(-3.1..3.1),
                                )
                            }
                        })
                        .collect()
                })
                .collect();
            SymbolSegments::from_rows(rows)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grid-vs-exact agreement over random samples, bandwidths and query points.
    #[test]
    fn grid_matches_exact_within_tolerance(
        seed in any::<u64>(),
        n in 4usize..48,
        bw_a in 0.05f64..0.4,
        bw_p in 0.2f64..1.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..2.0), rng.gen_range(-3.1f64..3.1)))
            .collect();
        let kde = ProductKde2d::with_bandwidths(&samples, bw_a, bw_p).unwrap();
        let spec = GridSpec {
            points_per_bandwidth: 6.0,
            max_points_per_axis: 512,
            margin_bandwidths: 4.0,
        };
        let grid = GridKde2d::build(&kde, &spec).unwrap();
        // The decisive region: the exact log density at the best-covered sample.
        let peak = samples
            .iter()
            .map(|(a, p)| kde.log_eval(*a, *p))
            .fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..32 {
            let a = rng.gen_range(0.0..2.0);
            let p = rng.gen_range(-3.1f64..3.1);
            let exact = kde.log_eval(a, p);
            let approx = grid.log_eval(a, p);
            // Tight near the peak, proportionally looser deep in the tails where the
            // log density is dominated by a single distant kernel and the argmax
            // never looks.
            let tol = 0.05 + 0.05 * (peak - exact).max(0.0);
            prop_assert!(
                (exact - approx).abs() <= tol,
                "query ({a}, {p}): exact {exact}, grid {approx}, tol {tol}"
            );
        }
    }

    /// Far-tail queries stay finite and strictly ordered for both backends.
    #[test]
    fn far_tails_stay_strictly_ordered(seed in any::<u64>(), n in 1usize..24) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(-3.0f64..3.0)))
            .collect();
        let kde = ProductKde2d::with_bandwidths(&samples, 0.05, 0.2).unwrap();
        let grid = GridKde2d::build(&kde, &GridSpec::default()).unwrap();
        let mut prev_exact = f64::INFINITY;
        let mut prev_grid = f64::INFINITY;
        for k in 0..20 {
            let a = 2.0 + k as f64 * 1.5;
            let exact = kde.log_eval(a, 0.5);
            let approx = grid.log_eval(a, 0.5);
            prop_assert!(exact.is_finite() && approx.is_finite());
            prop_assert!(exact < prev_exact, "exact tail must strictly decrease");
            prop_assert!(approx < prev_grid, "grid tail must strictly decrease");
            prev_exact = exact;
            prev_grid = approx;
        }
    }

    /// Incremental dirty-bin updates reproduce batch training bit-for-bit.
    #[test]
    fn incremental_update_equals_batch_training(
        seed in any::<u64>(),
        num_preambles in 2usize..5,
        p in 2usize..17,
    ) {
        let e = engine();
        let reference = preamble::ltf_bins(e.params());
        let preambles = synthetic_preambles(seed, num_preambles, p);
        let references = vec![reference.clone(); num_preambles];
        for backend in [
            ModelBackend::ExactKde,
            ModelBackend::GridKde,
            ModelBackend::Gaussian,
        ] {
            let config = CpRecycleConfig::with_model(backend);
            let batch = InterferenceModel::train(&e, &preambles, &references, config).unwrap();
            let mut incremental =
                InterferenceModel::train(&e, &preambles[..1], &references[..1], config).unwrap();
            for pre in &preambles[1..] {
                incremental.update(&e, pre, &reference).unwrap();
            }
            prop_assert_eq!(batch.num_preambles(), incremental.num_preambles());
            // Every occupied bin scores identically, bit for bit, across a spread of
            // (observation, candidate) queries.
            for bin in e.params().data_bins() {
                prop_assert_eq!(batch.num_samples(bin), incremental.num_samples(bin));
                for k in 0..6 {
                    let obs = Complex::new(1.0 + 0.4 * k as f64, 0.2 * k as f64 - 0.5);
                    let cand = Complex::new(if k % 2 == 0 { 1.0 } else { -1.0 }, 0.0);
                    let b = batch.log_likelihood(bin, obs, cand);
                    let i = incremental.log_likelihood(bin, obs, cand);
                    prop_assert_eq!(
                        b.to_bits(),
                        i.to_bits(),
                        "backend {:?} bin {} query {}: batch {} vs incremental {}",
                        backend, bin, k, b, i
                    );
                }
            }
        }
    }
}

/// Dirty-bin tracking at the estimator level: updating with a preamble that only
/// covers some bins refits exactly those bins.
#[test]
fn update_refits_only_bins_that_received_samples() {
    let e = engine();
    let mut reference = preamble::ltf_bins(e.params());
    let preambles = synthetic_preambles(7, 1, 9);
    let refs = vec![reference.clone()];
    let config = CpRecycleConfig::default();
    let mut model = InterferenceModel::train(&e, &preambles[..1], &refs, config).unwrap();

    // Second preamble carries nothing on half the data bins (reference zeroed), so
    // those bins must keep their exact pre-update densities.
    let data_bins = e.params().data_bins();
    let (covered, skipped) = data_bins.split_at(data_bins.len() / 2);
    for &bin in skipped {
        reference[bin] = Complex::zero();
    }
    let before: Vec<f64> = skipped
        .iter()
        .map(|&bin| model.log_likelihood(bin, Complex::new(1.3, 0.2), Complex::one()))
        .collect();
    let next = synthetic_preambles(8, 1, 9);
    model.update(&e, &next[0], &reference).unwrap();
    for (&bin, &b) in skipped.iter().zip(&before) {
        assert_eq!(
            model.num_samples(bin),
            9,
            "skipped bin {bin} absorbed samples"
        );
        let after = model.log_likelihood(bin, Complex::new(1.3, 0.2), Complex::one());
        assert_eq!(b.to_bits(), after.to_bits(), "skipped bin {bin} was refit");
    }
    for &bin in covered {
        assert_eq!(
            model.num_samples(bin),
            18,
            "covered bin {bin} missed samples"
        );
    }
}

/// The trait's default `train` and the backends' direct use agree with the model path
/// on real extracted segments (the receiver's LTF framing).
#[test]
fn backends_agree_with_model_dispatch_on_real_segments() {
    use ofdmphy::chanest::ChannelEstimate;
    let e = engine();
    let ltf = preamble::generate_ltf(e.params());
    let est = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
    let reference = preamble::ltf_bins(e.params());
    let segs = extract_segments(&e, &ltf[16..96], &est, 9).unwrap();
    let config = CpRecycleConfig::default();
    let model = InterferenceModel::train(
        &e,
        std::slice::from_ref(&segs),
        std::slice::from_ref(&reference),
        config,
    )
    .unwrap();
    assert_eq!(model.backend(), ModelBackend::ExactKde);

    // Rebuild the same fit through the standalone backends.
    let mut exact = ExactKdeEstimator::new(64);
    let mut grid = GridKdeEstimator::new(64);
    let mut samples = vec![cprecycle::estimator::BinSamples::default(); 64];
    for bin in e.params().occupied_bins() {
        if reference[bin].norm_sqr() == 0.0 {
            continue;
        }
        for obs in segs.bin_observations(bin) {
            let (a, p) = cprecycle::interference_model::deviation(*obs, reference[bin]);
            samples[bin].push(a, p);
        }
    }
    exact.train(&samples, &config).unwrap();
    grid.train(&samples, &config).unwrap();
    let bin = e.params().data_bins()[7];
    let obs = Complex::new(0.9, 0.1);
    let cand = Complex::one();
    assert_eq!(
        model.log_likelihood(bin, obs, cand).to_bits(),
        exact.log_likelihood(bin, obs, cand).to_bits(),
        "standalone exact backend must match the model dispatch"
    );
    let g = grid.log_likelihood(bin, obs, cand);
    assert!((g - exact.log_likelihood(bin, obs, cand)).abs() < 0.1);
    // EstimatorState::new builds the same backends the enum dispatch uses.
    assert!(matches!(
        EstimatorState::new(ModelBackend::GridKde, 64),
        EstimatorState::Grid(_)
    ));
}
