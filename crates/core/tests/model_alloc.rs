//! Allocation regression pins for the interference-model refit path (the PR 3
//! candidate-buffer pin, applied to the estimator refactor).
//!
//! Before the refactor, every `InterferenceModel` refit collected two temporary
//! axis `Vec<f64>`s per bin for bandwidth selection and rebuilt each bin's KDE from
//! a fresh sample copy, and `ProductKde2d::update` collected two more — hundreds of
//! `O(P·N_p)`-sized allocations per preamble update. The split-axis sample store
//! selects bandwidths straight from the stored slices (with one reusable sort
//! scratch), so the counts pinned here would jump by at least two per occupied bin
//! if the temporaries ever came back.
//!
//! The test binary installs a counting global allocator; the counts are process-wide,
//! so each measurement runs the workload after a warm-up of the same shape.

use cprecycle::segments::SymbolSegments;
use cprecycle::{CpRecycleConfig, InterferenceModel};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::OfdmParams;
use ofdmphy::preamble;
use rand::{Rng, SeedableRng};
use rfdsp::kde::{BandwidthSelector, ProductKde2d};
use rfdsp::Complex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// The test binary only counts; all real work is delegated to the system allocator.
// SAFETY: every method below delegates the actual (de)allocation to `System`
// verbatim — same layout, same pointer — so `System`'s GlobalAlloc guarantees
// carry over; the only addition is a Relaxed counter bump with no effect on
// memory management.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwarded to `System`; `ptr`/`layout` came from `alloc` above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwarded to `System` with the caller's arguments unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-wide, so concurrently running tests would perturb each
/// other's measurements; every test holds this for its measured region.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn viterbi_decode_is_allocation_free_after_warmup() {
    // The PR 8 satellite pin: the Viterbi decoder owns its depuncture and
    // back-pointer scratch, and with a warmed-up caller buffer `decode_into`
    // performs zero heap allocations per decoded frame. Before the rework every
    // decode allocated the depunctured stream, the path-metric vectors, the
    // back-pointer matrix and the output — ≥ 4 allocations per frame, one of them
    // `O(num_steps × 64)`.
    use ofdmphy::convcode::{encode, CodeRate};
    use ofdmphy::viterbi::ViterbiDecoder;

    let _serial = SERIAL.lock().unwrap();
    let decoder = ViterbiDecoder::new();
    let mut data: Vec<u8> = (0..1200).map(|i| ((i * 7 + 3) % 5 > 2) as u8).collect();
    data.extend_from_slice(&[0; 6]);
    for rate in [CodeRate::Half, CodeRate::ThreeQuarters] {
        let coded = encode(&data, rate).unwrap();
        let mut out = Vec::new();
        // Warm-up sizes the decoder scratch and the output buffer for this frame.
        decoder.decode_into(&coded, rate, &mut out).unwrap();
        assert_eq!(out, data);
        let before = allocations();
        decoder.decode_into(&coded, rate, &mut out).unwrap();
        let during = allocations() - before;
        assert_eq!(
            during, 0,
            "warm Viterbi decode allocated {during} times at rate {rate:?}"
        );
        assert_eq!(out, data);
    }
}

#[test]
fn kde_update_is_allocation_free_after_reserve() {
    // The satellite pin: `ProductKde2d::update` used to collect both axes into fresh
    // vectors to reselect bandwidths on every call. With split-axis storage, the
    // internal sort scratch and a `reserve`, an update allocates nothing at all.
    let _serial = SERIAL.lock().unwrap();
    let samples: Vec<(f64, f64)> = (0..64)
        .map(|i| (0.1 + 0.01 * (i % 13) as f64, -1.0 + 0.07 * (i % 29) as f64))
        .collect();
    let mut kde = ProductKde2d::new(&samples, BandwidthSelector::LeaveOneOut).unwrap();
    let new: Vec<(f64, f64)> = (0..16).map(|i| (0.3 + 0.01 * i as f64, 0.5)).collect();
    kde.reserve(new.len());
    let before = allocations();
    kde.update(&new, BandwidthSelector::LeaveOneOut).unwrap();
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "ProductKde2d::update allocated {during} times after reserve"
    );
    assert_eq!(kde.len(), 80);
}

#[test]
fn model_update_does_not_collect_per_bin_temporaries() {
    // A preamble update refits every occupied bin (52 at 802.11a/g). The dominant
    // legitimate allocations left are the amortised growth of the per-bin sample
    // stores and KDE buffers — a handful of reallocs, not O(bins) temporaries. The
    // pre-refactor path allocated ≥ 4 temporaries per bin per refit (two axis
    // collects for selection plus a fresh sample copy per KDE, and two more inside
    // `ProductKde2d::update`), i.e. > 200 allocations per update; the bound here
    // fails if even half of that comes back.
    let _serial = SERIAL.lock().unwrap();
    let e = OfdmEngine::new(OfdmParams::ieee80211ag());
    let reference = preamble::ltf_bins(e.params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut preamble_segments = |p: usize| -> SymbolSegments {
        let rows: Vec<Vec<Complex>> = (0..p)
            .map(|_| {
                reference
                    .iter()
                    .map(|r| {
                        if r.norm_sqr() == 0.0 {
                            Complex::zero()
                        } else {
                            *r + Complex::from_polar(
                                rng.gen_range(0.0..0.6),
                                rng.gen_range(-3.1..3.1),
                            )
                        }
                    })
                    .collect()
            })
            .collect();
        SymbolSegments::from_rows(rows)
    };
    let first = preamble_segments(9);
    let mut model = InterferenceModel::train(
        &e,
        std::slice::from_ref(&first),
        std::slice::from_ref(&reference),
        CpRecycleConfig::default(),
    )
    .unwrap();
    // Warm-up update: grows sample stores, KDE buffers and the shared sort scratch.
    model.update(&e, &preamble_segments(9), &reference).unwrap();

    let next = preamble_segments(9);
    let before = allocations();
    model.update(&e, &next, &reference).unwrap();
    let during = allocations() - before;
    assert!(
        during <= 110,
        "model update allocated {during} times — per-bin temporaries are back?"
    );
}
