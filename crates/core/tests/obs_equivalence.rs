//! The observability layer's pinned invariant: **instrumentation never changes a
//! decode**. An instrumented run (live `InMemoryRecorder`) must produce bit-for-bit
//! the same results as the no-op-recorder run and the plain uninstrumented API — same
//! [`SyncResult`] bits, same PSDU, same FCS verdict, same equalized subcarrier
//! decisions — for both receivers, on the batch path and on chunked sessions.
//!
//! Also here: the session counter ↔ event consistency property (the counters exposed
//! by [`RxSession`] must agree exactly with the drained [`RxEvent`] stream).

use cprecycle::session::{RxEvent, RxSession, SessionConfig};
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use obs::{InMemoryRecorder, NoopRecorder, Recorder};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameReceiver, RxFrame, StandardReceiver};
use ofdmphy::sync::SyncResult;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use wirelesschan::awgn::AwgnChannel;
use wirelesschan::mixer::{combine, InterfererSpec};

fn params() -> OfdmParams {
    OfdmParams::ieee80211ag()
}

fn mcs() -> Mcs {
    Mcs::new(Modulation::Qpsk, CodeRate::Half)
}

/// One noisy frame between noise pads, optionally behind an asynchronous interferer.
fn build_capture(seed: u64, snr_db: f64, interfered: bool) -> Vec<Complex> {
    let tx = Transmitter::new(params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
    let frame = tx.build_frame(&payload, mcs(), 0x5D).unwrap();
    let mut body = frame.samples.clone();
    if interfered {
        let intf = tx
            .build_frame(
                &(0..200).map(|_| rng.gen()).collect::<Vec<u8>>(),
                Mcs::new(Modulation::Qam16, CodeRate::Half),
                0x2F,
            )
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.0017, 23.7, 4.0);
        body = combine(&body, &[spec]).unwrap().composite;
    }
    let power = rfdsp::power::signal_power(&frame.samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(snr_db);
    let mut g = rfdsp::noise::GaussianSource::new();
    let mut capture = g.complex_vector(&mut rng, 240, noise_var);
    capture.extend(body);
    capture.extend(g.complex_vector(&mut rng, 160, noise_var));
    let mut chan = AwgnChannel::new();
    chan.add_noise_variance(&mut rng, &mut capture, noise_var)
        .unwrap();
    capture
}

fn assert_frames_bit_identical(a: &RxFrame, b: &RxFrame, context: &str) {
    assert_eq!(a.info, b.info, "{context}: info");
    assert_eq!(a.psdu, b.psdu, "{context}: psdu");
    assert_eq!(a.crc_ok, b.crc_ok, "{context}: crc");
    assert_eq!(a.payload, b.payload, "{context}: payload");
    assert_eq!(
        a.equalized_symbols.len(),
        b.equalized_symbols.len(),
        "{context}: symbol count"
    );
    for (i, (x, y)) in a
        .equalized_symbols
        .iter()
        .zip(&b.equalized_symbols)
        .enumerate()
    {
        for (j, (u, v)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                u.re.to_bits(),
                v.re.to_bits(),
                "{context}: symbol {i} bin {j} re"
            );
            assert_eq!(
                u.im.to_bits(),
                v.im.to_bits(),
                "{context}: symbol {i} bin {j} im"
            );
        }
    }
}

fn assert_syncs_bit_identical(a: &SyncResult, b: &SyncResult, context: &str) {
    assert_eq!(a.frame_start, b.frame_start, "{context}: frame_start");
    assert_eq!(
        a.cfo_hz.to_bits(),
        b.cfo_hz.to_bits(),
        "{context}: cfo bits"
    );
}

/// Streams `capture` through a session with the given recorder; returns the first
/// detection and decoded frame.
fn stream_once<R: FrameReceiver, O: Recorder>(
    receiver: R,
    capture: &[Complex],
    chunk: usize,
    obs: O,
) -> (SyncResult, RxFrame) {
    let mut session = RxSession::with_recorder(receiver, SessionConfig::default(), obs);
    for c in capture.chunks(chunk.max(1)) {
        session.push(c).unwrap();
    }
    session.flush().unwrap();
    let mut sync = None;
    let mut frame = None;
    for event in session.drain_events() {
        match event {
            RxEvent::FrameDetected { sync: s } if sync.is_none() => sync = Some(s),
            RxEvent::FrameDecoded { frame: f, .. } if frame.is_none() => frame = Some(*f),
            _ => {}
        }
    }
    (
        sync.expect("session detected the frame"),
        frame.expect("session decoded the frame"),
    )
}

/// Batch path, both receivers: `decode_frame_observed` with a live recorder must be
/// bit-identical to the plain `decode_frame`, and the recorder must actually have
/// seen the stage spans.
#[test]
fn instrumented_batch_decode_is_bit_identical() {
    for (seed, interfered) in [(11u64, false), (12, true)] {
        let capture = build_capture(seed, 25.0, interfered);
        let context = format!("seed {seed} interfered {interfered}");

        let standard = StandardReceiver::new(params());
        let sync = ofdmphy::sync::Synchronizer::new(params());
        let det = sync.detect(&capture).unwrap().expect("detected");
        let plain = standard
            .decode_frame(&capture, det.frame_start, None)
            .unwrap();
        let noop = standard
            .decode_frame_observed(&capture, det.frame_start, None, &NoopRecorder)
            .unwrap();
        let rec = InMemoryRecorder::default();
        let live = standard
            .decode_frame_observed(&capture, det.frame_start, None, &rec)
            .unwrap();
        assert_frames_bit_identical(&plain, &noop, &format!("standard noop, {context}"));
        assert_frames_bit_identical(&plain, &live, &format!("standard live, {context}"));
        let snap = rec.snapshot().unwrap();
        assert!(snap.stage("sync", "Standard").is_some(), "{context}");
        assert!(snap.stage("decide", "Standard").is_some(), "{context}");

        let cp = CpRecycleReceiver::new(params(), CpRecycleConfig::default());
        let plain = cp.decode_frame(&capture, det.frame_start, None).unwrap();
        let noop = cp
            .decode_frame_observed(&capture, det.frame_start, None, &NoopRecorder)
            .unwrap();
        let rec = InMemoryRecorder::default();
        let live = cp
            .decode_frame_observed(&capture, det.frame_start, None, &rec)
            .unwrap();
        assert_frames_bit_identical(&plain, &noop, &format!("cprecycle noop, {context}"));
        assert_frames_bit_identical(&plain, &live, &format!("cprecycle live, {context}"));
        let snap = rec.snapshot().unwrap();
        for stage in ["sync", "extract", "decide", "bits"] {
            assert!(snap.stage(stage, "Sphere").is_some(), "{context}: {stage}");
        }
        assert!(snap.stage("model_train", "ExactKde").is_some(), "{context}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunked sessions, both receivers: a session with a live recorder decodes
    /// bit-for-bit what the no-op-recorder session decodes, for arbitrary chunkings
    /// and clean/interfered captures.
    #[test]
    fn instrumented_session_is_bit_identical(
        seed in 0u64..200,
        chunk in 1usize..700,
        interfered in any::<bool>(),
    ) {
        let capture = build_capture(seed, 25.0, interfered);
        let context = format!("seed {seed} chunk {chunk} interfered {interfered}");

        let (sync_a, frame_a) = stream_once(
            StandardReceiver::new(params()), &capture, chunk, NoopRecorder);
        let (sync_b, frame_b) = stream_once(
            StandardReceiver::new(params()), &capture, chunk, InMemoryRecorder::default());
        assert_syncs_bit_identical(&sync_a, &sync_b, &format!("standard, {context}"));
        assert_frames_bit_identical(&frame_a, &frame_b, &format!("standard, {context}"));

        let (sync_a, frame_a) = stream_once(
            CpRecycleReceiver::new(params(), CpRecycleConfig::default()),
            &capture, chunk, NoopRecorder);
        let (sync_b, frame_b) = stream_once(
            CpRecycleReceiver::new(params(), CpRecycleConfig::default()),
            &capture, chunk, InMemoryRecorder::default());
        assert_syncs_bit_identical(&sync_a, &sync_b, &format!("cprecycle, {context}"));
        assert_frames_bit_identical(&frame_a, &frame_b, &format!("cprecycle, {context}"));
    }

    /// The session counters must agree exactly with the drained event stream, and the
    /// metrics snapshot must mirror the counters.
    #[test]
    fn session_counters_agree_with_drained_events(
        seed in 0u64..200,
        chunk in 1usize..700,
        interfered in any::<bool>(),
    ) {
        let capture = build_capture(seed, 25.0, interfered);
        let mut session = RxSession::with_recorder(
            CpRecycleReceiver::new(params(), CpRecycleConfig::default()),
            SessionConfig::default(),
            InMemoryRecorder::default(),
        );
        for c in capture.chunks(chunk) {
            session.push(c).unwrap();
        }
        session.flush().unwrap();

        let counters = session.counters();
        let events = session.drain_events();
        let mut detected = 0usize;
        let mut decoded = 0usize;
        let mut passes = 0usize;
        let mut failures = 0usize;
        let mut false_alarms = 0usize;
        let mut sync_losses = 0usize;
        for event in &events {
            match event {
                RxEvent::FrameDetected { .. } => detected += 1,
                RxEvent::FrameDecoded { frame, .. } => {
                    decoded += 1;
                    if frame.crc_ok { passes += 1; } else { failures += 1; }
                }
                RxEvent::FalseAlarm { .. } => false_alarms += 1,
                RxEvent::SyncLost { .. } => sync_losses += 1,
            }
        }
        prop_assert_eq!(counters.frames_detected, detected);
        prop_assert_eq!(counters.frames_decoded, decoded);
        prop_assert_eq!(counters.fcs_passes, passes);
        prop_assert_eq!(counters.fcs_failures, failures);
        prop_assert_eq!(counters.false_alarms, false_alarms);
        prop_assert_eq!(counters.sync_losses, sync_losses);
        prop_assert_eq!(session.frames_detected(), detected);
        prop_assert_eq!(session.frames_decoded(), decoded);
        prop_assert_eq!(session.fcs_failures(), failures);
        prop_assert_eq!(session.false_alarms(), false_alarms);
        prop_assert_eq!(session.sync_losses(), sync_losses);

        let snap = session.metrics_snapshot();
        prop_assert_eq!(snap.counter("samples_pushed"), session.samples_pushed() as u64);
        prop_assert_eq!(snap.counter("frames_detected"), detected as u64);
        prop_assert_eq!(snap.counter("frames_decoded"), decoded as u64);
        prop_assert_eq!(snap.counter("fcs_passes"), passes as u64);
        prop_assert_eq!(snap.counter("fcs_failures"), failures as u64);
        prop_assert_eq!(snap.counter("false_alarms"), false_alarms as u64);
        prop_assert_eq!(snap.counter("sync_losses"), sync_losses as u64);
        // Every detection mirrors into the structured trace (ring capacity permitting).
        let traced_detections = snap
            .trace
            .iter()
            .filter(|e| e.kind == "frame_detected")
            .count();
        prop_assert!(traced_detections <= detected);
        if snap.trace_dropped == 0 {
            prop_assert_eq!(traced_detections, detected);
        }
    }
}
