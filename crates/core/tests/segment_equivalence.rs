//! Property tests for the sliding-DFT segment-extraction kernel (the tentpole
//! invariant of the receiver hot path): across random symbols, FFT sizes and every
//! valid segment count, the `O(F)`-per-segment sliding kernel must agree with the
//! direct per-segment FFT reference to ≤ 1e-9, and with one segment the CPRecycle
//! receiver must still degrade to the standard receiver bit-for-bit.

use cprecycle::segments::{extract_segments_with, SegmentExtraction, SegmentScratch};
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use ofdmphy::chanest::ChannelEstimate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::ofdm::OfdmEngine;
use ofdmphy::params::{OfdmParams, SubcarrierRole};
use ofdmphy::rx::StandardReceiver;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use wirelesschan::awgn::AwgnChannel;

/// An 802.11a/g-style numerology at the requested FFT size (64 keeps the real a/g tone
/// map; 128 keeps the ±26 occupancy with a 32-sample CP, the same layout the receiver
/// regression tests use).
fn params_for(fft_size: usize) -> OfdmParams {
    match fft_size {
        64 => OfdmParams::ieee80211ag(),
        128 => {
            let mut roles = vec![SubcarrierRole::Null; 128];
            for k in 1..=26usize {
                roles[k] = SubcarrierRole::Data;
                roles[128 - k] = SubcarrierRole::Data;
            }
            for k in [7usize, 21] {
                roles[k] = SubcarrierRole::Pilot;
                roles[128 - k] = SubcarrierRole::Pilot;
            }
            OfdmParams::new(128, 32, 40e6, roles).expect("valid 128-point numerology")
        }
        other => panic!("no test numerology for FFT size {other}"),
    }
}

/// A random channel estimate: mostly well-conditioned gains, with a sprinkling of
/// degenerate (≈ 0) bins so the `inverse_gain` pass-through path is exercised too.
fn random_estimate(fft_size: usize, seed: u64) -> ChannelEstimate {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let h = (0..fft_size)
        .map(|_| {
            if rng.gen_range(0..16) == 0 {
                Complex::zero()
            } else {
                Complex::from_polar(rng.gen_range(0.2..2.0), rng.gen_range(-3.1..3.1))
            }
        })
        .collect();
    ChannelEstimate { h }
}

fn random_symbol(len: usize, seed: u64) -> Vec<Complex> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for FFT sizes 64 and 128 and **every** valid segment
    /// count `P ∈ {1..C+1}`, the sliding and direct kernels agree to ≤ 1e-9 on every
    /// (segment, bin) observation — including through random multipath-like channel
    /// estimates with occasional degenerate bins.
    #[test]
    fn sliding_equals_direct_for_all_valid_p(symbol_seed in any::<u64>(), h_seed in any::<u64>()) {
        for fft_size in [64usize, 128] {
            let params = params_for(fft_size);
            let engine = OfdmEngine::new(params.clone());
            let symbol = random_symbol(params.symbol_len(), symbol_seed ^ fft_size as u64);
            let estimate = random_estimate(fft_size, h_seed ^ fft_size as u64);
            let mut scratch = SegmentScratch::new();
            for p in 1..=params.cp_len + 1 {
                let sliding = extract_segments_with(
                    &engine, &symbol, &estimate, p, SegmentExtraction::Sliding, &mut scratch,
                ).unwrap();
                let direct = extract_segments_with(
                    &engine, &symbol, &estimate, p, SegmentExtraction::Direct, &mut scratch,
                ).unwrap();
                prop_assert_eq!(sliding.num_segments(), p);
                for bin in 0..fft_size {
                    let a = sliding.bin_observations(bin);
                    let b = direct.bin_observations(bin);
                    for j in 0..p {
                        prop_assert!(
                            (a[j] - b[j]).norm() <= 1e-9,
                            "F {}, P {}, segment {}, bin {}: {} vs {}",
                            fft_size, p, j, bin, a[j], b[j]
                        );
                    }
                }
            }
        }
    }

    /// The raw spectra the two kernels produce stay interchangeable downstream: the
    /// interference-power profiles (which feed the Oracle) agree to relative 1e-9.
    #[test]
    fn interference_power_kernels_agree(seed in any::<u64>()) {
        use cprecycle::segments::interference_power_per_segment_with;
        let params = OfdmParams::ieee80211ag();
        let engine = OfdmEngine::new(params.clone());
        let wave = random_symbol(params.symbol_len(), seed);
        let mut scratch = SegmentScratch::new();
        for p in 1..=params.cp_len + 1 {
            let sliding = interference_power_per_segment_with(
                &engine, &wave, p, SegmentExtraction::Sliding, &mut scratch,
            ).unwrap();
            let direct = interference_power_per_segment_with(
                &engine, &wave, p, SegmentExtraction::Direct, &mut scratch,
            ).unwrap();
            for bin in 0..params.fft_size {
                for (a, b) in sliding.bin_powers(bin).iter().zip(direct.bin_powers(bin)) {
                    prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.max(*b)));
                }
            }
        }
    }
}

/// Regression: with `P = 1` the CPRecycle receiver — on either extraction kernel —
/// still degrades to the standard receiver bit-for-bit: same decoded PSDU, same FCS
/// verdict, same payload, across several noisy captures.
#[test]
fn single_segment_degrades_to_standard_receiver_bit_for_bit() {
    let params = OfdmParams::ieee80211ag();
    let tx = Transmitter::new(params.clone());
    let standard = StandardReceiver::new(params.clone());
    let sliding_rx = CpRecycleReceiver::new(params.clone(), CpRecycleConfig::with_segments(1));
    let direct_rx = CpRecycleReceiver::new(
        params,
        CpRecycleConfig::builder()
            .num_segments(1)
            .extraction(SegmentExtraction::Direct)
            .build(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let mut awgn = AwgnChannel::new();
    for (trial, mcs) in Mcs::paper_set().iter().take(3).enumerate() {
        let payload: Vec<u8> = (0..100).map(|_| rng.gen()).collect();
        let frame = tx.build_frame(&payload, *mcs, 0x5D).unwrap();
        let mut noisy = frame.samples.clone();
        awgn.add_noise_snr(&mut rng, &mut noisy, 22.0).unwrap();
        let std_out = standard.decode_frame(&noisy, 0, None).unwrap();
        for (name, rx) in [("sliding", &sliding_rx), ("direct", &direct_rx)] {
            let cp_out = rx.decode_frame(&noisy, 0, None).unwrap();
            assert_eq!(
                cp_out.psdu, std_out.psdu,
                "trial {trial} ({name}): PSDU bits diverged from the standard receiver"
            );
            assert_eq!(cp_out.crc_ok, std_out.crc_ok, "trial {trial} ({name})");
            assert_eq!(cp_out.payload, std_out.payload, "trial {trial} ({name})");
            assert_eq!(cp_out.info.mcs, *mcs, "trial {trial} ({name})");
        }
    }
}
