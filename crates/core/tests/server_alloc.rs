//! Counting-allocator proof of the zero-allocation ingress hot path.
//!
//! The server's push path copies each chunk into a pooled buffer
//! ([`cprecycle::ChunkPool`]) and carries it through a pre-sized lock-free ring;
//! once the pool is warm the steady-state cycle — acquire → ring push → pop →
//! session push → release — performs **zero heap allocations**. This test feeds
//! noise-only chunks (no frames detect, so the session side allocates nothing
//! either), warms the pool for a few rounds, then pins the allocation counter
//! flat across thousands of further pushes.
//!
//! Its own binary so the `#[global_allocator]` does not interfere with the soak's
//! per-sample ceiling accounting in `server_stress.rs`.

use cprecycle::server::{RxServer, ServerConfig};
use cprecycle::session::SessionConfig;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::StandardReceiver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfdsp::Complex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// The test binary only counts; all real work is delegated to the system allocator.
// SAFETY: every method below delegates the actual (de)allocation to `System`
// verbatim — same layout, same pointer — so `System`'s GlobalAlloc guarantees
// carry over; the only addition is a Relaxed counter bump with no effect on
// memory management.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwarded to `System`; `ptr`/`layout` came from `alloc` above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwarded to `System` with the caller's arguments unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Below-threshold noise: the detector hunts but never locks, so a session's own
/// processing is allocation-free and every allocation observed belongs to the
/// ingress path under test.
fn noise_chunk(rng: &mut StdRng, len: usize) -> Vec<Complex> {
    let mut g = rfdsp::noise::GaussianSource::new();
    g.complex_vector(rng, len, 1e-6)
}

#[test]
fn steady_state_ingress_allocates_nothing() {
    const SESSIONS: usize = 8;
    const CHUNK: usize = 480;
    // The warm-up is an identical dry run of the measured window (not just a few
    // rounds): amortized one-time growth — scheduler shard deques, detector
    // scratch — must all reach its high-water mark before the counter is read.
    const WARM_ROUNDS: usize = 256;
    const MEASURED_ROUNDS: usize = 256;

    let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
        threads: 1,
        queue_capacity: 4,
        ..Default::default()
    });
    let handles: Vec<_> = (0..SESSIONS)
        .map(|_| {
            server.add_session(
                StandardReceiver::new(OfdmParams::ieee80211ag()),
                SessionConfig::default(),
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xA110C);
    // One pre-built chunk per session, reused every round: the producer side of a
    // real deployment hands the server the same DMA buffer over and over.
    let chunks: Vec<Vec<Complex>> = (0..SESSIONS)
        .map(|_| noise_chunk(&mut rng, CHUNK))
        .collect();

    // Warm-up: populate the chunk pool, let every session build its detector
    // scratch, and let each ring/worker reach its steady footprint.
    for _ in 0..WARM_ROUNDS {
        for (h, c) in handles.iter().zip(&chunks) {
            h.push(c).unwrap();
        }
    }
    server.drain();

    // Steady state: the whole acquire→ring→service→release cycle must be
    // allocation-free. `drain()` parks on pre-existing sync primitives; the final
    // snapshot-free check keeps the measured window pure ingress.
    let before = allocations();
    for _ in 0..MEASURED_ROUNDS {
        for (h, c) in handles.iter().zip(&chunks) {
            h.push(c).unwrap();
        }
    }
    server.drain();
    let during = allocations() - before;
    let pushes = (SESSIONS * MEASURED_ROUNDS) as u64;
    assert_eq!(
        during, 0,
        "steady-state ingress allocated {during} times over {pushes} pushes \
         (expected zero: warm pool hits, pre-sized rings, no event traffic)"
    );

    // Sanity that the measurement is not vacuous: the pool really served the
    // traffic from recycled buffers.
    let snap = server.metrics_snapshot();
    assert!(
        snap.counter("chunk_pool_hits") >= pushes,
        "expected ≥{pushes} pool hits, got {}",
        snap.counter("chunk_pool_hits")
    );
    assert_eq!(snap.counter("samples_pushed") as usize, {
        SESSIONS * CHUNK * (WARM_ROUNDS + MEASURED_ROUNDS)
    });
    server.shutdown();
}
