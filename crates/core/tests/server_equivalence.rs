//! Property tests for the multi-session server — the tentpole invariant of the
//! server core:
//!
//! **Scheduling never changes a decoded bit.** For any number of sessions, worker
//! threads, per-session chunk-size mixes and any interleaving of the sessions'
//! pushes, every session's [`RxEvent`] stream and [`SessionCounters`] coming out of
//! an [`RxServer`] are bit-identical to a standalone [`RxSession`] fed the same
//! chunks sequentially — including under Rolling model persistence (cross-frame
//! interference-model state) and with a live recorder attached.
//!
//! Alongside the equivalence property: the backpressure contract (a full bounded
//! queue rejects without consuming; resubmission converges to the standalone
//! result), drain/shutdown semantics around mid-frame partial chunks, and the
//! counters≡events lockstep extended to the server.

use cprecycle::server::{PushError, RxServer, ServerConfig};
use cprecycle::session::{RxEvent, RxSession, SessionConfig, SessionCounters};
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use obs::InMemoryRecorder;
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, FrameReceiver, ModelPersistence, RxFrame, StandardReceiver};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use std::sync::{Arc, Condvar, Mutex};
use wirelesschan::awgn::AwgnChannel;

const CHUNK_MIX: [usize; 5] = [1, 7, 64, 256, 480];

fn params() -> OfdmParams {
    OfdmParams::ieee80211ag()
}

fn mcs() -> Mcs {
    Mcs::new(Modulation::Qpsk, CodeRate::Half)
}

/// One station's bursty capture: lead noise, `frames` frames with random gaps,
/// trailing noise. Returns the capture and the payloads in order.
fn station_capture(seed: u64, frames: usize, payload_len: usize) -> (Vec<Complex>, Vec<Vec<u8>>) {
    let tx = Transmitter::new(params());
    let mut rng = StdRng::seed_from_u64(seed);
    let payloads: Vec<Vec<u8>> = (0..frames)
        .map(|_| (0..payload_len).map(|_| rng.gen()).collect())
        .collect();
    let built: Vec<_> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| tx.build_frame(p, mcs(), 0x40 + i as u8).unwrap())
        .collect();
    let power = rfdsp::power::signal_power(&built[0].samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(28.0);
    let mut g = rfdsp::noise::GaussianSource::new();
    let lead = rng.gen_range(250..500);
    let mut capture = g.complex_vector(&mut rng, lead, noise_var);
    for frame in &built {
        capture.extend_from_slice(&frame.samples);
        let gap = rng.gen_range(150..400);
        capture.extend(g.complex_vector(&mut rng, gap, noise_var));
    }
    capture.extend(g.complex_vector(&mut rng, 300, noise_var));
    let mut chan = AwgnChannel::new();
    chan.add_noise_variance(&mut rng, &mut capture, noise_var)
        .unwrap();
    (capture, payloads)
}

/// Splits `capture` into chunks whose sizes are drawn from [`CHUNK_MIX`].
fn chunk_plan(rng: &mut StdRng, capture: &[Complex]) -> Vec<Vec<Complex>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < capture.len() {
        let want = CHUNK_MIX[rng.gen_range(0..CHUNK_MIX.len())];
        let end = (at + want).min(capture.len());
        chunks.push(capture[at..end].to_vec());
        at = end;
    }
    chunks
}

fn assert_frames_bit_identical(a: &RxFrame, b: &RxFrame, context: &str) {
    assert_eq!(a.info, b.info, "{context}: info");
    assert_eq!(a.psdu, b.psdu, "{context}: psdu");
    assert_eq!(a.crc_ok, b.crc_ok, "{context}: crc");
    assert_eq!(a.payload, b.payload, "{context}: payload");
    assert_eq!(
        a.equalized_symbols.len(),
        b.equalized_symbols.len(),
        "{context}: symbol count"
    );
    for (i, (x, y)) in a
        .equalized_symbols
        .iter()
        .zip(&b.equalized_symbols)
        .enumerate()
    {
        for (j, (u, v)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                u.re.to_bits(),
                v.re.to_bits(),
                "{context}: symbol {i} bin {j} re"
            );
            assert_eq!(
                u.im.to_bits(),
                v.im.to_bits(),
                "{context}: symbol {i} bin {j} im"
            );
        }
    }
}

/// Bit-identical comparison of two event streams (`a` = server, `b` = standalone).
fn assert_events_bit_identical(a: &[RxEvent], b: &[RxEvent], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: event count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let ctx = format!("{context}: event {i}");
        match (x, y) {
            (RxEvent::FrameDetected { sync: sa }, RxEvent::FrameDetected { sync: sb }) => {
                assert_eq!(sa, sb, "{ctx}: sync");
            }
            (
                RxEvent::FrameDecoded {
                    frame: fa,
                    frame_start: va,
                },
                RxEvent::FrameDecoded {
                    frame: fb,
                    frame_start: vb,
                },
            ) => {
                assert_eq!(va, vb, "{ctx}: frame_start");
                assert_frames_bit_identical(fa, fb, &ctx);
            }
            (RxEvent::FalseAlarm { at: aa }, RxEvent::FalseAlarm { at: ab }) => {
                assert_eq!(aa, ab, "{ctx}: false alarm position");
            }
            (RxEvent::SyncLost { at: aa }, RxEvent::SyncLost { at: ab }) => {
                assert_eq!(aa, ab, "{ctx}: sync-lost position");
            }
            (x, y) => panic!("{ctx}: kind mismatch ({x:?} vs {y:?})"),
        }
    }
}

/// The PR 6 counters≡events property, extended to any server-drained stream.
fn assert_counters_match_events(events: &[RxEvent], c: SessionCounters, rolling: bool, ctx: &str) {
    let mut expect = SessionCounters::default();
    for e in events {
        match e {
            RxEvent::FrameDetected { .. } => expect.frames_detected += 1,
            RxEvent::FrameDecoded { frame, .. } => {
                expect.frames_decoded += 1;
                if frame.crc_ok {
                    expect.fcs_passes += 1;
                    if rolling {
                        expect.model_absorbs += 1;
                    }
                } else {
                    expect.fcs_failures += 1;
                    if rolling {
                        expect.model_rejects += 1;
                    }
                }
            }
            RxEvent::FalseAlarm { .. } => expect.false_alarms += 1,
            RxEvent::SyncLost { .. } => expect.sync_losses += 1,
        }
    }
    assert_eq!(c, expect, "{ctx}: counters vs drained events");
}

/// Standalone reference: one `RxSession` fed `chunks` in order, then flushed.
fn standalone_replay<R: FrameReceiver>(
    receiver: R,
    config: SessionConfig,
    chunks: &[Vec<Complex>],
) -> (Vec<RxEvent>, SessionCounters) {
    let mut session = RxSession::with_config(receiver, config);
    for c in chunks {
        session.push(c).unwrap();
    }
    session.flush().unwrap();
    let events = session.drain_events();
    (events, session.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The tentpole: any interleaving of 2–8 sessions' chunk feeds over 1–4 worker
    /// threads yields per-session events and counters bit-identical to standalone
    /// sequential replays.
    #[test]
    fn server_equals_standalone_for_any_interleaving(
        seed in any::<u64>(),
        n_sessions in 2usize..9,
        threads in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E4E4);
        let stations: Vec<(Vec<Complex>, Vec<Vec<u8>>)> = (0..n_sessions)
            .map(|i| station_capture(seed.wrapping_add(i as u64), 2, 40))
            .collect();
        let plans: Vec<Vec<Vec<Complex>>> = stations
            .iter()
            .map(|(capture, _)| chunk_plan(&mut rng, capture))
            .collect();

        let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
            threads,
            queue_capacity: 4, // small on purpose: blocking push exercises backpressure
            ..Default::default()
        });
        let handles: Vec<_> = (0..n_sessions)
            .map(|_| server.add_session(StandardReceiver::new(params()), SessionConfig::default()))
            .collect();

        // Random interleaving that preserves each session's chunk order.
        let mut next = vec![0usize; n_sessions];
        loop {
            let live: Vec<usize> = (0..n_sessions).filter(|&s| next[s] < plans[s].len()).collect();
            if live.is_empty() {
                break;
            }
            let s = live[rng.gen_range(0..live.len())];
            handles[s].push(&plans[s][next[s]]).unwrap();
            next[s] += 1;
        }
        server.shutdown();

        for (s, handle) in handles.iter().enumerate() {
            let ctx = format!("session {s} (threads {threads})");
            prop_assert!(handle.take_error().is_none(), "{}: session error", ctx);
            let events = handle.drain_events();
            let counters = handle.counters();
            let (ref_events, ref_counters) =
                standalone_replay(StandardReceiver::new(params()), SessionConfig::default(), &plans[s]);
            assert_events_bit_identical(&events, &ref_events, &ctx);
            prop_assert_eq!(counters, ref_counters, "{}: counters", ctx);
            assert_counters_match_events(&events, counters, false, &ctx);
            // Sanity: both frames actually decoded (the property is not vacuous).
            let decoded: Vec<Vec<u8>> = events
                .iter()
                .filter_map(|e| match e {
                    RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(&decoded, &stations[s].1, "{}: payloads", ctx);
        }
    }

    /// The same property with the CPRecycle receiver under Rolling persistence:
    /// cross-frame interference-model state must evolve identically under the
    /// server's scheduling, frame by frame, session by session.
    #[test]
    fn rolling_cprecycle_server_matches_standalone(
        seed in any::<u64>(),
        threads in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0117);
        let config = SessionConfig {
            persistence: ModelPersistence::Rolling,
            ..Default::default()
        };
        let stations: Vec<(Vec<Complex>, Vec<Vec<u8>>)> = (0..2)
            .map(|i| station_capture(seed.wrapping_add(1000 + i as u64), 2, 40))
            .collect();
        let plans: Vec<Vec<Vec<Complex>>> = stations
            .iter()
            .map(|(capture, _)| chunk_plan(&mut rng, capture))
            .collect();

        let server: RxServer<CpRecycleReceiver> = RxServer::new(ServerConfig {
            threads,
            ..Default::default()
        });
        let handles: Vec<_> = (0..2)
            .map(|_| {
                server.add_session(
                    CpRecycleReceiver::new(params(), CpRecycleConfig::default()),
                    config,
                )
            })
            .collect();

        let mut next = [0usize; 2];
        loop {
            let live: Vec<usize> = (0..2).filter(|&s| next[s] < plans[s].len()).collect();
            if live.is_empty() {
                break;
            }
            let s = live[rng.gen_range(0..live.len())];
            handles[s].push(&plans[s][next[s]]).unwrap();
            next[s] += 1;
        }
        server.shutdown();

        for (s, handle) in handles.iter().enumerate() {
            let ctx = format!("rolling session {s} (threads {threads})");
            let events = handle.drain_events();
            let counters = handle.counters();
            let model_preambles =
                handle.with_session(|sess| sess.stream().model().map(|m| m.num_preambles()));

            let mut reference = RxSession::with_config(
                CpRecycleReceiver::new(params(), CpRecycleConfig::default()),
                config,
            );
            for c in &plans[s] {
                reference.push(c).unwrap();
            }
            reference.flush().unwrap();
            let ref_events = reference.drain_events();

            assert_events_bit_identical(&events, &ref_events, &ctx);
            prop_assert_eq!(counters, reference.counters(), "{}: counters", ctx);
            assert_counters_match_events(&events, counters, true, &ctx);
            // The rolling model accumulated the same preambles.
            prop_assert_eq!(
                model_preambles,
                reference.stream().model().map(|m| m.num_preambles()),
                "{}: model preamble count", ctx
            );
            prop_assert_eq!(counters.model_absorbs, counters.fcs_passes, "{}: absorbs", ctx);
        }
    }
}

/// Sessions with a live [`InMemoryRecorder`]: the deterministic parts of the
/// snapshot — counters and the structured event trace — are identical between the
/// server and a standalone instrumented session. (Stage timing histograms are
/// wall-clock and outside the determinism contract.)
#[test]
fn live_recorder_sees_identical_counters_and_trace() {
    let (capture, payloads) = station_capture(0xB0B, 2, 48);
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let plan = chunk_plan(&mut rng, &capture);

    let server: RxServer<StandardReceiver, InMemoryRecorder> = RxServer::new(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let handle = server.add_session_with_recorder(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        InMemoryRecorder::new(64),
    );
    for c in &plan {
        handle.push(c).unwrap();
    }
    server.shutdown();
    let server_snap = handle.metrics_snapshot();
    let events = handle.drain_events();

    let mut reference = RxSession::with_recorder(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        InMemoryRecorder::new(64),
    );
    for c in &plan {
        reference.push(c).unwrap();
    }
    reference.flush().unwrap();
    let ref_snap = reference.metrics_snapshot();

    assert_eq!(server_snap.counters, ref_snap.counters, "snapshot counters");
    assert_eq!(server_snap.trace, ref_snap.trace, "snapshot trace");
    assert_eq!(server_snap.trace_dropped, ref_snap.trace_dropped);
    assert_events_bit_identical(&events, &reference.drain_events(), "recorded session");
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, RxEvent::FrameDecoded { .. }))
            .count(),
        payloads.len()
    );
}

// ---------------------------------------------------------------------------
// Backpressure: deterministic `Full` via a gate that wedges the (only) worker.
// ---------------------------------------------------------------------------

/// A [`StandardReceiver`] wrapper whose `begin_frame` blocks while a gate is
/// closed — a deterministic way to wedge a worker mid-frame so the bounded
/// ingress queue observably fills. With the gate open it is behaviourally
/// identical to the inner receiver (`begin_frame` is a no-op for the standard
/// receiver), so a plain `StandardReceiver` serves as the standalone reference.
#[derive(Clone)]
struct GatedReceiver {
    inner: StandardReceiver,
    gate: Arc<Gate>,
}

struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    closed: bool,
    entries: usize,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new(GateState {
                closed: true,
                entries: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Blocks the calling worker while the gate is closed; counts the entry first
    /// so the test can wait for the worker to arrive.
    fn pass(&self) {
        let mut s = self.state.lock().unwrap();
        s.entries += 1;
        self.cv.notify_all();
        while s.closed {
            s = self.cv.wait(s).unwrap();
        }
    }

    fn open(&self) {
        self.state.lock().unwrap().closed = false;
        self.cv.notify_all();
    }

    /// Waits until a worker is inside (or past) the gate.
    fn wait_entered(&self) {
        let mut s = self.state.lock().unwrap();
        while s.entries == 0 {
            s = self.cv.wait(s).unwrap();
        }
    }
}

impl FrameReceiver for GatedReceiver {
    type Stream = <StandardReceiver as FrameReceiver>::Stream;

    fn params(&self) -> &OfdmParams {
        self.inner.params()
    }

    fn new_stream(&self, persistence: ModelPersistence) -> Self::Stream {
        self.inner.new_stream(persistence)
    }

    fn begin_frame(&self, stream: &mut Self::Stream) {
        self.gate.pass();
        self.inner.begin_frame(stream);
    }

    fn decode_stream(
        &self,
        stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> ofdmphy::Result<RxFrame> {
        self.inner.decode_stream(stream, samples, frame_start, info)
    }
}

/// The backpressure contract: with the single worker wedged mid-detection, the
/// bounded queue fills and `try_push` returns `Full` **without consuming the
/// chunk**; once the queue drains, resubmitting the same chunks in order converges
/// to the standalone result — nothing dropped, nothing reordered.
#[test]
fn full_queue_rejects_without_dropping_or_reordering() {
    // Frame A arrives whole in the first chunk; frame B is split over the chunks
    // that ride the backpressure. Decoding B at the right stream offset is only
    // possible if every accepted chunk survives in order.
    let (capture, payloads) = station_capture(0xF00D, 2, 48);
    // Split: chunk0 carries the lead noise + all of frame A (the first frame ends
    // well before the second begins; splitting at the capture midpoint keeps A in
    // chunk0 for these seeds — verified by the decode assertions below).
    let first_cut = capture.len() / 2;
    let chunk0 = capture[..first_cut].to_vec();
    let rest = &capture[first_cut..];
    let quarter = rest.len() / 4;
    let tail_chunks: Vec<Vec<Complex>> = (0..4)
        .map(|i| {
            let lo = i * quarter;
            let hi = if i == 3 {
                rest.len()
            } else {
                (i + 1) * quarter
            };
            rest[lo..hi].to_vec()
        })
        .collect();

    let gate = Gate::new();
    let server: RxServer<GatedReceiver> = RxServer::new(ServerConfig {
        threads: 1,
        queue_capacity: 2,
        ..Default::default()
    });
    let handle = server.add_session(
        GatedReceiver {
            inner: StandardReceiver::new(params()),
            gate: Arc::clone(&gate),
        },
        SessionConfig::default(),
    );

    handle.push(&chunk0).unwrap();
    gate.wait_entered(); // the only worker is now wedged inside frame A's begin_frame

    assert_eq!(handle.try_push(&tail_chunks[0]), Ok(()));
    assert_eq!(handle.try_push(&tail_chunks[1]), Ok(()));
    assert_eq!(handle.queue_depth(), 2);
    assert_eq!(
        handle.try_push(&tail_chunks[2]),
        Err(PushError::Full),
        "bounded queue at capacity must reject"
    );
    assert_eq!(
        handle.try_push(&tail_chunks[2]),
        Err(PushError::Full),
        "still full on retry while wedged"
    );
    // Nothing consumed by the rejections.
    assert_eq!(
        handle.samples_pushed(),
        chunk0.len() + tail_chunks[0].len() + tail_chunks[1].len()
    );

    gate.open();
    server.drain();
    // Resubmit the rejected chunk and the remainder, in order.
    assert_eq!(handle.try_push(&tail_chunks[2]), Ok(()));
    handle.push(&tail_chunks[3]).unwrap();
    server.shutdown();

    let events = handle.drain_events();
    let all_chunks: Vec<Vec<Complex>> = std::iter::once(chunk0)
        .chain(tail_chunks.iter().cloned())
        .collect();
    let (ref_events, ref_counters) = standalone_replay(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        &all_chunks,
    );
    assert_events_bit_identical(&events, &ref_events, "backpressured session");
    assert_eq!(handle.counters(), ref_counters);
    // Both frames decoded — the one that was wedged and the one that rode the
    // backpressure in pieces.
    let decoded: Vec<Vec<u8>> = events
        .iter()
        .filter_map(|e| match e {
            RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
            _ => None,
        })
        .collect();
    assert_eq!(decoded, payloads);
}

// ---------------------------------------------------------------------------
// Drain / shutdown under mid-frame partial chunks.
// ---------------------------------------------------------------------------

/// `drain()` is a barrier, not an end-of-stream: a frame whose tail has not
/// arrived stays pending across the drain and decodes when the tail lands — no
/// decodable frame is lost, and no spurious `SyncLost` is reported.
#[test]
fn drain_preserves_mid_frame_partial_chunks() {
    let (capture, payloads) = station_capture(0xD4A1, 1, 64);
    // Cut inside the frame: past the preamble, short of the tail.
    let cut = capture.len() * 2 / 3;

    let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let handle = server.add_session(StandardReceiver::new(params()), SessionConfig::default());
    for c in capture[..cut].chunks(480) {
        handle.push(c).unwrap();
    }
    server.drain();
    let mid_events = handle.drain_events();
    assert!(
        !mid_events
            .iter()
            .any(|e| matches!(e, RxEvent::SyncLost { .. } | RxEvent::FrameDecoded { .. })),
        "drain must neither flush nor decode a half-arrived frame: {mid_events:?}"
    );
    assert_eq!(handle.counters().sync_losses, 0);

    for c in capture[cut..].chunks(480) {
        handle.push(c).unwrap();
    }
    server.shutdown();
    let mut events = mid_events;
    events.extend(handle.drain_events());

    let mut chunks: Vec<Vec<Complex>> = capture[..cut].chunks(480).map(|c| c.to_vec()).collect();
    chunks.extend(capture[cut..].chunks(480).map(|c| c.to_vec()));
    let (ref_events, ref_counters) = standalone_replay(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        &chunks,
    );
    assert_events_bit_identical(&events, &ref_events, "drained-then-completed session");
    assert_eq!(handle.counters(), ref_counters);
    assert_counters_match_events(&events, handle.counters(), false, "drain test");
    let decoded: Vec<Vec<u8>> = events
        .iter()
        .filter_map(|e| match e {
            RxEvent::FrameDecoded { frame, .. } => frame.payload.clone(),
            _ => None,
        })
        .collect();
    assert_eq!(decoded, payloads, "the mid-drain frame still decodes");
}

/// `shutdown()` is the end-of-stream: a frame whose tail never arrives surfaces as
/// exactly the standalone flush would report it, and the counters stay in lockstep
/// with the events delivered across both drains.
#[test]
fn shutdown_mid_frame_matches_standalone_flush() {
    let (capture, _) = station_capture(0x51D0, 1, 64);
    let cut = capture.len() * 2 / 3;

    let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let handle = server.add_session(StandardReceiver::new(params()), SessionConfig::default());
    for c in capture[..cut].chunks(256) {
        handle.push(c).unwrap();
    }
    server.shutdown();

    let events = handle.drain_events();
    let chunks: Vec<Vec<Complex>> = capture[..cut].chunks(256).map(|c| c.to_vec()).collect();
    let (ref_events, ref_counters) = standalone_replay(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        &chunks,
    );
    assert_events_bit_identical(&events, &ref_events, "shutdown mid-frame");
    assert_eq!(handle.counters(), ref_counters);
    assert_counters_match_events(&events, handle.counters(), false, "shutdown test");
    assert_eq!(
        handle.counters().sync_losses,
        1,
        "the truncated frame is lost"
    );
}

/// A per-session `flush()` through the handle behaves exactly like the standalone
/// flush at the same stream position, and the session stays usable afterwards.
#[test]
fn handle_flush_is_ordered_with_pushes() {
    let (capture, payloads) = station_capture(0xF1A5, 2, 40);

    let server: RxServer<StandardReceiver> = RxServer::new(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let handle = server.add_session(StandardReceiver::new(params()), SessionConfig::default());
    // Feed everything, flush through the handle (not shutdown), keep the server up.
    for c in capture.chunks(333) {
        handle.push(c).unwrap();
    }
    handle.flush().unwrap();
    server.drain();
    let events = handle.drain_events();

    let chunks: Vec<Vec<Complex>> = capture.chunks(333).map(|c| c.to_vec()).collect();
    let (ref_events, ref_counters) = standalone_replay(
        StandardReceiver::new(params()),
        SessionConfig::default(),
        &chunks,
    );
    assert_events_bit_identical(&events, &ref_events, "handle flush");
    assert_eq!(handle.counters(), ref_counters);
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, RxEvent::FrameDecoded { .. }))
            .count(),
        payloads.len()
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown and flush against a full ring (control items bypass backpressure).
// ---------------------------------------------------------------------------

/// Regression: `shutdown` (and `handle.flush`) must complete even when a session's
/// ingress ring is full and the only worker is wedged mid-decode. The final flush
/// rides the ticketed control path, not the ring, so it can always be accepted; a
/// producer parked in a blocking `push` must wake with `Closed` instead of
/// deadlocking against the flush. A hang here fails via the test harness timeout.
#[test]
fn shutdown_completes_while_rings_are_full() {
    let (capture, payloads) = station_capture(0x51DE, 1, 48);
    let cut = capture.len() / 2;

    let gate = Gate::new();
    let server: RxServer<GatedReceiver> = RxServer::new(ServerConfig {
        threads: 1,
        queue_capacity: 2,
        ..Default::default()
    });
    let server = Arc::new(server);
    let handle = server.add_session(
        GatedReceiver {
            inner: StandardReceiver::new(params()),
            gate: Arc::clone(&gate),
        },
        SessionConfig::default(),
    );

    // Wedge the only worker inside the frame, then fill the ring to capacity.
    handle.push(&capture[..cut]).unwrap();
    gate.wait_entered();
    let tail: Vec<Vec<Complex>> = capture[cut..].chunks(256).map(|c| c.to_vec()).collect();
    handle.try_push(&tail[0]).unwrap();
    handle.try_push(&tail[1]).unwrap();
    assert_eq!(handle.try_push(&tail[2]), Err(PushError::Full));

    // A flush against the full ring is accepted immediately (ticketed side queue).
    assert_eq!(handle.flush(), Ok(()));

    // Park one producer in a blocking push against the full ring, then shut down
    // from another thread while the worker is still wedged.
    let parked_handle = handle.clone();
    let parked_chunk = tail[2].clone();
    let parked = std::thread::spawn(move || parked_handle.push(&parked_chunk));
    let shutdown_server = Arc::clone(&server);
    let shutdown = std::thread::spawn(move || shutdown_server.shutdown());

    // Give both threads time to reach their blocking points, then release the
    // worker. Shutdown must now run to completion.
    std::thread::sleep(std::time::Duration::from_millis(50));
    gate.open();
    shutdown.join().expect("shutdown thread");
    match parked.join().expect("parked producer") {
        // Closed: woken by shutdown while still parked (the common interleaving).
        Err(PushError::Closed) => {
            // The accepted prefix was serviced; the parked chunk was not.
            let serviced: Vec<Vec<Complex>> = std::iter::once(capture[..cut].to_vec())
                .chain(tail[..2].iter().cloned())
                .collect();
            let (ref_events, ref_counters) = standalone_replay(
                StandardReceiver::new(params()),
                SessionConfig::default(),
                &serviced,
            );
            assert_events_bit_identical(&handle.drain_events(), &ref_events, "closed while full");
            assert_eq!(handle.counters(), ref_counters);
        }
        // Ok: the push won the race against close once space freed. The exact
        // event stream then depends on where the earlier mid-stream flush ticket
        // landed (it may SyncLost the wedged frame); the property under test is
        // that nothing deadlocked and accounting covers all four accepted chunks.
        Ok(()) => {
            let expected: usize = cut + tail[..3].iter().map(Vec::len).sum::<usize>();
            assert_eq!(handle.samples_pushed(), expected);
            let _ = payloads; // decode equality is pinned by the Closed arm
        }
        Err(PushError::Full) => panic!("blocking push must never return Full"),
    }
    // Idempotent second shutdown still cannot hang.
    server.shutdown();
}
