//! Stress/soak test for the multi-session server, behind `--ignored` (CI runs it
//! with a short `CPRECYCLE_SOAK_SECS`; locally `cargo test -p cprecycle --test
//! server_stress --release -- --ignored` soaks for ~30 s by default).
//!
//! 64 concurrent sessions — a mix of standard receivers and CPRecycle receivers
//! with rolling interference models — are fed their own bursty captures over and
//! over in randomized chunk sizes until the deadline. The assertions:
//!
//! * **zero sync-state corruption**: every session's final counters are equal to a
//!   golden standalone replay of exactly the chunks it was fed (the chunk plan is
//!   derived from a per-session seed, so the replay regenerates it instead of
//!   recording gigabytes);
//! * **no unbounded memory growth**: a counting global allocator bounds the
//!   process-wide allocations per pushed sample (events are drained as the soak
//!   runs, like a real consumer would). The ceiling is a smoke bound — orders of
//!   magnitude above the legitimate per-frame allocations, but low enough that a
//!   leak of queued chunks, undrained events or an untrimmed carry-over buffer
//!   blows through it.

use cprecycle::server::{RxServer, ServerConfig};
use cprecycle::session::{RxSession, SessionConfig, SessionCounters};
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameInfo, FrameReceiver, ModelPersistence, RxFrame, StandardReceiver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use wirelesschan::awgn::AwgnChannel;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// The test binary only counts; all real work is delegated to the system allocator.
// SAFETY: every method below delegates the actual (de)allocation to `System`
// verbatim — same layout, same pointer — so `System`'s GlobalAlloc guarantees
// carry over; the only addition is a Relaxed counter bump with no effect on
// memory management.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwarded to `System`; `ptr`/`layout` came from `alloc` above.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwarded to `System` with the caller's arguments unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwarded to `System` with the caller's layout unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const SESSIONS: usize = 64;
/// Every 8th session runs the CPRecycle receiver with a rolling model; the rest run
/// the standard receiver so the soak exercises scheduling breadth, not just decode
/// throughput.
const CPRECYCLE_EVERY: usize = 8;
/// Upper bound on capture repetitions per session, so the golden serial replay
/// stays tractable even on very fast machines.
const MAX_ROUNDS: usize = 200;

fn soak_duration() -> Duration {
    let secs = std::env::var("CPRECYCLE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_secs(secs)
}

fn params() -> OfdmParams {
    OfdmParams::ieee80211ag()
}

/// One session's repeating capture: lead noise, two frames with gaps, trailing pad.
fn station_capture(seed: u64) -> Vec<Complex> {
    let tx = Transmitter::new(params());
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let mut rng = StdRng::seed_from_u64(seed);
    let payloads: Vec<Vec<u8>> = (0..2)
        .map(|_| (0..40).map(|_| rng.gen()).collect())
        .collect();
    let built: Vec<_> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| tx.build_frame(p, mcs, 0x40 + i as u8).unwrap())
        .collect();
    let power = rfdsp::power::signal_power(&built[0].samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(28.0);
    let mut g = rfdsp::noise::GaussianSource::new();
    let lead = rng.gen_range(250..450);
    let mut capture = g.complex_vector(&mut rng, lead, noise_var);
    for frame in &built {
        capture.extend_from_slice(&frame.samples);
        let gap = rng.gen_range(150..350);
        capture.extend(g.complex_vector(&mut rng, gap, noise_var));
    }
    capture.extend(g.complex_vector(&mut rng, 300, noise_var));
    let mut chan = AwgnChannel::new();
    chan.add_noise_variance(&mut rng, &mut capture, noise_var)
        .unwrap();
    capture
}

/// Yields the chunk boundaries for one pass over a capture — shared by the soak
/// feed and the golden replay, so both see byte-identical chunk sequences.
fn chunk_spans(rng: &mut StdRng, len: usize) -> Vec<(usize, usize)> {
    const MIX: [usize; 5] = [16, 64, 160, 480, 1024];
    let mut spans = Vec::new();
    let mut at = 0;
    while at < len {
        let want = MIX[rng.gen_range(0..MIX.len())];
        let end = (at + want).min(len);
        spans.push((at, end));
        at = end;
    }
    spans
}

fn config_for_kind(cprecycle: bool) -> SessionConfig {
    if cprecycle {
        SessionConfig {
            persistence: ModelPersistence::Rolling,
            ..Default::default()
        }
    } else {
        SessionConfig::default()
    }
}

fn session_config(id: usize) -> SessionConfig {
    config_for_kind(id.is_multiple_of(CPRECYCLE_EVERY))
}

/// Either in-tree receiver behind one enum, so the soak can mix both families in a
/// single server (which is generic over one receiver type).
enum SoakReceiver {
    Standard(Box<StandardReceiver>),
    CpRecycle(Box<CpRecycleReceiver>),
}

enum SoakStream {
    Standard(<StandardReceiver as FrameReceiver>::Stream),
    CpRecycle(Box<<CpRecycleReceiver as FrameReceiver>::Stream>),
}

impl SoakReceiver {
    fn for_kind(cprecycle: bool) -> Self {
        if cprecycle {
            SoakReceiver::CpRecycle(Box::new(CpRecycleReceiver::new(
                params(),
                CpRecycleConfig::default(),
            )))
        } else {
            SoakReceiver::Standard(Box::new(StandardReceiver::new(params())))
        }
    }

    fn for_session(id: usize) -> Self {
        Self::for_kind(id.is_multiple_of(CPRECYCLE_EVERY))
    }
}

impl FrameReceiver for SoakReceiver {
    type Stream = SoakStream;

    fn params(&self) -> &OfdmParams {
        match self {
            SoakReceiver::Standard(r) => r.params(),
            SoakReceiver::CpRecycle(r) => r.params(),
        }
    }

    fn new_stream(&self, persistence: ModelPersistence) -> Self::Stream {
        match self {
            SoakReceiver::Standard(r) => {
                r.new_stream(persistence);
                SoakStream::Standard(())
            }
            SoakReceiver::CpRecycle(r) => {
                SoakStream::CpRecycle(Box::new(r.new_stream(persistence)))
            }
        }
    }

    fn begin_frame(&self, stream: &mut Self::Stream) {
        match (self, stream) {
            (SoakReceiver::Standard(r), SoakStream::Standard(s)) => r.begin_frame(s),
            (SoakReceiver::CpRecycle(r), SoakStream::CpRecycle(s)) => r.begin_frame(s),
            _ => unreachable!("stream built by a different receiver family"),
        }
    }

    fn decode_stream(
        &self,
        stream: &mut Self::Stream,
        samples: &[Complex],
        frame_start: usize,
        info: Option<FrameInfo>,
    ) -> ofdmphy::Result<RxFrame> {
        match (self, stream) {
            (SoakReceiver::Standard(r), SoakStream::Standard(s)) => {
                r.decode_stream(s, samples, frame_start, info)
            }
            (SoakReceiver::CpRecycle(r), SoakStream::CpRecycle(s)) => {
                r.decode_stream(s, samples, frame_start, info)
            }
            _ => unreachable!("stream built by a different receiver family"),
        }
    }
}

#[test]
#[ignore = "soak test: run explicitly (CPRECYCLE_SOAK_SECS tunes the duration)"]
fn soak_64_sessions_no_corruption_no_unbounded_memory() {
    let duration = soak_duration();
    let captures: Vec<Vec<Complex>> = (0..SESSIONS)
        .map(|s| station_capture(0xC0FFEE + s as u64))
        .collect();

    // A small ingress bound keeps the driver paced to the receivers: the slow
    // CPRecycle sessions backpressure the feed instead of building a minutes-deep
    // backlog that shutdown (and the golden replay) would then have to chew through.
    let server: RxServer<SoakReceiver> = RxServer::new(ServerConfig {
        queue_capacity: 8,
        ..Default::default()
    });
    let handles: Vec<_> = (0..SESSIONS)
        .map(|s| server.add_session(SoakReceiver::for_session(s), session_config(s)))
        .collect();
    let mut chunk_rngs: Vec<StdRng> = (0..SESSIONS)
        .map(|s| StdRng::seed_from_u64(0xCAFE + s as u64))
        .collect();

    let alloc_base = allocations();
    let start = Instant::now();
    let mut rounds = vec![0usize; SESSIONS];
    let mut events_seen = vec![0usize; SESSIONS];
    let mut samples_fed = 0u64;
    // Round-robin: one full capture pass per session per round, randomized chunks.
    'soak: while start.elapsed() < duration {
        let mut fed_any = false;
        for s in 0..SESSIONS {
            if rounds[s] >= MAX_ROUNDS {
                continue;
            }
            fed_any = true;
            for (lo, hi) in chunk_spans(&mut chunk_rngs[s], captures[s].len()) {
                handles[s].push(&captures[s][lo..hi]).unwrap();
                samples_fed += (hi - lo) as u64;
            }
            rounds[s] += 1;
            // Drain as a real consumer would; holding events for the whole soak
            // would itself be unbounded growth.
            events_seen[s] += handles[s].drain_events().len();
        }
        if !fed_any {
            break 'soak;
        }
    }
    server.shutdown();
    for (s, h) in handles.iter().enumerate() {
        events_seen[s] += h.drain_events().len();
    }
    let alloc_spent = allocations() - alloc_base;

    // --- no unbounded memory growth -------------------------------------------
    let per_sample = alloc_spent as f64 / samples_fed as f64;
    assert!(
        per_sample < 8.0,
        "{alloc_spent} allocations over {samples_fed} samples ({per_sample:.2}/sample) — \
         queued chunks, events or carry-over buffers are accumulating"
    );

    // --- zero sync-state corruption: golden standalone replay ------------------
    for s in 0..SESSIONS {
        assert!(
            handles[s].take_error().is_none(),
            "session {s} hit a fatal error"
        );
        let soaked: SessionCounters = handles[s].counters();
        let mut golden = RxSession::with_config(SoakReceiver::for_session(s), session_config(s));
        let mut rng = StdRng::seed_from_u64(0xCAFE + s as u64);
        for _ in 0..rounds[s] {
            for (lo, hi) in chunk_spans(&mut rng, captures[s].len()) {
                golden.push(&captures[s][lo..hi]).unwrap();
            }
        }
        golden.flush().unwrap();
        assert_eq!(
            soaked,
            golden.counters(),
            "session {s}: counters diverged from the golden replay after {} rounds",
            rounds[s]
        );
        // Every queued event was delivered exactly once across the rolling drains.
        let golden_events = golden.drain_events().len();
        assert_eq!(
            events_seen[s], golden_events,
            "session {s}: delivered event count"
        );
        // The soak decoded real frames (2 per round when every frame survives).
        assert!(
            soaked.frames_decoded >= rounds[s],
            "session {s}: only {} frames decoded over {} rounds",
            soaked.frames_decoded,
            rounds[s]
        );
    }
    eprintln!(
        "soak: {} sessions, {:?}, {} samples, {} allocations ({:.3}/sample), rounds {:?}..{:?}",
        SESSIONS,
        start.elapsed(),
        samples_fed,
        alloc_spent,
        per_sample,
        rounds.iter().min().unwrap(),
        rounds.iter().max().unwrap()
    );
}

// --- 10k-session soak --------------------------------------------------------
//
// The scale test behind the sharded scheduler and the chunk pool: ten thousand
// concurrent sessions, bursty seeded chunk generators, a hard wall-clock
// deadline, and three independent oracles — golden counter replay (determinism),
// a per-sample allocation ceiling (no unbounded memory), and the merged
// metrics snapshot (the ingress-path counters actually moved).
//
// Golden replay at this scale works because sessions are grouped into a small
// number of (capture, receiver-kind) combos: every session in a combo sees a
// byte-identical chunk sequence (the span RNG is seeded by the combo, not the
// session), so one serial replay per combo pins all ~10k sessions.

const BIG_SESSIONS: usize = 10_000;
/// Distinct captures; session `s` replays capture `s % BIG_UNIQUE`.
const BIG_UNIQUE: usize = 16;
/// Every 128th session runs the CPRecycle receiver with a rolling model.
const BIG_CPRECYCLE_EVERY: usize = 128;
/// Hard cap on rounds so the golden replay stays tractable on fast machines.
const BIG_MAX_ROUNDS: usize = 40;

fn big_is_cprecycle(s: usize) -> bool {
    s.is_multiple_of(BIG_CPRECYCLE_EVERY)
}

/// A shorter station capture for the 10k soak: lead noise, ONE frame, trailing
/// pad — small enough that a full round over 10k sessions fits the CI deadline.
fn short_capture(seed: u64) -> Vec<Complex> {
    let tx = Transmitter::new(params());
    let mcs = Mcs::new(Modulation::Qpsk, CodeRate::Half);
    let mut rng = StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..24).map(|_| rng.gen()).collect();
    let frame = tx.build_frame(&payload, mcs, 0x70).unwrap();
    let power = rfdsp::power::signal_power(&frame.samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(28.0);
    let mut g = rfdsp::noise::GaussianSource::new();
    let lead = rng.gen_range(150..300);
    let mut capture = g.complex_vector(&mut rng, lead, noise_var);
    capture.extend_from_slice(&frame.samples);
    capture.extend(g.complex_vector(&mut rng, 200, noise_var));
    let mut chan = AwgnChannel::new();
    chan.add_noise_variance(&mut rng, &mut capture, noise_var)
        .unwrap();
    capture
}

#[test]
#[ignore = "10k-session soak: run explicitly (CPRECYCLE_SOAK_SECS tunes the deadline)"]
fn soak_10k_sessions_golden_replay_and_metrics() {
    let deadline = soak_duration();
    let captures: Vec<Vec<Complex>> = (0..BIG_UNIQUE)
        .map(|u| short_capture(0xB16B00 + u as u64))
        .collect();

    let server: RxServer<SoakReceiver> = RxServer::new(ServerConfig {
        queue_capacity: 4,
        ..Default::default()
    });
    let handles: Vec<_> = (0..BIG_SESSIONS)
        .map(|s| {
            server.add_session(
                SoakReceiver::for_kind(big_is_cprecycle(s)),
                config_for_kind(big_is_cprecycle(s)),
            )
        })
        .collect();
    // The span RNG is seeded by the *combo*, so every session of a combo pushes a
    // byte-identical chunk sequence and one golden replay covers them all.
    let mut chunk_rngs: Vec<StdRng> = (0..BIG_SESSIONS)
        .map(|s| StdRng::seed_from_u64(0xFEED + (s % BIG_UNIQUE) as u64))
        .collect();

    let alloc_base = allocations();
    let start = Instant::now();
    let mut rounds_done = 0usize;
    let mut events_seen = vec![0usize; BIG_SESSIONS];
    let mut samples_fed = 0u64;
    // Deadline checked *between* rounds: every session completes the same number
    // of rounds, which is what makes the per-combo golden replay exact.
    while rounds_done < BIG_MAX_ROUNDS {
        for s in 0..BIG_SESSIONS {
            let capture = &captures[s % BIG_UNIQUE];
            for (lo, hi) in chunk_spans(&mut chunk_rngs[s], capture.len()) {
                handles[s].push(&capture[lo..hi]).unwrap();
                samples_fed += (hi - lo) as u64;
            }
            events_seen[s] += handles[s].drain_events().len();
        }
        rounds_done += 1;
        if start.elapsed() >= deadline {
            break;
        }
    }
    server.shutdown();
    for (s, h) in handles.iter().enumerate() {
        events_seen[s] += h.drain_events().len();
    }
    let alloc_spent = allocations() - alloc_base;

    // --- no unbounded memory growth -------------------------------------------
    let per_sample = alloc_spent as f64 / samples_fed as f64;
    assert!(
        per_sample < 8.0,
        "{alloc_spent} allocations over {samples_fed} samples ({per_sample:.2}/sample) — \
         queued chunks, events or carry-over buffers are accumulating"
    );

    // --- ingress-path counters moved and landed in the merged snapshot ----------
    let snap = server.metrics_snapshot();
    for key in [
        "chunk_pool_hits",
        "chunk_pool_misses",
        "chunk_pool_recycled",
        "ring_full_rejections",
        "pool_steals",
    ] {
        assert!(
            snap.counters.contains_key(key),
            "merged snapshot missing ingress counter {key}"
        );
    }
    assert_eq!(
        snap.counter("chunk_pool_hits") + snap.counter("chunk_pool_misses"),
        snap.counter("chunk_pool_recycled") + snap.counter("chunk_pool_dropped"),
        "every acquired buffer was released exactly once"
    );
    assert_eq!(snap.counter("samples_pushed"), samples_fed);
    let p50 = snap
        .gauge("push_decode_p50_ns")
        .expect("aggregate p50 gauge");
    let p95 = snap
        .gauge("push_decode_p95_ns")
        .expect("aggregate p95 gauge");
    let p99 = snap
        .gauge("push_decode_p99_ns")
        .expect("aggregate p99 gauge");
    assert!(
        p50 <= p95 && p95 <= p99,
        "latency percentiles out of order: p50={p50} p95={p95} p99={p99}"
    );
    assert!(
        snap.stages.iter().any(|s| s.stage == "push_decode"),
        "aggregate push_decode stage histogram missing"
    );

    // --- zero sync-state corruption: golden replay, one per combo ---------------
    let mut golden: std::collections::HashMap<(usize, bool), (SessionCounters, usize)> =
        std::collections::HashMap::new();
    for s in 0..BIG_SESSIONS {
        let combo = (s % BIG_UNIQUE, big_is_cprecycle(s));
        let (want_counters, want_events) = golden.entry(combo).or_insert_with(|| {
            let mut session =
                RxSession::with_config(SoakReceiver::for_kind(combo.1), config_for_kind(combo.1));
            let mut rng = StdRng::seed_from_u64(0xFEED + combo.0 as u64);
            for _ in 0..rounds_done {
                for (lo, hi) in chunk_spans(&mut rng, captures[combo.0].len()) {
                    session.push(&captures[combo.0][lo..hi]).unwrap();
                }
            }
            session.flush().unwrap();
            let events = session.drain_events().len();
            (session.counters(), events)
        });
        assert!(
            handles[s].take_error().is_none(),
            "session {s} hit a fatal error"
        );
        let soaked = handles[s].counters();
        assert_eq!(
            &soaked, want_counters,
            "session {s} (combo {combo:?}): counters diverged from the golden replay \
             after {rounds_done} rounds"
        );
        assert_eq!(
            events_seen[s], *want_events,
            "session {s} (combo {combo:?}): delivered event count"
        );
        assert!(
            soaked.frames_decoded >= rounds_done,
            "session {s}: only {} frames decoded over {rounds_done} rounds",
            soaked.frames_decoded
        );
    }
    eprintln!(
        "10k soak: {} sessions, {} combos, {} rounds, {:?}, {} samples, \
         {} allocations ({:.3}/sample), steals {}",
        BIG_SESSIONS,
        golden.len(),
        rounds_done,
        start.elapsed(),
        samples_fed,
        alloc_spent,
        per_sample,
        snap.counter("pool_steals"),
    );
}
