//! Property tests for streaming sessions — the tentpole invariants of the
//! streaming-receiver redesign:
//!
//! * a capture pushed through an [`RxSession`] in chunks of **any** size decodes
//!   **bit-for-bit** identically to the batch path (whole-buffer
//!   `Synchronizer::detect` + `decode_frame` at the detected start): same
//!   [`SyncResult`] bits, same PSDU, same FCS verdict, same subcarrier decisions —
//!   for chunk sizes {1, 7, 64, 480, whole-capture}, random lead-in/trailing gaps,
//!   clean and interfered captures, both receivers;
//! * a multi-frame capture (3 frames, distinct payloads, random gaps) is recovered
//!   in order for every chunking, and every chunking agrees with every other.

use cprecycle::session::{RxEvent, RxSession, SessionConfig};
use cprecycle::{CpRecycleConfig, CpRecycleReceiver};
use ofdmphy::convcode::CodeRate;
use ofdmphy::frame::{Mcs, Transmitter};
use ofdmphy::modulation::Modulation;
use ofdmphy::params::OfdmParams;
use ofdmphy::rx::{FrameReceiver, RxFrame, StandardReceiver};
use ofdmphy::sync::{SyncResult, Synchronizer};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rfdsp::Complex;
use wirelesschan::awgn::AwgnChannel;
use wirelesschan::mixer::{combine, InterfererSpec};

const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 480];

fn params() -> OfdmParams {
    OfdmParams::ieee80211ag()
}

fn mcs() -> Mcs {
    Mcs::new(Modulation::Qpsk, CodeRate::Half)
}

/// One frame between noise pads, optionally behind an asynchronous interferer.
fn build_capture(
    pad: usize,
    trailing: usize,
    seed: u64,
    snr_db: f64,
    interfered: bool,
) -> (Vec<Complex>, Vec<u8>) {
    let tx = Transmitter::new(params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..80).map(|_| rng.gen()).collect();
    let frame = tx.build_frame(&payload, mcs(), 0x5D).unwrap();
    let mut body = frame.samples.clone();
    if interfered {
        let intf = tx
            .build_frame(
                &(0..200).map(|_| rng.gen()).collect::<Vec<u8>>(),
                Mcs::new(Modulation::Qam16, CodeRate::Half),
                0x2F,
            )
            .unwrap();
        let spec = InterfererSpec::new(intf.samples, 0.0017, 23.7, 4.0);
        body = combine(&body, &[spec]).unwrap().composite;
    }
    let power = rfdsp::power::signal_power(&frame.samples).unwrap();
    let noise_var = power / rfdsp::power::db_to_lin(snr_db);
    let mut g = rfdsp::noise::GaussianSource::new();
    let mut capture = g.complex_vector(&mut rng, pad, noise_var);
    capture.extend(body);
    capture.extend(g.complex_vector(&mut rng, trailing, noise_var));
    let mut chan = AwgnChannel::new();
    chan.add_noise_variance(&mut rng, &mut capture, noise_var)
        .unwrap();
    (capture, payload)
}

fn assert_frames_bit_identical(a: &RxFrame, b: &RxFrame, context: &str) {
    assert_eq!(a.info, b.info, "{context}: info");
    assert_eq!(a.psdu, b.psdu, "{context}: psdu");
    assert_eq!(a.crc_ok, b.crc_ok, "{context}: crc");
    assert_eq!(a.payload, b.payload, "{context}: payload");
    assert_eq!(
        a.equalized_symbols.len(),
        b.equalized_symbols.len(),
        "{context}: symbol count"
    );
    for (i, (x, y)) in a
        .equalized_symbols
        .iter()
        .zip(&b.equalized_symbols)
        .enumerate()
    {
        for (j, (u, v)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                u.re.to_bits(),
                v.re.to_bits(),
                "{context}: symbol {i} bin {j} re"
            );
            assert_eq!(
                u.im.to_bits(),
                v.im.to_bits(),
                "{context}: symbol {i} bin {j} im"
            );
        }
    }
}

/// Streams `capture` through a session in `chunk`-sized pieces; returns the first
/// detection and decoded frame.
fn stream_once<R: FrameReceiver>(
    receiver: R,
    capture: &[Complex],
    chunk: usize,
) -> (SyncResult, RxFrame) {
    let mut session = RxSession::with_config(receiver, SessionConfig::default());
    for c in capture.chunks(chunk.max(1)) {
        session.push(c).unwrap();
    }
    session.flush().unwrap();
    let mut sync = None;
    let mut frame = None;
    for event in session.drain_events() {
        match event {
            RxEvent::FrameDetected { sync: s } if sync.is_none() => sync = Some(s),
            RxEvent::FrameDecoded { frame: f, .. } if frame.is_none() => frame = Some(*f),
            _ => {}
        }
    }
    (
        sync.expect("session detected the frame"),
        frame.expect("session decoded the frame"),
    )
}

/// The batch reference: whole-buffer detect + decode at the detected start.
fn batch_reference<F>(sync: &Synchronizer, capture: &[Complex], decode: F) -> (SyncResult, RxFrame)
where
    F: FnOnce(&[Complex], usize) -> cprecycle::Result<RxFrame>,
{
    let s = sync
        .detect(capture)
        .unwrap()
        .expect("batch detected the frame");
    let frame = decode(capture, s.frame_start).unwrap();
    (s, frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunked session decode ≡ batch decode, bit-for-bit, for every chunk size,
    /// random gaps, clean and interfered captures — the CPRecycle receiver.
    #[test]
    fn cprecycle_session_equals_batch_for_every_chunking(
        seed in any::<u64>(),
        pad in 220usize..900,
        trailing in 260usize..600,
        interfered in any::<bool>(),
    ) {
        let (capture, _) = build_capture(pad, trailing, seed, 26.0, interfered);
        let sync = Synchronizer::new(params());
        let rx = CpRecycleReceiver::new(params(), CpRecycleConfig::default());
        let (batch_sync, batch_frame) = batch_reference(
            &sync,
            &capture,
            |samples, start| rx.decode_frame(samples, start, None),
        );
        for chunk in CHUNK_SIZES.iter().copied().chain([capture.len()]) {
            let rx = CpRecycleReceiver::new(params(), CpRecycleConfig::default());
            let (s, f) = stream_once(rx, &capture, chunk);
            prop_assert_eq!(s, batch_sync, "chunk {} sync", chunk);
            assert_frames_bit_identical(&f, &batch_frame, &format!("chunk {chunk}"));
        }
    }

    /// The same property for the standard receiver behind the same session type.
    #[test]
    fn standard_session_equals_batch_for_every_chunking(
        seed in any::<u64>(),
        pad in 220usize..900,
        trailing in 260usize..600,
    ) {
        let (capture, _) = build_capture(pad, trailing, seed, 26.0, false);
        let sync = Synchronizer::new(params());
        let rx = StandardReceiver::new(params());
        let (batch_sync, batch_frame) = batch_reference(
            &sync,
            &capture,
            |samples, start| rx.decode_frame(samples, start, None),
        );
        for chunk in CHUNK_SIZES.iter().copied().chain([capture.len()]) {
            let rx = StandardReceiver::new(params());
            let (s, f) = stream_once(rx, &capture, chunk);
            prop_assert_eq!(s, batch_sync, "chunk {} sync", chunk);
            assert_frames_bit_identical(&f, &batch_frame, &format!("chunk {chunk}"));
        }
    }

    /// Multi-frame captures: three frames with distinct payloads and random gaps are
    /// all recovered, in order, identically for every chunking.
    #[test]
    fn multi_frame_capture_is_chunking_invariant(
        seed in any::<u64>(),
        gap1 in 130usize..500,
        gap2 in 130usize..500,
    ) {
        let tx = Transmitter::new(params());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let payloads: Vec<Vec<u8>> = (0..3)
            .map(|_| (0..60).map(|_| rng.gen()).collect())
            .collect();
        let power;
        let mut capture;
        {
            let first = tx.build_frame(&payloads[0], mcs(), 0x11).unwrap();
            power = rfdsp::power::signal_power(&first.samples).unwrap();
            let noise_var = power / rfdsp::power::db_to_lin(27.0);
            let mut g = rfdsp::noise::GaussianSource::new();
            capture = g.complex_vector(&mut rng, 300, noise_var);
            capture.extend(first.samples);
            for (i, gap) in [gap1, gap2].iter().enumerate() {
                capture.extend(g.complex_vector(&mut rng, *gap, noise_var));
                let frame = tx
                    .build_frame(&payloads[i + 1], mcs(), 0x12 + i as u8)
                    .unwrap();
                capture.extend(frame.samples);
            }
            capture.extend(g.complex_vector(&mut rng, 300, noise_var));
            let mut chan = AwgnChannel::new();
            chan.add_noise_variance(&mut rng, &mut capture, noise_var).unwrap();
        }

        let mut reference: Option<Vec<(SyncResult, Vec<u8>)>> = None;
        for chunk in CHUNK_SIZES.iter().copied().chain([capture.len()]) {
            let rx = CpRecycleReceiver::new(params(), CpRecycleConfig::default());
            let mut session = RxSession::new(rx);
            for c in capture.chunks(chunk) {
                session.push(c).unwrap();
            }
            session.flush().unwrap();
            let mut detections = Vec::new();
            let mut decoded = Vec::new();
            for event in session.drain_events() {
                match event {
                    RxEvent::FrameDetected { sync } => detections.push(sync),
                    RxEvent::FrameDecoded { frame, .. } => {
                        prop_assert!(frame.crc_ok, "chunk {}: FCS failed", chunk);
                        decoded.push(frame.payload.clone().unwrap());
                    }
                    RxEvent::FalseAlarm { .. } | RxEvent::SyncLost { .. } => {}
                }
            }
            prop_assert_eq!(&decoded, &payloads, "chunk {}: payloads in order", chunk);
            let outcome: Vec<(SyncResult, Vec<u8>)> =
                detections.into_iter().zip(decoded).collect();
            match &reference {
                None => reference = Some(outcome),
                Some(r) => prop_assert_eq!(r, &outcome, "chunk {} vs first chunking", chunk),
            }
        }
    }
}
