//! Checkpoint persistence: campaign results as JSON files.
//!
//! The checkpoint format *is* [`CampaignResult`]'s JSON form — there is no separate
//! on-disk schema to drift. A half-finished campaign (killed mid-run) persists every
//! completed point; [`crate::exec::RunOptions::resume_from`] then skips those points,
//! and grids extended with new points rerun only the additions.
//!
//! Writes are atomic (temp file + rename) so an interrupted write never corrupts an
//! existing checkpoint.
//!
//! Scope of the contract: a checkpoint is resumable by the **same binary version**.
//! Point keys encode the outcome-relevant parameters the harness chooses to put in
//! them (receiver configs do include the segment-extraction kernel), but any code
//! change that alters trial numerics without changing the key — a DSP kernel tweak,
//! a channel-model fix — makes mixed old/new tallies irreproducible by either
//! version alone. Cross-version resume is therefore out of contract; rerun the
//! campaign instead.

use crate::exec::EngineError;
use crate::tally::CampaignResult;
use cpjson::{FromJson, ToJson, Value};
use std::path::Path;

/// Serialises `result` to pretty JSON and writes it atomically to `path`.
pub fn save_campaign(result: &CampaignResult, path: &Path) -> Result<(), EngineError> {
    let text = result.to_json().pretty();
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes()).map_err(|e| EngineError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| EngineError::Io(e.to_string()))
}

/// Loads a campaign checkpoint from `path`.
pub fn load_campaign(path: &Path) -> Result<CampaignResult, EngineError> {
    let text = std::fs::read_to_string(path).map_err(|e| EngineError::Io(e.to_string()))?;
    let value = Value::parse(&text)
        .map_err(|e| EngineError::Checkpoint(format!("{}: {e}", path.display())))?;
    CampaignResult::from_json(&value)
        .map_err(|e| EngineError::Checkpoint(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_campaign, RunOptions};
    use crate::spec::{CampaignConfig, CampaignPoint};
    use crate::tally::{TrialOutcome, TrialRecord};
    use rand::Rng;

    struct P(u32);

    impl CampaignPoint for P {
        fn key(&self) -> String {
            format!("p{}", self.0)
        }

        fn arm_labels(&self) -> Vec<String> {
            vec!["arm".into()]
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "cprecycle-engine-test-{}-{name}.json",
            std::process::id()
        ))
    }

    fn run(points: &[P], sink: Option<&(dyn Fn(&CampaignResult) + Sync)>) -> CampaignResult {
        let config = CampaignConfig::new("ckpt-test", 11).trials(12).threads(3);
        run_campaign(
            &config,
            points,
            || (),
            |_, _p, _pi, _ti, rng: &mut rand::rngs::StdRng| -> Result<TrialRecord, String> {
                let draw: f64 = rng.gen();
                Ok(TrialRecord {
                    arms: vec![TrialOutcome::new(draw < 0.5, draw)],
                })
            },
            &RunOptions {
                on_point_complete: sink,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp_path("roundtrip");
        let result = run(&[P(1), P(2)], None);
        save_campaign(&result, &path).unwrap();
        let back = load_campaign(&path).unwrap();
        assert_eq!(back.deterministic_view(), result.deterministic_view());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_checkpoints_resume_cleanly() {
        // Simulate a crash after the first completed point by keeping only the first
        // snapshot the sink sees, then resume from it.
        let path = tmp_path("incremental");
        {
            let path = path.clone();
            let wrote = std::sync::atomic::AtomicBool::new(false);
            let sink = move |snapshot: &CampaignResult| {
                if !wrote.swap(true, std::sync::atomic::Ordering::SeqCst) {
                    save_campaign(snapshot, &path).unwrap();
                }
            };
            run(&[P(1), P(2), P(3)], Some(&sink));
        }
        let partial = load_campaign(&path).unwrap();
        assert_eq!(partial.points.iter().filter(|p| p.complete).count(), 1);

        // Resume: only the incomplete points are recomputed, and the final result is
        // bit-identical to a fresh full run (determinism across resume boundaries).
        let fresh = run(&[P(1), P(2), P(3)], None);
        let config = CampaignConfig::new("ckpt-test", 11).trials(12).threads(3);
        let resumed = run_campaign(
            &config,
            &[P(1), P(2), P(3)],
            || (),
            |_, _p, _pi, _ti, rng: &mut rand::rngs::StdRng| -> Result<TrialRecord, String> {
                let draw: f64 = rng.gen();
                Ok(TrialRecord {
                    arms: vec![TrialOutcome::new(draw < 0.5, draw)],
                })
            },
            &RunOptions {
                resume_from: Some(&partial),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.deterministic_view(), fresh.deterministic_view());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(matches!(
            load_campaign(&path),
            Err(EngineError::Checkpoint(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(load_campaign(&path), Err(EngineError::Io(_))));
    }
}
