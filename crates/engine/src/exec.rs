//! The parallel campaign executor.
//!
//! Work distribution: all `(point, trial)` pairs of the points that still need
//! computing form one flat queue, claimed trial-by-trial through an atomic cursor.
//! Dynamic claiming means an imbalanced grid (cheap clean-channel points next to
//! expensive 64-QAM points) still keeps every worker busy until the queue drains —
//! the work-stealing property that matters for campaign shapes, without per-thread
//! deques.
//!
//! Determinism: a trial's RNG is derived from `(master seed, point key, trial index)`
//! alone, and the reduction into [`ArmTally`]s walks recorded trials in index order.
//! Scheduling therefore cannot influence any tallied value, so serial and parallel
//! runs agree bit-for-bit; see `tests/determinism.rs` for the enforced contract.
//!
//! Worker-local state: each worker thread builds one `S` via the caller's factory and
//! reuses it for every trial it claims. The experiment harness keeps constructed
//! receivers, FFT plans and segment-extraction scratch (the sliding-DFT plan and its
//! working buffers) there, so per-trial allocations and twiddle-table construction
//! happen once per worker rather than once per trial.

use crate::seed::trial_rng;
use crate::spec::{CampaignConfig, CampaignPoint};
use crate::tally::{ArmTally, CampaignResult, PointResult, TrialRecord};
use obs::{Recorder, Span};
use rand::rngs::StdRng;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A trial closure failed; the first failure in `(point, trial)` order is kept.
    Trial {
        /// Key of the failing point.
        point_key: String,
        /// Trial index within the point.
        trial: usize,
        /// Rendered error from the trial closure.
        message: String,
    },
    /// Checkpoint I/O failed.
    Io(
        /// Rendered `std::io::Error`.
        String,
    ),
    /// A checkpoint file could not be parsed or did not match the campaign.
    Checkpoint(
        /// What went wrong.
        String,
    ),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Trial {
                point_key,
                trial,
                message,
            } => write!(f, "trial {trial} of point `{point_key}` failed: {message}"),
            EngineError::Io(e) => write!(f, "campaign I/O error: {e}"),
            EngineError::Checkpoint(e) => write!(f, "campaign checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Periodic progress reporting on stderr while a campaign runs.
#[derive(Debug, Clone, Copy)]
pub struct ProgressOptions {
    /// Minimum seconds between progress lines (a line is always printed when the
    /// last trial lands).
    pub interval_secs: f64,
}

impl Default for ProgressOptions {
    fn default() -> Self {
        ProgressOptions { interval_secs: 1.0 }
    }
}

/// Options of one engine run.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// A previously recorded result to resume from: points whose key matches a
    /// complete recorded point (under the same master seed and trial count) are copied
    /// instead of recomputed.
    pub resume_from: Option<&'a CampaignResult>,
    /// Called with a snapshot after every point completes; the `campaign` CLI uses it
    /// to write the checkpoint file incrementally.
    #[allow(clippy::type_complexity)]
    pub on_point_complete: Option<&'a (dyn Fn(&CampaignResult) + Sync)>,
    /// When set, periodic `completed/total trials, trials/sec, ETA` lines go to
    /// stderr (`campaign run` enables this unless `--quiet`).
    pub progress: Option<ProgressOptions>,
    /// When set, the executor reports per-trial timing (span `("trial", "")`),
    /// the `trials_completed`/`trials_failed` counters and per-worker
    /// throughput gauges into this recorder. `None` keeps the hot loop free of
    /// any instrumentation work.
    pub recorder: Option<&'a (dyn Recorder + Sync)>,
}

/// Per-point mutable state while a run is in flight.
struct PointProgress {
    /// Recorded trials, indexed by trial number; `None` until the trial lands.
    records: Vec<Option<TrialRecord>>,
    /// Number of landed trials.
    done: usize,
    /// Sum of individual trial durations.
    elapsed_secs: f64,
}

struct Collector {
    progress: Vec<PointProgress>,
    /// Finished per-point results, keyed by point index.
    finished: Vec<Option<PointResult>>,
    /// First trial error in flat-index order.
    first_error: Option<(usize, EngineError)>,
    /// Trials landed so far, across all points.
    completed: usize,
    /// When the last progress line was printed.
    last_print: Instant,
}

/// Renders a second count as a compact ETA (`"42s"`, `"3m07s"`, `"1h02m"`).
fn format_eta(secs: f64) -> String {
    if !secs.is_finite() {
        return "?".into();
    }
    let secs = secs.round().max(0.0) as u64;
    if secs < 60 {
        format!("{secs}s")
    } else if secs < 3600 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    }
}

/// Runs a campaign: every point of `points` measured by
/// [`CampaignConfig::trials_per_point`] trials of `trial`, in parallel over
/// [`CampaignConfig::effective_threads`] workers.
///
/// `new_worker` builds one worker-local state per thread (receiver caches, FFT plans,
/// scratch buffers); `trial` receives that state, the point, the point/trial indices
/// and the trial's derived RNG, and returns one [`TrialRecord`] with an outcome per
/// arm (in `point.arm_labels()` order).
pub fn run_campaign<P, S, E, NW, T>(
    config: &CampaignConfig,
    points: &[P],
    new_worker: NW,
    trial: T,
    options: &RunOptions<'_>,
) -> Result<CampaignResult, EngineError>
where
    P: CampaignPoint,
    E: fmt::Display,
    NW: Fn() -> S + Sync,
    T: Fn(&mut S, &P, usize, usize, &mut StdRng) -> Result<TrialRecord, E> + Sync,
{
    let start = Instant::now();
    let trials = config.trials_per_point;

    // Resolve which points can be copied from the resumed result.
    let mut reused: Vec<Option<PointResult>> = points.iter().map(|_| None).collect();
    if let Some(prior) = options.resume_from {
        if prior.master_seed == config.master_seed && prior.trials_per_point == trials {
            for (i, point) in points.iter().enumerate() {
                if let Some(done) = prior.point(&point.key()) {
                    if done.complete && done.trials == trials {
                        reused[i] = Some(done.clone());
                    }
                }
            }
        }
    }

    let pending: Vec<usize> = (0..points.len()).filter(|i| reused[*i].is_none()).collect();
    let arm_labels: Vec<Vec<String>> = points.iter().map(|p| p.arm_labels()).collect();
    let keys: Vec<String> = points.iter().map(|p| p.key()).collect();

    let collector = Mutex::new(Collector {
        progress: pending
            .iter()
            .map(|_| PointProgress {
                records: (0..trials).map(|_| None).collect(),
                done: 0,
                elapsed_secs: 0.0,
            })
            .collect(),
        finished: points.iter().map(|_| None).collect(),
        first_error: None,
        completed: 0,
        last_print: start,
    });

    let total_work = pending.len() * trials;
    let workers = config.effective_threads().min(total_work.max(1));

    let assemble_snapshot = |collector: &Collector| -> CampaignResult {
        let mut out: Vec<PointResult> = Vec::with_capacity(points.len());
        for (i, key) in keys.iter().enumerate() {
            if let Some(r) = &reused[i] {
                out.push(r.clone());
            } else if let Some(r) = &collector.finished[i] {
                out.push(r.clone());
            } else {
                // Incomplete point: record its identity so inspect shows progress.
                let pi = pending.iter().position(|p| *p == i).expect("pending point");
                let progress = &collector.progress[pi];
                out.push(PointResult {
                    key: key.clone(),
                    label: points[i].label(),
                    complete: false,
                    trials: progress.done,
                    arms: arm_labels[i]
                        .iter()
                        .map(|l| ArmTally::empty(l.clone()))
                        .collect(),
                    elapsed_secs: progress.elapsed_secs,
                });
            }
        }
        CampaignResult {
            name: config.name.clone(),
            master_seed: config.master_seed,
            trials_per_point: trials,
            points: out,
            total_elapsed_secs: start.elapsed().as_secs_f64(),
            threads: workers,
        }
    };

    // Per-worker context threaded through the claiming loop: the caller's state plus
    // the gauges this worker accumulates.
    struct WorkerCtx<S> {
        w: usize,
        state: S,
        local_trials: u64,
        busy_secs: f64,
    }

    crate::pool::run_claiming(
        workers,
        total_work,
        |w| WorkerCtx {
            w,
            state: new_worker(),
            local_trials: 0,
            busy_secs: 0.0,
        },
        |ctx, flat| {
            let pending_idx = flat / trials;
            let trial_idx = flat % trials;
            let point_idx = pending[pending_idx];
            let point = &points[point_idx];
            let mut rng = trial_rng(config.master_seed, &keys[point_idx], trial_idx as u64);
            let trial_start = Instant::now();
            let outcome = trial(&mut ctx.state, point, point_idx, trial_idx, &mut rng);
            let spent = trial_start.elapsed();
            let duration = spent.as_secs_f64();
            ctx.local_trials += 1;
            ctx.busy_secs += duration;
            if let Some(rec) = options.recorder {
                rec.stage_nanos(
                    Span::new("trial", ""),
                    spent.as_nanos().min(u64::MAX as u128) as u64,
                );
                rec.counter(
                    if outcome.is_ok() {
                        "trials_completed"
                    } else {
                        "trials_failed"
                    },
                    1,
                );
            }

            let mut guard = collector.lock().expect("collector poisoned");
            match outcome {
                Ok(record) => {
                    guard.completed += 1;
                    if let Some(p) = &options.progress {
                        let done = guard.completed;
                        let now = Instant::now();
                        let due =
                            now.duration_since(guard.last_print).as_secs_f64() >= p.interval_secs;
                        if due || done == total_work {
                            guard.last_print = now;
                            let elapsed = start.elapsed().as_secs_f64();
                            let rate = if elapsed > 0.0 {
                                done as f64 / elapsed
                            } else {
                                0.0
                            };
                            let eta = if rate > 0.0 {
                                format_eta((total_work - done) as f64 / rate)
                            } else {
                                "?".into()
                            };
                            let pct = 100.0 * done as f64 / total_work.max(1) as f64;
                            eprintln!(
                                "[{}] {done}/{total_work} trials ({pct:.1}%), \
                                 {rate:.1} trials/sec, ETA {eta}",
                                config.name
                            );
                        }
                    }
                    let progress = &mut guard.progress[pending_idx];
                    progress.records[trial_idx] = Some(record);
                    progress.done += 1;
                    progress.elapsed_secs += duration;
                    if progress.done == trials {
                        let result = finalize_point(
                            &keys[point_idx],
                            points[point_idx].label(),
                            &arm_labels[point_idx],
                            &mut guard.progress[pending_idx],
                        );
                        guard.finished[point_idx] = Some(result);
                        if let Some(sink) = options.on_point_complete {
                            let snapshot = assemble_snapshot(&guard);
                            drop(guard);
                            sink(&snapshot);
                        }
                    }
                    std::ops::ControlFlow::Continue(())
                }
                Err(e) => {
                    let err = EngineError::Trial {
                        point_key: keys[point_idx].clone(),
                        trial: trial_idx,
                        message: e.to_string(),
                    };
                    match &guard.first_error {
                        Some((at, _)) if *at <= flat => {}
                        _ => guard.first_error = Some((flat, err)),
                    }
                    std::ops::ControlFlow::Break(())
                }
            }
        },
        |ctx| {
            if let Some(rec) = options.recorder {
                rec.gauge(&format!("worker.{}.trials", ctx.w), ctx.local_trials as f64);
                rec.gauge(&format!("worker.{}.busy_secs", ctx.w), ctx.busy_secs);
            }
        },
    );

    let guard = collector.into_inner().expect("collector poisoned");
    if let Some((_, err)) = guard.first_error {
        return Err(err);
    }
    Ok(assemble_snapshot(&guard))
}

/// Reduces a point's recorded trials — in trial-index order, for bit-stable floating
/// point sums — into per-arm tallies.
fn finalize_point(
    key: &str,
    label: String,
    arm_labels: &[String],
    progress: &mut PointProgress,
) -> PointResult {
    let mut arms: Vec<ArmTally> = arm_labels
        .iter()
        .map(|l| ArmTally::empty(l.clone()))
        .collect();
    let mut reduced = 0usize;
    for record in progress.records.iter().flatten() {
        assert_eq!(
            record.arms.len(),
            arms.len(),
            "trial of point `{key}` returned {} arm outcomes, expected {}",
            record.arms.len(),
            arms.len()
        );
        for (tally, outcome) in arms.iter_mut().zip(&record.arms) {
            tally.trials += 1;
            if outcome.success {
                tally.successes += 1;
            }
            tally.metric_sum += outcome.metric;
            tally.samples.extend_from_slice(&outcome.samples);
        }
        reduced += 1;
    }
    // Free the per-trial records eagerly; long campaigns hold many points.
    progress.records.clear();
    progress.records.shrink_to_fit();
    PointResult {
        key: key.to_string(),
        label,
        complete: true,
        trials: reduced,
        arms,
        elapsed_secs: progress.elapsed_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::TrialOutcome;
    use rand::Rng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct TestPoint {
        name: String,
        threshold: f64,
    }

    impl CampaignPoint for TestPoint {
        fn key(&self) -> String {
            format!("{}:thr={}", self.name, self.threshold)
        }

        fn arm_labels(&self) -> Vec<String> {
            vec!["low".into(), "high".into()]
        }
    }

    fn test_points() -> Vec<TestPoint> {
        vec![
            TestPoint {
                name: "a".into(),
                threshold: 0.3,
            },
            TestPoint {
                name: "b".into(),
                threshold: 0.6,
            },
            TestPoint {
                name: "c".into(),
                threshold: 0.9,
            },
        ]
    }

    fn test_trial(
        calls: &mut usize,
        point: &TestPoint,
        _pi: usize,
        _ti: usize,
        rng: &mut StdRng,
    ) -> Result<TrialRecord, String> {
        *calls += 1;
        let draw: f64 = rng.gen();
        Ok(TrialRecord {
            arms: vec![
                TrialOutcome::new(draw < point.threshold, draw),
                TrialOutcome {
                    success: draw < point.threshold + 0.05,
                    metric: draw * 0.5,
                    samples: vec![(draw * 10.0).floor()],
                },
            ],
        })
    }

    fn run(threads: usize, trials: usize) -> CampaignResult {
        let config = CampaignConfig::new("exec-test", 0xDECAF)
            .trials(trials)
            .threads(threads);
        run_campaign(
            &config,
            &test_points(),
            || 0usize,
            test_trial,
            &RunOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn tallies_reflect_trial_outcomes() {
        let result = run(1, 400);
        assert_eq!(result.points.len(), 3);
        for point in &result.points {
            assert!(point.complete);
            assert_eq!(point.trials, 400);
            assert_eq!(point.arms.len(), 2);
            assert_eq!(point.arms[1].samples.len(), 400);
        }
        // Success rates track the per-point thresholds (law of large numbers).
        for (point, expected) in result.points.iter().zip([0.3, 0.6, 0.9]) {
            let rate = point.arms[0].success_rate();
            assert!(
                (rate - expected).abs() < 0.08,
                "{}: rate {rate} vs threshold {expected}",
                point.key
            );
            // The second arm has a slightly looser threshold, so it can only do better.
            assert!(point.arms[1].successes >= point.arms[0].successes);
        }
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let serial = run(1, 100);
        for threads in [2, 4, 7] {
            let parallel = run(threads, 100);
            assert_eq!(
                serial.deterministic_view(),
                parallel.deterministic_view(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn single_trial_replay_matches_recorded_outcome() {
        let result = run(4, 50);
        let points = test_points();
        // Replay trial 17 of point "b" in isolation and compare against the aggregate:
        // re-running all trials of that point serially must reproduce the tally, and
        // the replayed draw must match what the recorded tally implies.
        let point = &points[1];
        let mut rng = trial_rng(0xDECAF, &point.key(), 17);
        let mut calls = 0usize;
        let replayed = test_trial(&mut calls, point, 1, 17, &mut rng).unwrap();
        // Reconstruct the same trial's contribution by rerunning the whole point.
        let mut metric_sum = 0.0;
        let mut successes = 0usize;
        for t in 0..50usize {
            let mut rng = trial_rng(0xDECAF, &point.key(), t as u64);
            let record = test_trial(&mut calls, point, 1, t, &mut rng).unwrap();
            if t == 17 {
                assert_eq!(record, replayed, "replay must be bit-identical");
            }
            metric_sum += record.arms[0].metric;
            if record.arms[0].success {
                successes += 1;
            }
        }
        let recorded = result.point(&point.key()).unwrap();
        assert_eq!(recorded.arms[0].successes, successes);
        assert_eq!(recorded.arms[0].metric_sum.to_bits(), metric_sum.to_bits());
    }

    #[test]
    fn resume_skips_completed_points_and_runs_new_ones() {
        let first = run(2, 60);
        let mut points = test_points();
        points.push(TestPoint {
            name: "d".into(),
            threshold: 0.5,
        });
        let config = CampaignConfig::new("exec-test", 0xDECAF)
            .trials(60)
            .threads(2);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let resumed = run_campaign(
            &config,
            &points,
            || (),
            |_, point, pi, ti, rng| {
                calls.fetch_add(1, Ordering::Relaxed);
                let mut c = 0usize;
                test_trial(&mut c, point, pi, ti, rng)
            },
            &RunOptions {
                resume_from: Some(&first),
                ..Default::default()
            },
        )
        .unwrap();
        // Only the new point was computed.
        assert_eq!(calls.load(Ordering::Relaxed), 60);
        assert_eq!(resumed.points.len(), 4);
        for (a, b) in first.points.iter().zip(&resumed.points) {
            assert_eq!(a, b, "reused points must be copied verbatim");
        }
        assert!(resumed.points[3].complete);
    }

    #[test]
    fn resume_with_different_seed_recomputes_everything() {
        let first = run(1, 20);
        let config = CampaignConfig::new("exec-test", 999).trials(20).threads(1);
        let calls = AtomicUsize::new(0);
        let result = run_campaign(
            &config,
            &test_points(),
            || (),
            |_, point, pi, ti, rng| {
                calls.fetch_add(1, Ordering::Relaxed);
                let mut c = 0usize;
                test_trial(&mut c, point, pi, ti, rng)
            },
            &RunOptions {
                resume_from: Some(&first),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 60);
        assert_eq!(result.master_seed, 999);
    }

    #[test]
    fn first_error_in_flat_order_wins() {
        let config = CampaignConfig::new("exec-test", 7).trials(10).threads(4);
        let err = run_campaign(
            &config,
            &test_points(),
            || (),
            |_, point, _pi, ti, _rng| -> Result<TrialRecord, String> {
                if point.name == "a" && ti >= 3 {
                    Err(format!("boom at {ti}"))
                } else if point.name == "b" {
                    Err("later point".into())
                } else {
                    Ok(TrialRecord {
                        arms: vec![TrialOutcome::new(true, 0.0), TrialOutcome::new(true, 0.0)],
                    })
                }
            },
            &RunOptions::default(),
        )
        .unwrap_err();
        match err {
            EngineError::Trial {
                point_key, trial, ..
            } => {
                assert!(point_key.starts_with("a:"), "{point_key}");
                assert_eq!(trial, 3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn workers_stop_claiming_after_the_first_error() {
        // Serial execution: the first trial fails, so no further trial may even start.
        let config = CampaignConfig::new("exec-test", 7).trials(10).threads(1);
        let calls = AtomicUsize::new(0);
        let err = run_campaign(
            &config,
            &test_points(),
            || (),
            |_, _point, _pi, _ti, _rng| -> Result<TrialRecord, String> {
                calls.fetch_add(1, Ordering::Relaxed);
                Err("always fails".into())
            },
            &RunOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Trial { trial: 0, .. }));
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "the abort flag must stop the claim loop immediately"
        );
    }

    #[test]
    fn on_point_complete_fires_with_growing_snapshots() {
        let seen = Mutex::new(Vec::new());
        let config = CampaignConfig::new("exec-test", 3).trials(5).threads(2);
        let sink = |snapshot: &CampaignResult| {
            seen.lock()
                .unwrap()
                .push(snapshot.points.iter().filter(|p| p.complete).count());
        };
        run_campaign(
            &config,
            &test_points(),
            || (),
            |_, point, pi, ti, rng| {
                let mut c = 0usize;
                test_trial(&mut c, point, pi, ti, rng)
            },
            &RunOptions {
                on_point_complete: Some(&sink),
                ..Default::default()
            },
        )
        .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 3, "one snapshot per completed point");
        assert_eq!(*seen.last().unwrap(), 3);
    }

    #[test]
    fn worker_state_is_reused_across_trials() {
        // With one thread, a single worker state must see every trial.
        let config = CampaignConfig::new("exec-test", 5).trials(8).threads(1);
        let result = run_campaign(
            &config,
            &test_points(),
            Vec::<usize>::new,
            |seen, _point, pi, ti, _rng| -> Result<TrialRecord, String> {
                seen.push(pi * 100 + ti);
                Ok(TrialRecord {
                    arms: vec![
                        TrialOutcome::new(true, seen.len() as f64),
                        TrialOutcome::new(true, 0.0),
                    ],
                })
            },
            &RunOptions::default(),
        )
        .unwrap();
        // The metric of the last trial of the last point equals the total number of
        // trials executed by that single worker: 3 points × 8 trials.
        let last = result.points.last().unwrap();
        assert!((last.arms[0].metric_sum - (17..=24).sum::<usize>() as f64).abs() < 1e-9);
    }

    #[test]
    fn recorder_sees_trial_counters_timings_and_worker_gauges() {
        let rec = obs::InMemoryRecorder::new(16);
        let config = CampaignConfig::new("exec-test", 1).trials(4).threads(2);
        run_campaign(
            &config,
            &test_points(),
            || 0usize,
            test_trial,
            &RunOptions {
                recorder: Some(&rec),
                ..Default::default()
            },
        )
        .unwrap();
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("trials_completed"), 12);
        assert_eq!(snap.counter("trials_failed"), 0);
        let hist = snap.stage("trial", "").expect("trial span recorded");
        assert_eq!(hist.count(), 12);
        // Every worker reports its share; the shares cover the whole queue.
        let claimed: f64 = (0..2)
            .map(|w| snap.gauge(&format!("worker.{w}.trials")).unwrap_or(0.0))
            .sum();
        assert_eq!(claimed as usize, 12);
    }

    #[test]
    fn instrumented_run_is_bit_identical_to_plain_run() {
        let plain = run(3, 80);
        let rec = obs::InMemoryRecorder::new(0);
        let config = CampaignConfig::new("exec-test", 0xDECAF)
            .trials(80)
            .threads(3);
        let observed = run_campaign(
            &config,
            &test_points(),
            || 0usize,
            test_trial,
            &RunOptions {
                recorder: Some(&rec),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.deterministic_view(), observed.deterministic_view());
    }
}
