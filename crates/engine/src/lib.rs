//! # cprecycle-engine — parallel Monte-Carlo campaign engine with deterministic replay
//!
//! Every figure and table of the CPRecycle evaluation is a *campaign*: a grid of
//! operating points (scenario × receiver × modulation × SINR), each measured by a few
//! hundred to a few thousand independent packet-level Monte-Carlo trials. This crate
//! turns that shape into a first-class subsystem:
//!
//! * [`spec`] — the campaign description: a [`CampaignConfig`] (master seed, trials
//!   per point, worker count) over a caller-defined grid of [`CampaignPoint`]s;
//! * [`seed`] — the deterministic seed tree. Every `(master seed, point key, trial
//!   index)` triple maps to an independent child RNG, so serial and parallel runs
//!   produce **bit-identical aggregates** and any single trial can be
//!   [replayed](seed::trial_rng) in isolation for debugging;
//! * [`exec`] — the parallel executor: a shared work queue over all `(point, trial)`
//!   pairs, claimed trial-by-trial by worker threads so imbalanced grids still load
//!   every core, with **worker-local state** (FFT plans, constructed receivers,
//!   sliding-DFT segment-extraction scratch) built once per worker instead of once
//!   per trial;
//! * [`pool`] — the reusable worker-pool primitives under [`exec`]: the claiming
//!   loop ([`pool::run_claiming`]) the executor runs on, and a standing
//!   [`pool::WorkerPool`] for open-ended workloads (the multi-session receiver
//!   server in `cprecycle::server`), sharded per worker with work stealing;
//! * [`ring`] — lock-free bounded rings ([`ring::MpmcRing`], [`ring::IngressRing`])
//!   and the spin-then-park waiter ([`ring::ParkGate`]) under the server's
//!   per-session ingress path;
//! * [`sync`] — the concurrency facade those primitives import their atomics,
//!   locks and thread handles through: `std` in normal builds, the `conc`
//!   model-checker shims under `--cfg cprecycle_conc`, so the model-check
//!   suites explore the *same* source exhaustively;
//! * [`tally`] — per-point packet-success tallies with Wilson confidence intervals,
//!   auxiliary metric means and sample streams, plus timing;
//! * [`checkpoint`] — JSON persistence of a finished or half-finished campaign:
//!   resume skips completed points, and appending new grid points to a spec reruns
//!   only the new ones;
//! * [`report`] — plain-text and JSON rendering of campaign results.
//!
//! The engine is deliberately generic: it knows nothing about OFDM. The experiment
//! harness (`cprecycle-scenarios`) supplies the grid point type and the trial closure;
//! the figure binaries and the `campaign` CLI drive it.
//!
//! ## Determinism contract
//!
//! For a fixed [`CampaignConfig::master_seed`] the per-point tallies — success counts,
//! metric sums (reduced in trial-index order), and auxiliary sample streams — are
//! identical for any worker count, including fully serial execution. Timing fields are
//! explicitly *outside* the contract. The contract is enforced by tests in this crate
//! and exercised end-to-end by `cprecycle-scenarios`.

// Unsafe code is denied crate-wide and allowed only inside `ring`, whose lock-free
// cells need `UnsafeCell` hand-off (same policy as `rfdsp`'s SIMD kernels).
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod exec;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod ring;
pub mod seed;
pub mod spec;
pub mod sync;
pub mod tally;

pub use checkpoint::{load_campaign, save_campaign};
pub use exec::{run_campaign, EngineError, ProgressOptions, RunOptions};
pub use metrics::campaign_snapshot;
pub use pool::{run_claiming, WorkerPool};
pub use ring::{CachePadded, IngressRing, MpmcRing, ParkGate, PushRejected};
pub use seed::trial_rng;
pub use spec::{CampaignConfig, CampaignPoint};
pub use tally::{ArmTally, CampaignResult, PointResult, TrialOutcome, TrialRecord};
