//! Campaign-level metrics snapshots.
//!
//! [`campaign_snapshot`] folds the summary of a finished (or half-finished)
//! [`CampaignResult`] into an [`obs::MetricsSnapshot`], optionally seeded from the
//! recorder the executor reported into (see
//! [`RunOptions::recorder`](crate::exec::RunOptions::recorder)). The `campaign` CLI
//! serializes the result behind `campaign run --metrics <path>`, so the telemetry of a
//! run lands next to its checkpoint in the same machine-readable `cpjson` format.

use crate::tally::CampaignResult;
use obs::{MetricsSnapshot, Recorder};

/// Builds a [`MetricsSnapshot`] describing a campaign run.
///
/// Starts from `recorder`'s snapshot when one is given (per-trial timing histogram,
/// `trials_completed`/`trials_failed` counters, per-worker gauges — everything the
/// executor reported), then folds in the result's own summary:
///
/// * counters `campaign_points`, `campaign_points_complete` and `campaign_trials`;
/// * gauges `campaign_wall_secs`, `campaign_threads` and `campaign_trials_per_sec`;
/// * one `point.<label>.trials_per_sec` gauge per measured point (display label, not
///   the long stable key), using the point's summed trial durations (worker-CPU
///   seconds, not wall time) as the denominator.
pub fn campaign_snapshot(
    result: &CampaignResult,
    recorder: Option<&dyn Recorder>,
) -> MetricsSnapshot {
    let mut snap = recorder.and_then(|r| r.snapshot()).unwrap_or_default();
    snap.add_counter("campaign_points", result.points.len() as u64);
    snap.add_counter(
        "campaign_points_complete",
        result.points.iter().filter(|p| p.complete).count() as u64,
    );
    let total = result.total_trials();
    snap.add_counter("campaign_trials", total as u64);
    snap.set_gauge("campaign_wall_secs", result.total_elapsed_secs);
    snap.set_gauge("campaign_threads", result.threads as f64);
    if result.total_elapsed_secs > 0.0 {
        snap.set_gauge(
            "campaign_trials_per_sec",
            total as f64 / result.total_elapsed_secs,
        );
    }
    for point in &result.points {
        if point.elapsed_secs > 0.0 && point.trials > 0 {
            snap.set_gauge(
                &format!("point.{}.trials_per_sec", point.label),
                point.trials as f64 / point.elapsed_secs,
            );
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::{ArmTally, PointResult};
    use obs::InMemoryRecorder;

    fn sample() -> CampaignResult {
        CampaignResult {
            name: "m".into(),
            master_seed: 1,
            trials_per_point: 10,
            points: vec![PointResult {
                key: "sir=0".into(),
                label: "SIR 0 dB".into(),
                complete: true,
                trials: 10,
                arms: vec![ArmTally {
                    label: "Standard".into(),
                    trials: 10,
                    successes: 7,
                    metric_sum: 0.0,
                    samples: vec![],
                }],
                elapsed_secs: 2.0,
            }],
            total_elapsed_secs: 4.0,
            threads: 2,
        }
    }

    #[test]
    fn snapshot_summarizes_result_without_a_recorder() {
        let snap = campaign_snapshot(&sample(), None);
        assert_eq!(snap.counter("campaign_points"), 1);
        assert_eq!(snap.counter("campaign_points_complete"), 1);
        assert_eq!(snap.counter("campaign_trials"), 10);
        assert_eq!(snap.gauge("campaign_wall_secs"), Some(4.0));
        assert_eq!(snap.gauge("point.SIR 0 dB.trials_per_sec"), Some(5.0));
    }

    #[test]
    fn snapshot_keeps_recorder_contents() {
        let rec = InMemoryRecorder::new(8);
        use obs::Recorder as _;
        rec.counter("trials_completed", 10);
        let snap = campaign_snapshot(&sample(), Some(&rec));
        assert_eq!(snap.counter("trials_completed"), 10);
        assert_eq!(snap.counter("campaign_trials"), 10);
    }

    #[test]
    fn snapshot_roundtrips_through_cpjson() {
        let snap = campaign_snapshot(&sample(), None);
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back.counter("campaign_trials"), 10);
        assert_eq!(back.gauge("campaign_threads"), Some(2.0));
    }
}
