//! Reusable worker-pool primitives shared by the campaign executor and the
//! multi-session receiver server.
//!
//! Two shapes of parallelism live here:
//!
//! * [`run_claiming`] — the *finite-queue* pattern [`crate::exec`] is built on: a
//!   known number of work items, claimed one at a time through an atomic cursor by
//!   scoped worker threads, each carrying lazily-constructed worker-local state
//!   (receiver caches, FFT plans, scratch buffers). Dynamic claiming keeps every
//!   worker busy under imbalanced workloads without per-thread deques, and any
//!   worker can raise a pool-wide stop so a doomed run does not burn the rest of
//!   the queue.
//! * [`WorkerPool`] — the *standing* sibling for open-ended workloads
//!   (`cprecycle::server::RxServer`): long-lived named threads draining per-worker
//!   injector shards (submissions scatter round-robin; an idle worker steals from
//!   other shards, so one hot shard never strands work), with lazily-built
//!   worker-local state, plus an idle barrier ([`WorkerPool::wait_idle`]) callers
//!   use as a drain point and a graceful [`WorkerPool::shutdown`] that finishes
//!   queued jobs before the threads exit.
//!
//! Neither primitive makes scheduling observable to the work it runs: `run_claiming`
//! hands out items by index and leaves all reduction to the caller (the executor
//! reduces in trial-index order, which is what keeps campaign tallies bit-identical
//! across worker counts), and `WorkerPool` guarantees a handler's side effects for
//! one job happen-before the next job's handler run on any thread (the mutex
//! hand-off), which is what the receiver server's per-session ordering builds on.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use crate::ring::CachePadded;
// All sync primitives come through the facade (std normally, the `conc`
// model-checker shims under `--cfg cprecycle_conc`). `std::thread::scope` in
// `run_claiming` is the documented exception — see `crate::sync`.
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex};

/// Runs `total` work items over `workers` scoped threads, each item claimed through
/// a shared atomic cursor.
///
/// * `new_worker(worker_index)` lazily builds one worker-local state the first time
///   that worker claims an item, so a worker that never claims pays nothing;
/// * `work(state, item_index)` processes one item and may return
///   [`ControlFlow::Break`] to stop the whole pool: no worker claims further items
///   (in-flight items still finish);
/// * `finish(state)` runs once per worker that built state, after its last item —
///   the hook the executor uses to flush per-worker gauges.
///
/// The function returns once every spawned worker has exited.
pub fn run_claiming<S, NW, W, F>(workers: usize, total: usize, new_worker: NW, work: W, finish: F)
where
    NW: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> ControlFlow<()> + Sync,
    F: Fn(S) + Sync,
{
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..workers.max(1) {
            let cursor = &cursor;
            let stop = &stop;
            let new_worker = &new_worker;
            let work = &work;
            let finish = &finish;
            scope.spawn(move || {
                let mut state: Option<S> = None;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let item = cursor.fetch_add(1, Ordering::Relaxed);
                    if item >= total {
                        break;
                    }
                    let state = state.get_or_insert_with(|| new_worker(w));
                    if let ControlFlow::Break(()) = work(state, item) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                if let Some(state) = state.take() {
                    finish(state);
                }
            });
        }
    });
}

/// Shared state between a [`WorkerPool`]'s submitters and its worker threads.
///
/// The queue is sharded per worker: submitters scatter jobs round-robin over the
/// shards and each worker drains its own shard first, then steals from the others,
/// so concurrent submitters rarely contend on the same mutex and a hot worker never
/// serializes the whole pool. Poolwide bookkeeping (`pending`, `in_flight`) lives in
/// atomics with a strict update discipline (see the field docs) so the idle barrier
/// and the sleep path never observe a false-idle or lose a wakeup.
struct PoolShared<J> {
    /// Per-worker injector queues, cache-padded so neighbouring shard locks do not
    /// false-share.
    shards: Box<[CachePadded<Mutex<VecDeque<J>>>]>,
    /// Round-robin cursor scattering submissions over shards.
    next_shard: AtomicUsize,
    /// Jobs submitted and not yet claimed. Incremented **before** the shard push,
    /// decremented **after** the claim's `in_flight` increment, so
    /// `pending + in_flight` never under-counts live work.
    pending: AtomicUsize,
    /// Jobs currently inside a handler. Incremented before `pending` is released
    /// on claim; decremented only after any follow-up requeue is visible.
    in_flight: AtomicUsize,
    /// Jobs a worker claimed from another worker's shard.
    steals: AtomicU64,
    /// Once set, workers exit as soon as no job remains; queued jobs still run.
    shutting_down: AtomicBool,
    /// Workers currently parked waiting for work. A submitter skips the sleep lock
    /// entirely when this reads zero (SeqCst pairs with the sleeper's
    /// register-then-recheck, same argument as [`crate::ring::ParkGate`]).
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    /// Signalled when a job is submitted (or shutdown begins).
    work_ready: Condvar,
    idle_lock: Mutex<()>,
    /// Signalled when the pool transitions to idle (nothing pending or in flight).
    idle: Condvar,
}

impl<J> PoolShared<J> {
    /// Enqueues one job on `shard` and wakes a sleeping worker if any is parked.
    fn enqueue(&self, shard: usize, job: J) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.shards[shard]
            .lock()
            .expect("pool shard poisoned")
            .push_back(job);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
            self.work_ready.notify_one();
        }
    }

    /// Claims the next job, scanning from worker `w`'s own shard; marks it
    /// in-flight before releasing its pending count.
    fn claim(&self, w: usize) -> Option<J> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = (w + i) % n;
            let job = self.shards[shard]
                .lock()
                .expect("pool shard poisoned")
                .pop_front();
            if let Some(job) = job {
                if i > 0 {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Whether any submitted job is unfinished (claimed-but-running counts).
    fn has_live_work(&self) -> bool {
        self.pending.load(Ordering::SeqCst) > 0 || self.in_flight.load(Ordering::SeqCst) > 0
    }
}

/// A fixed pool of long-lived worker threads with worker-local state, draining
/// per-worker injector shards of jobs submitted over time (round-robin scatter on
/// submit, work stealing on claim).
///
/// Jobs are FIFO within a shard; a handler may return `Some(job)` to atomically
/// requeue a follow-up (the receiver server uses this to yield a long-backlogged
/// session back to the pool so other sessions get a turn, without ever leaving the
/// session in a "work pending but unscheduled" state). [`wait_idle`](Self::wait_idle)
/// blocks until every shard is empty *and* no handler is running — the drain
/// barrier — and [`shutdown`](Self::shutdown) finishes all queued jobs before
/// joining the threads (dropping the pool shuts it down the same way).
///
/// ```
/// use cprecycle_engine::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let sum = Arc::new(AtomicUsize::new(0));
/// let handler_sum = Arc::clone(&sum);
/// let pool = WorkerPool::new(
///     4,
///     |_worker| 0usize, // worker-local scratch (receiver caches, FFT plans, …)
///     move |local, job: usize| {
///         *local += 1;
///         handler_sum.fetch_add(job, Ordering::Relaxed);
///         None // nothing to requeue
///     },
/// );
/// for job in 0..100 {
///     pool.submit(job);
/// }
/// pool.wait_idle();
/// assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
/// pool.shutdown();
/// ```
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `threads` named worker threads (`rx-pool-<n>`; at least one).
    ///
    /// `new_worker(worker_index)` lazily builds the worker-local state on the first
    /// job that worker claims; `handler(state, job)` processes one job and may
    /// return a follow-up job to requeue on the worker's own shard. The requeue is
    /// atomic with respect to [`wait_idle`](Self::wait_idle): the pool never
    /// appears idle between a handler returning a follow-up and that follow-up
    /// becoming visible in a shard.
    pub fn new<S, NW, H>(threads: usize, new_worker: NW, handler: H) -> Self
    where
        S: 'static,
        NW: Fn(usize) -> S + Send + Sync + 'static,
        H: Fn(&mut S, J) -> Option<J> + Send + Sync + 'static,
    {
        let workers = threads.max(1);
        let shared = Arc::new(PoolShared {
            shards: (0..workers)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
            next_shard: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            work_ready: Condvar::new(),
            idle_lock: Mutex::new(()),
            idle: Condvar::new(),
        });
        let ctx = Arc::new((new_worker, handler));
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let ctx = Arc::clone(&ctx);
                crate::sync::thread::Builder::new()
                    .name(format!("rx-pool-{w}"))
                    .spawn(move || {
                        let mut state: Option<S> = None;
                        loop {
                            if let Some(job) = shared.claim(w) {
                                let state = state.get_or_insert_with(|| (ctx.0)(w));
                                let followup = (ctx.1)(state, job);
                                if let Some(next) = followup {
                                    // Requeue on the own shard *before* dropping the
                                    // in-flight count, so wait_idle never observes
                                    // the gap between "handler done" and "follow-up
                                    // queued".
                                    shared.enqueue(w, next);
                                }
                                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                                if !shared.has_live_work() {
                                    let _guard =
                                        shared.idle_lock.lock().expect("pool idle lock poisoned");
                                    shared.idle.notify_all();
                                }
                                continue;
                            }
                            // Nothing claimable: park, retry, or exit. Register as a
                            // sleeper and re-check pending *under the sleep lock* —
                            // a submitter that missed the registration published
                            // its pending increment earlier in SeqCst order, so the
                            // re-check sees it and we retry instead of sleeping.
                            let guard = shared.sleep_lock.lock().expect("pool sleep lock poisoned");
                            shared.sleepers.fetch_add(1, Ordering::SeqCst);
                            if shared.pending.load(Ordering::SeqCst) > 0 {
                                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                                drop(guard);
                                crate::sync::thread::yield_now();
                                continue;
                            }
                            if shared.shutting_down.load(Ordering::SeqCst) {
                                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                            let guard = shared
                                .work_ready
                                .wait(guard)
                                .expect("pool sleep lock poisoned");
                            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
                            drop(guard);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads: Mutex::new(threads),
            workers,
        }
    }

    /// Enqueues one job (round-robin over the worker shards).
    ///
    /// Jobs submitted before (or concurrently with) [`shutdown`](Self::shutdown)
    /// still run; callers layering their own lifecycle (the receiver server closes
    /// sessions before shutting the pool down) should stop submitting first.
    pub fn submit(&self, job: J) {
        let shard = self.shared.next_shard.fetch_add(1, Ordering::Relaxed) % self.workers;
        self.shared.enqueue(shard, job);
    }

    /// Blocks until no job is pending and no handler is running.
    pub fn wait_idle(&self) {
        let mut guard = self
            .shared
            .idle_lock
            .lock()
            .expect("pool idle lock poisoned");
        while self.shared.has_live_work() {
            guard = self
                .shared
                .idle
                .wait(guard)
                .expect("pool idle lock poisoned");
        }
    }

    /// Number of jobs waiting in the shards (not counting in-flight ones).
    pub fn queued(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Number of jobs claimed from a shard other than the claiming worker's own.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Finishes every queued job, then joins the worker threads. Idempotent; also
    /// runs on drop. Must not be called from inside a handler (a worker cannot
    /// join itself).
    pub fn shutdown(&self) {
        {
            let _guard = self
                .shared
                .sleep_lock
                .lock()
                .expect("pool sleep lock poisoned");
            self.shared.shutting_down.store(true, Ordering::SeqCst);
            self.shared.work_ready.notify_all();
        }
        let mut threads = self.threads.lock().expect("pool threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_claiming_visits_every_item_exactly_once() {
        let seen: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_claiming(
            4,
            seen.len(),
            |w| w,
            |_, i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
                ControlFlow::Continue(())
            },
            |_| {},
        );
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn run_claiming_break_stops_further_claims_serially() {
        let calls = AtomicUsize::new(0);
        run_claiming(
            1,
            50,
            |_| (),
            |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                ControlFlow::Break(())
            },
            |_| {},
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_claiming_builds_state_lazily_and_finishes_it() {
        // More workers than items: extra workers must neither build nor finish state.
        let built = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        run_claiming(
            8,
            2,
            |w| {
                built.fetch_add(1, Ordering::Relaxed);
                w
            },
            |_, _| ControlFlow::Continue(()),
            |_| {
                finished.fetch_add(1, Ordering::Relaxed);
            },
        );
        let b = built.load(Ordering::Relaxed);
        assert!((1..=2).contains(&b), "built {b}");
        assert_eq!(finished.load(Ordering::Relaxed), b);
    }

    #[test]
    fn worker_pool_runs_submitted_jobs_and_waits_idle() {
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        let pool = WorkerPool::new(
            3,
            |_| (),
            move |_, job: u64| {
                s.fetch_add(job, Ordering::Relaxed);
                None
            },
        );
        for j in 1..=100u64 {
            pool.submit(j);
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn worker_pool_shutdown_finishes_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(
            1,
            |_| (),
            move |_, _job: usize| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                d.fetch_add(1, Ordering::Relaxed);
                None
            },
        );
        for j in 0..20 {
            pool.submit(j);
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 20);
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn worker_pool_requeues_handler_followups_atomically() {
        // Each seed job spawns a chain of follow-ups; wait_idle must not return
        // until every chain is exhausted.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(
            4,
            |_| (),
            move |_, job: usize| {
                d.fetch_add(1, Ordering::Relaxed);
                (job > 0).then(|| job - 1)
            },
        );
        for _ in 0..8 {
            pool.submit(9); // 10 handler runs each
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn worker_pool_state_is_worker_local() {
        // With one worker, its local counter must see every job.
        let last = Arc::new(AtomicUsize::new(0));
        let l = Arc::clone(&last);
        let pool = WorkerPool::new(
            1,
            |_| 0usize,
            move |count, _job: usize| {
                *count += 1;
                l.store(*count, Ordering::Relaxed);
                None
            },
        );
        for j in 0..25 {
            pool.submit(j);
        }
        pool.wait_idle();
        assert_eq!(last.load(Ordering::Relaxed), 25);
    }
}
