//! Reusable worker-pool primitives shared by the campaign executor and the
//! multi-session receiver server.
//!
//! Two shapes of parallelism live here:
//!
//! * [`run_claiming`] — the *finite-queue* pattern [`crate::exec`] is built on: a
//!   known number of work items, claimed one at a time through an atomic cursor by
//!   scoped worker threads, each carrying lazily-constructed worker-local state
//!   (receiver caches, FFT plans, scratch buffers). Dynamic claiming keeps every
//!   worker busy under imbalanced workloads without per-thread deques, and any
//!   worker can raise a pool-wide stop so a doomed run does not burn the rest of
//!   the queue.
//! * [`WorkerPool`] — the *standing* sibling for open-ended workloads
//!   (`cprecycle::server::RxServer`): long-lived named threads draining a shared
//!   injector queue of jobs submitted over time, again with lazily-built
//!   worker-local state, plus an idle barrier ([`WorkerPool::wait_idle`]) callers
//!   use as a drain point and a graceful [`WorkerPool::shutdown`] that finishes
//!   queued jobs before the threads exit.
//!
//! Neither primitive makes scheduling observable to the work it runs: `run_claiming`
//! hands out items by index and leaves all reduction to the caller (the executor
//! reduces in trial-index order, which is what keeps campaign tallies bit-identical
//! across worker counts), and `WorkerPool` guarantees a handler's side effects for
//! one job happen-before the next job's handler run on any thread (the mutex
//! hand-off), which is what the receiver server's per-session ordering builds on.

use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Runs `total` work items over `workers` scoped threads, each item claimed through
/// a shared atomic cursor.
///
/// * `new_worker(worker_index)` lazily builds one worker-local state the first time
///   that worker claims an item, so a worker that never claims pays nothing;
/// * `work(state, item_index)` processes one item and may return
///   [`ControlFlow::Break`] to stop the whole pool: no worker claims further items
///   (in-flight items still finish);
/// * `finish(state)` runs once per worker that built state, after its last item —
///   the hook the executor uses to flush per-worker gauges.
///
/// The function returns once every spawned worker has exited.
pub fn run_claiming<S, NW, W, F>(workers: usize, total: usize, new_worker: NW, work: W, finish: F)
where
    NW: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> ControlFlow<()> + Sync,
    F: Fn(S) + Sync,
{
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..workers.max(1) {
            let cursor = &cursor;
            let stop = &stop;
            let new_worker = &new_worker;
            let work = &work;
            let finish = &finish;
            scope.spawn(move || {
                let mut state: Option<S> = None;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let item = cursor.fetch_add(1, Ordering::Relaxed);
                    if item >= total {
                        break;
                    }
                    let state = state.get_or_insert_with(|| new_worker(w));
                    if let ControlFlow::Break(()) = work(state, item) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                if let Some(state) = state.take() {
                    finish(state);
                }
            });
        }
    });
}

/// Shared state between a [`WorkerPool`]'s submitters and its worker threads.
struct PoolShared<J> {
    queue: Mutex<PoolQueue<J>>,
    /// Signalled when a job is submitted (or shutdown begins).
    work_ready: Condvar,
    /// Signalled when the pool transitions to idle (empty queue, nothing in flight).
    idle: Condvar,
}

struct PoolQueue<J> {
    jobs: VecDeque<J>,
    /// Jobs currently inside a handler on some worker.
    in_flight: usize,
    /// Once set, workers exit as soon as the queue is empty; queued jobs still run.
    shutting_down: bool,
}

/// A fixed pool of long-lived worker threads with worker-local state, draining a
/// shared queue of jobs submitted over time.
///
/// Jobs are claimed FIFO; a handler may return `Some(job)` to atomically requeue a
/// follow-up (the receiver server uses this to yield a long-backlogged session back
/// to the queue so other sessions get a turn, without ever leaving the session in a
/// "work pending but unscheduled" state). [`wait_idle`](Self::wait_idle) blocks
/// until the queue is empty *and* no handler is running — the drain barrier —
/// and [`shutdown`](Self::shutdown) finishes all queued jobs before joining the
/// threads (dropping the pool shuts it down the same way).
///
/// ```
/// use cprecycle_engine::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let sum = Arc::new(AtomicUsize::new(0));
/// let handler_sum = Arc::clone(&sum);
/// let pool = WorkerPool::new(
///     4,
///     |_worker| 0usize, // worker-local scratch (receiver caches, FFT plans, …)
///     move |local, job: usize| {
///         *local += 1;
///         handler_sum.fetch_add(job, Ordering::Relaxed);
///         None // nothing to requeue
///     },
/// );
/// for job in 0..100 {
///     pool.submit(job);
/// }
/// pool.wait_idle();
/// assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
/// pool.shutdown();
/// ```
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `threads` named worker threads (`rx-pool-<n>`; at least one).
    ///
    /// `new_worker(worker_index)` lazily builds the worker-local state on the first
    /// job that worker claims; `handler(state, job)` processes one job and may
    /// return a follow-up job to requeue at the back of the queue. The requeue is
    /// atomic with respect to [`wait_idle`](Self::wait_idle): the pool never
    /// appears idle between a handler returning a follow-up and that follow-up
    /// becoming visible in the queue.
    pub fn new<S, NW, H>(threads: usize, new_worker: NW, handler: H) -> Self
    where
        S: 'static,
        NW: Fn(usize) -> S + Send + Sync + 'static,
        H: Fn(&mut S, J) -> Option<J> + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
        });
        let ctx = Arc::new((new_worker, handler));
        let workers = threads.max(1);
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("rx-pool-{w}"))
                    .spawn(move || {
                        let mut state: Option<S> = None;
                        loop {
                            let job = {
                                let mut q = shared.queue.lock().expect("pool queue poisoned");
                                loop {
                                    if let Some(job) = q.jobs.pop_front() {
                                        q.in_flight += 1;
                                        break Some(job);
                                    }
                                    if q.shutting_down {
                                        break None;
                                    }
                                    q = shared.work_ready.wait(q).expect("pool queue poisoned");
                                }
                            };
                            let Some(job) = job else { break };
                            let state = state.get_or_insert_with(|| (ctx.0)(w));
                            let followup = (ctx.1)(state, job);
                            let mut q = shared.queue.lock().expect("pool queue poisoned");
                            if let Some(next) = followup {
                                q.jobs.push_back(next);
                                shared.work_ready.notify_one();
                            }
                            q.in_flight -= 1;
                            if q.in_flight == 0 && q.jobs.is_empty() {
                                shared.idle.notify_all();
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads: Mutex::new(threads),
            workers,
        }
    }

    /// Enqueues one job at the back of the queue.
    ///
    /// Jobs submitted before (or concurrently with) [`shutdown`](Self::shutdown)
    /// still run; callers layering their own lifecycle (the receiver server closes
    /// sessions before shutting the pool down) should stop submitting first.
    pub fn submit(&self, job: J) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.jobs.push_back(job);
        }
        self.shared.work_ready.notify_one();
    }

    /// Blocks until the queue is empty and no handler is running.
    pub fn wait_idle(&self) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        while !(q.jobs.is_empty() && q.in_flight == 0) {
            q = self.shared.idle.wait(q).expect("pool queue poisoned");
        }
    }

    /// Number of jobs waiting in the queue (not counting in-flight ones).
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .len()
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Finishes every queued job, then joins the worker threads. Idempotent; also
    /// runs on drop. Must not be called from inside a handler (a worker cannot
    /// join itself).
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let mut threads = self.threads.lock().expect("pool threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_claiming_visits_every_item_exactly_once() {
        let seen: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_claiming(
            4,
            seen.len(),
            |w| w,
            |_, i| {
                seen[i].fetch_add(1, Ordering::Relaxed);
                ControlFlow::Continue(())
            },
            |_| {},
        );
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn run_claiming_break_stops_further_claims_serially() {
        let calls = AtomicUsize::new(0);
        run_claiming(
            1,
            50,
            |_| (),
            |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                ControlFlow::Break(())
            },
            |_| {},
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_claiming_builds_state_lazily_and_finishes_it() {
        // More workers than items: extra workers must neither build nor finish state.
        let built = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        run_claiming(
            8,
            2,
            |w| {
                built.fetch_add(1, Ordering::Relaxed);
                w
            },
            |_, _| ControlFlow::Continue(()),
            |_| {
                finished.fetch_add(1, Ordering::Relaxed);
            },
        );
        let b = built.load(Ordering::Relaxed);
        assert!((1..=2).contains(&b), "built {b}");
        assert_eq!(finished.load(Ordering::Relaxed), b);
    }

    #[test]
    fn worker_pool_runs_submitted_jobs_and_waits_idle() {
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        let pool = WorkerPool::new(
            3,
            |_| (),
            move |_, job: u64| {
                s.fetch_add(job, Ordering::Relaxed);
                None
            },
        );
        for j in 1..=100u64 {
            pool.submit(j);
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn worker_pool_shutdown_finishes_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(
            1,
            |_| (),
            move |_, _job: usize| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                d.fetch_add(1, Ordering::Relaxed);
                None
            },
        );
        for j in 0..20 {
            pool.submit(j);
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 20);
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn worker_pool_requeues_handler_followups_atomically() {
        // Each seed job spawns a chain of follow-ups; wait_idle must not return
        // until every chain is exhausted.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let pool = WorkerPool::new(
            4,
            |_| (),
            move |_, job: usize| {
                d.fetch_add(1, Ordering::Relaxed);
                (job > 0).then(|| job - 1)
            },
        );
        for _ in 0..8 {
            pool.submit(9); // 10 handler runs each
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn worker_pool_state_is_worker_local() {
        // With one worker, its local counter must see every job.
        let last = Arc::new(AtomicUsize::new(0));
        let l = Arc::clone(&last);
        let pool = WorkerPool::new(
            1,
            |_| 0usize,
            move |count, _job: usize| {
                *count += 1;
                l.store(*count, Ordering::Relaxed);
                None
            },
        );
        for j in 0..25 {
            pool.submit(j);
        }
        pool.wait_idle();
        assert_eq!(last.load(Ordering::Relaxed), 25);
    }
}
