//! Plain-text and JSON rendering of campaign results.

use crate::tally::CampaignResult;
use cpjson::ToJson;

/// Renders a campaign result as an aligned text table: one row per grid point, one
/// column per arm showing `success% [ci95lo, ci95hi]`.
pub fn render_text(result: &CampaignResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# campaign `{}` — seed {:#x}, {} trials/point, {} thread(s), {:.2}s wall\n",
        result.name,
        result.master_seed,
        result.trials_per_point,
        result.threads,
        result.total_elapsed_secs,
    ));
    let arm_labels: Vec<String> = result
        .points
        .iter()
        .flat_map(|p| p.arms.iter().map(|a| a.label.clone()))
        .fold(Vec::new(), |mut acc, l| {
            if !acc.contains(&l) {
                acc.push(l);
            }
            acc
        });
    let label_width = result
        .points
        .iter()
        .map(|p| p.label.chars().count())
        .chain(std::iter::once(5))
        .max()
        .unwrap_or(5)
        .min(48);
    out.push_str(&format!("{:>label_width$}", "point"));
    for label in &arm_labels {
        out.push_str(&format!(" | {label:>26}"));
    }
    out.push_str(" | status\n");
    out.push_str(&"-".repeat(label_width + arm_labels.len() * 29 + 9));
    out.push('\n');
    for point in &result.points {
        let mut label: String = point.label.clone();
        if label.chars().count() > label_width {
            label = label.chars().take(label_width - 1).collect::<String>() + "…";
        }
        out.push_str(&format!("{label:>label_width$}"));
        for arm_label in &arm_labels {
            match point.arms.iter().find(|a| &a.label == arm_label) {
                Some(arm) if arm.trials > 0 => {
                    let (lo, hi) = arm.wilson_ci95();
                    out.push_str(&format!(
                        " | {:>7.2}% [{:>5.1}, {:>5.1}]",
                        arm.success_percent(),
                        100.0 * lo,
                        100.0 * hi
                    ));
                }
                _ => out.push_str(&format!(" | {:>26}", "-")),
            }
        }
        if point.complete {
            if point.elapsed_secs > 0.0 && point.trials > 0 {
                out.push_str(&format!(
                    " | done ({:.2}s, {:.1} trials/sec)\n",
                    point.elapsed_secs,
                    point.trials as f64 / point.elapsed_secs
                ));
            } else {
                out.push_str(&format!(" | done ({:.2}s)\n", point.elapsed_secs));
            }
        } else {
            out.push_str(&format!(
                " | {}/{} trials\n",
                point.trials, result.trials_per_point
            ));
        }
    }
    let total = result.total_trials();
    if result.total_elapsed_secs > 0.0 && total > 0 {
        out.push_str(&format!(
            "({} trials total, {:.1} trials/sec)\n",
            total,
            total as f64 / result.total_elapsed_secs
        ));
    }
    out
}

/// Renders a campaign result as pretty JSON (the checkpoint format).
pub fn render_json(result: &CampaignResult) -> String {
    result.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::{ArmTally, PointResult};

    fn sample() -> CampaignResult {
        CampaignResult {
            name: "fig8".into(),
            master_seed: 0xC0FFEE,
            trials_per_point: 100,
            points: vec![
                PointResult {
                    key: "sir=-20".into(),
                    label: "SIR −20 dB".into(),
                    complete: true,
                    trials: 100,
                    arms: vec![
                        ArmTally {
                            label: "Standard".into(),
                            trials: 100,
                            successes: 12,
                            metric_sum: 30.0,
                            samples: vec![],
                        },
                        ArmTally {
                            label: "CPRecycle(P=16)".into(),
                            trials: 100,
                            successes: 84,
                            metric_sum: 4.0,
                            samples: vec![],
                        },
                    ],
                    elapsed_secs: 2.0,
                },
                PointResult {
                    key: "sir=0".into(),
                    label: "SIR 0 dB".into(),
                    complete: false,
                    trials: 40,
                    arms: vec![
                        ArmTally::empty("Standard".into()),
                        ArmTally::empty("CPRecycle(P=16)".into()),
                    ],
                    elapsed_secs: 0.8,
                },
            ],
            total_elapsed_secs: 3.5,
            threads: 4,
        }
    }

    #[test]
    fn text_report_contains_rates_cis_and_progress() {
        let text = render_text(&sample());
        assert!(text.contains("campaign `fig8`"));
        assert!(text.contains("Standard"));
        assert!(text.contains("CPRecycle(P=16)"));
        assert!(text.contains("12.00%"));
        assert!(text.contains("84.00%"));
        assert!(text.contains("40/100 trials"));
        assert!(text.contains("trials/sec"));
    }

    #[test]
    fn json_report_is_valid_checkpoint_json() {
        let json = render_json(&sample());
        let value = cpjson::Value::parse(&json).unwrap();
        assert_eq!(
            value.field_as::<String>("format").unwrap(),
            crate::tally::FORMAT
        );
    }
}
