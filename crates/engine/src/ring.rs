//! Lock-free bounded rings for high-rate ingress paths.
//!
//! The multi-session receiver server (`cprecycle::server`) accepts sample chunks
//! from producer threads and services them on a worker pool. PR 7 guarded each
//! session's ingress with a `Mutex<VecDeque> + Condvar`, which serializes producers
//! against the servicing worker on every push; this module replaces that with two
//! layered primitives:
//!
//! * [`MpmcRing`] — a fixed-capacity lock-free ring (Vyukov-style bounded MPMC
//!   queue): one atomic enqueue cursor, one atomic dequeue cursor, and a per-cell
//!   sequence stamp that hands each slot from producers to consumers without any
//!   lock. The cursors live on their own cache lines ([`CachePadded`]) so producers
//!   and the consumer do not false-share, and FIFO order follows cursor-claim
//!   order — the property the server's determinism argument needs.
//! * [`IngressRing`] — the server-facing wrapper: a chunk-count capacity bound
//!   (exact, not rounded to the ring's power-of-two backing), a `closed` flag, and
//!   the blocking-`push`/`try_push` → [`PushRejected::Full`] backpressure contract
//!   implemented with an adaptive spin-then-park waiter ([`ParkGate`]): a producer
//!   facing a full ring spins briefly (the consumer usually frees a slot within
//!   microseconds), then registers as a parked waiter and sleeps until the consumer
//!   frees space or the ring closes.
//!
//! Capacity accounting uses a *credit* counter rather than the ring cursors: a
//! producer acquires a credit (CAS on `queued`) before claiming a ring slot, and
//! the consumer releases the credit only after the popped cell's sequence stamp is
//! published. Because the backing ring is at least as large as the credit bound,
//! a held credit guarantees the claimed cell is free — `try_push` on the inner
//! ring cannot fail once a credit is held (asserted in debug builds, retried in
//! release builds).
//!
//! All cross-thread handshakes here use `SeqCst`: the park/notify fast path skips
//! the lock entirely when no waiter is registered, which is only sound when the
//! waiter-count increment, the capacity re-check, and the consumer's credit release
//! participate in one total order (see [`ParkGate::notify`]).

// The cell store needs `UnsafeCell<MaybeUninit<T>>`: a slot's contents are owned by
// exactly one thread at a time, with ownership handed over through the acquire/
// release sequence stamp. Everything outside `MpmcRing`'s cell accesses is safe code.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

// All sync primitives come through the facade: std in normal builds, the
// `conc` model-checker shims under `--cfg cprecycle_conc` (tests/conc_models.rs
// explores this very source exhaustively).
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};

/// Pads and aligns a value to 128 bytes so two frequently-written atomics never
/// share a cache line (64-byte lines, doubled for adjacent-line prefetchers).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// One ring slot: the sequence stamp encodes whose turn the cell is.
///
/// Invariant (Vyukov): for lap `k` at index `i`, `seq == i + k*N` means the cell is
/// empty and awaits the producer of position `i + k*N`; `seq == i + k*N + 1` means
/// it holds that position's value and awaits the consumer; any smaller value means
/// the previous occupant is still being drained — the ring is effectively full at
/// this cell.
struct Cell<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity lock-free multi-producer multi-consumer ring.
///
/// The capacity is rounded up to a power of two. Producers claim positions with a
/// CAS on the enqueue cursor and publish values by storing `pos + 1` into the
/// cell's sequence stamp (release); consumers claim with a CAS on the dequeue
/// cursor, take the value after observing the stamp (acquire), and recycle the
/// cell by storing `pos + capacity`. FIFO order is cursor-claim order.
///
/// `try_push`/`try_pop` never block and never spin unboundedly: a full (or empty)
/// observation returns immediately, including the transient case where a slot has
/// been claimed by another thread but its value is still being written — callers
/// that need "item will appear" semantics layer their own retry (the server's
/// scheduled-flag protocol re-services a slot whenever a producer completes).
pub struct MpmcRing<T> {
    buffer: Box<[Cell<T>]>,
    mask: usize,
    /// Enqueue cursor: total successful position claims.
    tail: CachePadded<AtomicUsize>,
    /// Dequeue cursor: total successful pops.
    head: CachePadded<AtomicUsize>,
}

// SAFETY: a cell's value is accessed only by the single thread that claimed its
// position via CAS, bracketed by acquire/release sequence stamps; `T` crosses
// threads by value, hence `T: Send` for both.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// A ring holding at least `capacity` items (rounded up to a power of two,
    /// minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buffer: Box<[Cell<T>]> = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            buffer,
            mask: cap - 1,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// The backing capacity (a power of two ≥ the requested capacity).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently in the ring (including slots claimed but not yet
    /// published). Approximate under concurrency, exact when quiescent.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::SeqCst);
        let head = self.head.load(Ordering::SeqCst);
        tail.saturating_sub(head)
    }

    /// Whether the ring is empty (see [`len`](Self::len) for the caveat).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total positions ever claimed by producers (monotonic).
    pub fn pushed(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) as u64
    }

    /// Total positions ever released by consumers (monotonic).
    pub fn popped(&self) -> u64 {
        self.head.load(Ordering::SeqCst) as u64
    }

    /// Attempts to enqueue, returning the item back when the ring is full.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = &self.buffer[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // The cell awaits exactly this position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive ownership of
                        // the cell until the stamp below publishes it.
                        unsafe { (*cell.value.get()).write(item) };
                        cell.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // A full lap behind: the previous occupant is still in place.
                return Err(item);
            } else {
                // Another producer claimed this position; retry at the cursor.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue the oldest item.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = &self.buffer[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gives this thread exclusive ownership of
                        // the published value; the stamp below recycles the cell.
                        let value = unsafe { (*cell.value.get()).assume_init_read() };
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // Empty (or the producer of this position is mid-publish).
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.try_pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

/// The park half of an adaptive spin-then-park handshake.
///
/// A producer that has already spun without progress registers itself
/// (`waiters += 1`), re-checks the condition **under the gate's lock**, and
/// sleeps; the peer that frees the resource calls [`notify`](Self::notify), which
/// reads the waiter count and takes the lock only when somebody is actually
/// parked — the uncontended fast path is one `SeqCst` load.
///
/// Soundness of the skip: the waiter's registration, its condition re-check, the
/// notifier's resource release and its waiter-count read are all `SeqCst`, hence
/// totally ordered. If the notifier's read misses the registration, the
/// registration is later in the total order than the release — so the waiter's
/// re-check (later still) observes the released resource and never sleeps.
/// Condition closures passed to [`wait_while`](Self::wait_while) must therefore
/// read shared state with `SeqCst`.
#[derive(Debug, Default)]
pub struct ParkGate {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ParkGate {
    /// A gate with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the calling thread while `blocked()` returns true. Returns as soon as
    /// a [`notify`](Self::notify) (or spurious wakeup) observes the condition
    /// cleared. `blocked` is always evaluated at least once, under the gate lock.
    pub fn wait_while(&self, mut blocked: impl FnMut() -> bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().expect("park gate poisoned");
        while blocked() {
            guard = self.cv.wait(guard).expect("park gate poisoned");
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes parked waiters, if any. Call after releasing the resource waiters
    /// block on (with `SeqCst` ordering — see the type docs).
    pub fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().expect("park gate poisoned");
            self.cv.notify_all();
        }
    }

    /// Unconditionally wakes parked waiters (used on close paths, where skipping
    /// on a racing registration would strand a waiter forever).
    pub fn notify_all_forced(&self) {
        let _guard = self.lock.lock().expect("park gate poisoned");
        self.cv.notify_all();
    }

    /// Number of currently registered waiters (racy; for metrics and tests).
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::SeqCst)
    }
}

/// Why an [`IngressRing`] push did not accept an item. The item is handed back in
/// both cases — nothing is consumed by a rejection.
#[derive(Debug)]
pub enum PushRejected<T> {
    /// The ring is at its chunk capacity.
    Full(T),
    /// The ring was [closed](IngressRing::close).
    Closed(T),
}

/// How many times a blocked producer retries with a spin hint before parking.
#[cfg(not(cprecycle_conc))]
const SPIN_LIMIT: u32 = 128;
/// Under the model checker every spin is a schedule point; one retry is
/// enough to cover the "spun and lost" branch without exploding the search.
#[cfg(cprecycle_conc)]
const SPIN_LIMIT: u32 = 1;

/// A bounded MPMC ring with an exact capacity bound, a closed flag, and the
/// blocking-`push` / `try_push` → [`PushRejected::Full`] backpressure contract
/// (the ingress side of one `cprecycle::server` session).
///
/// The capacity bound counts *items*, enforced by a credit counter, so a
/// `capacity` of 6 rejects the 7th item even though the backing ring rounds up
/// to 8 cells. Items accepted are delivered to [`pop`](Self::pop) in acceptance
/// (cursor-claim) order; a rejected push consumes nothing.
#[derive(Debug)]
pub struct IngressRing<T> {
    ring: MpmcRing<T>,
    capacity: usize,
    /// Credits: items accepted and not yet fully popped. The exact capacity gate.
    queued: CachePadded<AtomicUsize>,
    closed: AtomicBool,
    space: ParkGate,
    /// Total items accepted (monotonic) — the sequencing source for control-item
    /// tickets layered above this ring.
    accepted: AtomicU64,
    /// Total items popped (monotonic).
    serviced: AtomicU64,
    /// Push attempts that observed a full ring (`try_push` rejections plus
    /// blocking pushes that had to park).
    full_events: AtomicU64,
}

impl<T: Send> IngressRing<T> {
    /// A ring accepting at most `capacity` items at a time (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        IngressRing {
            ring: MpmcRing::new(capacity),
            capacity,
            queued: CachePadded::new(AtomicUsize::new(0)),
            closed: AtomicBool::new(false),
            space: ParkGate::new(),
            accepted: AtomicU64::new(0),
            serviced: AtomicU64::new(0),
            full_events: AtomicU64::new(0),
        }
    }

    /// The exact item capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Whether the ring currently holds no items. Unlike [`len`](Self::len) (the
    /// conservative credit count), this reads the ring cursors, so a claimed but
    /// not-yet-published slot still counts as non-empty — which is what the
    /// server's "observed empty ⇒ safe to unschedule" step needs.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total items ever accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Total items ever popped.
    pub fn serviced(&self) -> u64 {
        self.serviced.load(Ordering::SeqCst)
    }

    /// Push attempts that found the ring full.
    pub fn full_events(&self) -> u64 {
        self.full_events.load(Ordering::SeqCst)
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Whether a non-blocking push would currently be rejected (cheap pre-check;
    /// the authoritative answer is [`try_push`](Self::try_push)'s).
    pub fn would_reject(&self) -> bool {
        self.is_closed() || self.len() >= self.capacity
    }

    /// Closes the ring: subsequent pushes fail with [`PushRejected::Closed`] and
    /// parked producers wake and observe the closure. Items already accepted stay
    /// poppable. Returns whether the ring was already closed (idempotence token).
    pub fn close(&self) -> bool {
        let was = self.closed.swap(true, Ordering::SeqCst);
        self.space.notify_all_forced();
        was
    }

    /// Acquires one capacity credit, or reports why not.
    fn try_acquire_credit(&self) -> Result<(), PushRejected<()>> {
        if self.is_closed() {
            return Err(PushRejected::Closed(()));
        }
        let mut queued = self.queued.load(Ordering::SeqCst);
        loop {
            if queued >= self.capacity {
                return Err(PushRejected::Full(()));
            }
            match self.queued.compare_exchange_weak(
                queued,
                queued + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => queued = actual,
            }
        }
    }

    /// Enqueues under a held credit. The credit guarantees a free cell (see the
    /// module docs), so the inner push succeeds modulo a transient consumer
    /// stamp-in-progress, which the bounded retry below absorbs.
    fn push_with_credit(&self, mut item: T) {
        loop {
            match self.ring.try_push(item) {
                Ok(()) => break,
                Err(back) => {
                    debug_assert!(false, "credited push found no free cell");
                    item = back;
                    crate::sync::hint::spin_loop();
                }
            }
        }
        self.accepted.fetch_add(1, Ordering::SeqCst);
    }

    /// Attempts to enqueue without blocking. On [`PushRejected::Full`] nothing is
    /// consumed: the same item is handed back and may be resubmitted later.
    pub fn try_push(&self, item: T) -> Result<(), PushRejected<T>> {
        match self.try_acquire_credit() {
            Ok(()) => {
                self.push_with_credit(item);
                Ok(())
            }
            Err(PushRejected::Full(())) => {
                self.full_events.fetch_add(1, Ordering::SeqCst);
                Err(PushRejected::Full(item))
            }
            Err(PushRejected::Closed(())) => Err(PushRejected::Closed(item)),
        }
    }

    /// Enqueues, blocking while the ring is full: spins briefly (the consumer
    /// usually frees a slot quickly), then parks on the ring's [`ParkGate`] until
    /// space frees or the ring closes.
    pub fn push(&self, item: T) -> Result<(), PushRejected<T>> {
        let mut spins = 0u32;
        let mut counted_full = false;
        loop {
            match self.try_acquire_credit() {
                Ok(()) => {
                    self.push_with_credit(item);
                    return Ok(());
                }
                Err(PushRejected::Closed(())) => return Err(PushRejected::Closed(item)),
                Err(PushRejected::Full(())) => {
                    if !counted_full {
                        self.full_events.fetch_add(1, Ordering::SeqCst);
                        counted_full = true;
                    }
                    if spins < SPIN_LIMIT {
                        spins += 1;
                        crate::sync::hint::spin_loop();
                        if spins.is_multiple_of(32) {
                            crate::sync::thread::yield_now();
                        }
                        continue;
                    }
                    // Park until space frees or the ring closes; then retry the
                    // credit race from the top (another producer may win it).
                    self.space.wait_while(|| {
                        !self.is_closed() && self.queued.load(Ordering::SeqCst) >= self.capacity
                    });
                    spins = 0;
                }
            }
        }
    }

    /// Pops the oldest item, releasing its capacity credit and waking one round of
    /// parked producers. Intended for the single consumer currently servicing the
    /// ring, but safe from any thread.
    pub fn pop(&self) -> Option<T> {
        let item = self.ring.try_pop()?;
        self.serviced.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_sub(1, Ordering::SeqCst);
        self.space.notify();
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn ring_is_fifo_single_threaded() {
        let ring = MpmcRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring hands the item back");
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        // Wrap around several laps.
        for lap in 0..10 {
            ring.try_push(lap).unwrap();
            assert_eq!(ring.try_pop(), Some(lap));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_capacity_rounds_up_to_power_of_two() {
        assert_eq!(MpmcRing::<u8>::new(0).capacity(), 2);
        assert_eq!(MpmcRing::<u8>::new(3).capacity(), 4);
        assert_eq!(MpmcRing::<u8>::new(8).capacity(), 8);
        assert_eq!(MpmcRing::<u8>::new(9).capacity(), 16);
    }

    #[test]
    fn ring_drop_runs_remaining_destructors() {
        let live = Arc::new(AtomicU32::new(0));
        struct Tracked(Arc<AtomicU32>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let ring = MpmcRing::new(8);
            for _ in 0..5 {
                live.fetch_add(1, Ordering::SeqCst);
                ring.try_push(Tracked(Arc::clone(&live))).ok().unwrap();
            }
            drop(ring.try_pop()); // one popped and dropped
        }
        assert_eq!(live.load(Ordering::SeqCst), 0, "all items dropped");
    }

    #[test]
    fn ingress_capacity_is_exact_not_rounded() {
        let ring: IngressRing<u32> = IngressRing::with_capacity(3);
        assert_eq!(ring.capacity(), 3);
        for i in 0..3 {
            ring.try_push(i).unwrap();
        }
        match ring.try_push(99) {
            Err(PushRejected::Full(99)) => {}
            other => panic!("expected Full(99), got {other:?}"),
        }
        assert_eq!(ring.full_events(), 1);
        assert_eq!(ring.pop(), Some(0));
        ring.try_push(3).unwrap();
        assert_eq!(ring.len(), 3);
        assert_eq!(
            [ring.pop(), ring.pop(), ring.pop()],
            [Some(1), Some(2), Some(3)]
        );
        assert_eq!(ring.accepted(), 4);
        assert_eq!(ring.serviced(), 4);
    }

    #[test]
    fn ingress_close_rejects_and_wakes() {
        let ring: Arc<IngressRing<u32>> = Arc::new(IngressRing::with_capacity(1));
        ring.try_push(7).unwrap();
        let blocked = Arc::clone(&ring);
        let t = std::thread::spawn(move || blocked.push(8));
        // The producer parks (or spins) on the full ring; closing must wake it.
        while ring.space.waiters() == 0 && !t.is_finished() {
            std::thread::yield_now();
        }
        assert!(!ring.close(), "first close reports not-previously-closed");
        match t.join().unwrap() {
            Err(PushRejected::Closed(8)) => {}
            other => panic!("expected Closed(8), got {other:?}"),
        }
        assert!(ring.close(), "second close reports already-closed");
        assert!(matches!(ring.try_push(9), Err(PushRejected::Closed(9))));
        // Items accepted before the close stay poppable.
        assert_eq!(ring.pop(), Some(7));
    }

    #[test]
    fn park_gate_handshake_is_lossless() {
        // The spin-model for the push/park handshake: a slow consumer frees slots
        // one by one while several producers blocking-push through a tiny ring.
        // Every push must land exactly once, in per-producer order, with no thread
        // left parked — a lost wakeup hangs the test (caught by the harness
        // timeout), a double-delivery breaks the multiset assertion.
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let ring: Arc<IngressRing<u64>> = Arc::new(IngressRing::with_capacity(2));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        ring.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        while seen.len() < (PRODUCERS * PER_PRODUCER) as usize {
            if let Some(v) = ring.pop() {
                seen.push(v);
                if seen.len().is_multiple_of(64) {
                    std::thread::yield_now(); // vary the interleaving
                }
            } else {
                std::hint::spin_loop();
            }
        }
        for t in producers {
            t.join().unwrap();
        }
        assert_eq!(ring.pop(), None);
        // Per-producer FIFO survives the contention.
        for p in 0..PRODUCERS {
            let per: Vec<u64> = seen
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == p)
                .collect();
            let expect: Vec<u64> = (0..PER_PRODUCER).map(|i| p * PER_PRODUCER + i).collect();
            assert_eq!(per, expect, "producer {p} order");
        }
    }
}
