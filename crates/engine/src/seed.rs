//! The deterministic seed tree.
//!
//! A campaign's randomness is a pure function of `(master seed, point key, trial
//! index)`. The point *key* — not its position in the grid — feeds the derivation, so
//! appending, removing or reordering grid points never changes the random stream of
//! the surviving points; that is what makes checkpoint/append workflows sound.
//!
//! Derivation: FNV-1a hashes the key string, then two rounds of the SplitMix64
//! finalizer mix master seed, key hash and trial index into the child seed. SplitMix64
//! is bijective and avalanching, so child seeds collide no more often than 64-bit
//! random values.

use rand::rngs::StdRng;
use rand::{split_mix64, SeedableRng};

/// FNV-1a hash of a point key.
pub fn key_hash(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Derives the child seed for one `(master, point key, trial)` triple.
pub fn trial_seed(master_seed: u64, point_key: &str, trial: u64) -> u64 {
    derive(master_seed, key_hash(point_key), trial)
}

fn derive(master_seed: u64, key_hash: u64, trial: u64) -> u64 {
    let mut state = master_seed ^ key_hash.rotate_left(17);
    let a = split_mix64(&mut state);
    let mut state2 = a ^ trial.wrapping_mul(0x9E3779B97F4A7C15);
    split_mix64(&mut state2)
}

/// Builds the replayable RNG of one trial. This is the only constructor the executor
/// uses, so calling it with the same arguments reproduces a trial's randomness exactly.
pub fn trial_rng(master_seed: u64, point_key: &str, trial: u64) -> StdRng {
    StdRng::seed_from_u64(trial_seed(master_seed, point_key, trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            trial_seed(1, "point-a", 0),
            trial_seed(1, "point-a", 0),
            "derivation must be a pure function"
        );
    }

    #[test]
    fn seeds_differ_across_axes() {
        let base = trial_seed(1, "point-a", 0);
        assert_ne!(base, trial_seed(2, "point-a", 0), "master seed axis");
        assert_ne!(base, trial_seed(1, "point-b", 0), "point key axis");
        assert_ne!(base, trial_seed(1, "point-a", 1), "trial axis");
    }

    #[test]
    fn point_identity_is_positional_independent() {
        // The same key yields the same stream no matter where the point sits in a grid —
        // there is no positional input to the derivation at all.
        let mut a = trial_rng(7, "sir=-20;mcs=qpsk12", 3);
        let mut b = trial_rng(7, "sir=-20;mcs=qpsk12", 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn child_seeds_spread_over_trials() {
        let mut seen = std::collections::HashSet::new();
        for trial in 0..10_000u64 {
            seen.insert(trial_seed(0xC0FFEE, "p", trial));
        }
        assert_eq!(
            seen.len(),
            10_000,
            "no collisions over a realistic campaign"
        );
    }
}
