//! Campaign description: engine-level configuration and the grid-point contract.

/// Engine-level configuration of one campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Human-readable campaign name; recorded in checkpoints and reports.
    pub name: String,
    /// Master seed of the deterministic seed tree (see [`crate::seed`]).
    pub master_seed: u64,
    /// Monte-Carlo trials per grid point (the paper uses 2000 per operating point).
    pub trials_per_point: usize,
    /// Worker threads; `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
}

impl CampaignConfig {
    /// A campaign with the given name and seed, defaulting to 100 trials per point and
    /// auto-detected parallelism.
    pub fn new(name: impl Into<String>, master_seed: u64) -> Self {
        CampaignConfig {
            name: name.into(),
            master_seed,
            trials_per_point: 100,
            threads: 0,
        }
    }

    /// Sets the trial count per point.
    pub fn trials(mut self, trials_per_point: usize) -> Self {
        self.trials_per_point = trials_per_point;
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective worker count after resolving `0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One operating point of a campaign grid.
///
/// The engine never inspects the point beyond this trait; the experiment harness
/// defines concrete point types (scenario, receiver set, modulation, …) and the trial
/// closure that interprets them.
pub trait CampaignPoint: Sync {
    /// Stable identity of the point: equal keys mean "the same experiment".
    ///
    /// The key feeds both the seed tree and checkpoint resume, so it must encode every
    /// parameter that affects the trial's outcome distribution (scenario parameters,
    /// modulation, receiver configuration — including the subcarrier-decision stage
    /// and the interference-estimator backend, so decoder and estimator sweeps are
    /// ordinary grid dimensions — payload length, …). Position in the grid must *not*
    /// be encoded, so grids can be appended to without invalidating recorded points.
    fn key(&self) -> String;

    /// Display label for reports; defaults to the key.
    fn label(&self) -> String {
        self.key()
    }

    /// Labels of the point's *arms* — the receivers (or other alternatives) each trial
    /// measures simultaneously on the same realization.
    fn arm_labels(&self) -> Vec<String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct P;

    impl CampaignPoint for P {
        fn key(&self) -> String {
            "p".into()
        }

        fn arm_labels(&self) -> Vec<String> {
            vec!["only".into()]
        }
    }

    #[test]
    fn config_builder_and_defaults() {
        let c = CampaignConfig::new("fig8", 0xC0FFEE)
            .trials(2000)
            .threads(4);
        assert_eq!(c.name, "fig8");
        assert_eq!(c.trials_per_point, 2000);
        assert_eq!(c.effective_threads(), 4);
        let auto = CampaignConfig::new("x", 1);
        assert!(auto.effective_threads() >= 1);
    }

    #[test]
    fn default_label_is_key() {
        assert_eq!(P.label(), "p");
    }
}
