//! The engine's concurrency facade: every sync primitive the lock-free
//! subsystems use is imported through this module, never from `std` directly.
//!
//! In a normal build the re-exports resolve to `std` (zero-cost — they are
//! the very same types). Under `--cfg cprecycle_conc` they resolve to the
//! [`conc`] model checker's instrumented shims instead, so the *same source*
//! of [`crate::ring`], [`crate::pool`] and `cprecycle::chunk_pool` runs under
//! exhaustive bounded-interleaving exploration in the model-check suites
//! (`tests/conc_models.rs` here, `tests/conc_chunk_pool.rs` in `cprecycle`).
//!
//! Two deliberate exceptions stay on `std` unconditionally:
//!
//! * [`Arc`] — pure reference counting with no schedule-relevant behaviour;
//!   instrumenting it would only bloat the state space.
//! * `std::thread::scope` (used by [`crate::pool::run_claiming`]) — scoped
//!   spawns are not modeled; `run_claiming` is exercised by the engine's
//!   deterministic-replay tests instead of the model suites.
//!
//! Checked builds are driven as
//! `RUSTFLAGS="--cfg cprecycle_conc" cargo test -p cprecycle-engine --test conc_models`
//! (see `.github/workflows/ci.yml`, job `model-check`).

pub use std::sync::Arc;

#[cfg(not(cprecycle_conc))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(cprecycle_conc)]
pub use conc::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types and memory orderings (std or `conc` instrumented).
pub mod atomic {
    #[cfg(not(cprecycle_conc))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(cprecycle_conc)]
    pub use conc::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawn/join and cooperative yielding (std or `conc` instrumented).
pub mod thread {
    #[cfg(not(cprecycle_conc))]
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle};

    #[cfg(cprecycle_conc)]
    pub use conc::thread::{spawn, yield_now, Builder, JoinHandle};
}

/// Spin-loop hinting (std or `conc` instrumented).
pub mod hint {
    #[cfg(not(cprecycle_conc))]
    pub use std::hint::spin_loop;

    #[cfg(cprecycle_conc)]
    pub use conc::hint::spin_loop;
}
