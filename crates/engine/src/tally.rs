//! Trial records and campaign aggregates.
//!
//! A trial produces one [`TrialOutcome`] per *arm* (receiver under test); the executor
//! reduces them — always in trial-index order, so floating-point sums are bit-stable —
//! into per-point [`ArmTally`]s and finally a [`CampaignResult`].

use cpjson::{object, FromJson, JsonError, ToJson, Value};

/// What one trial observed for one arm.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Whether the packet (or other unit of work) succeeded.
    pub success: bool,
    /// An auxiliary scalar metric (the harness uses the uncoded symbol error rate).
    pub metric: f64,
    /// Optional auxiliary sample stream (e.g. per-AP neighbor counts for CDF figures);
    /// concatenated across trials in trial order.
    pub samples: Vec<f64>,
}

impl TrialOutcome {
    /// A plain success/failure outcome with a metric and no sample stream.
    pub fn new(success: bool, metric: f64) -> Self {
        TrialOutcome {
            success,
            metric,
            samples: Vec::new(),
        }
    }
}

/// All arms' outcomes for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// One outcome per arm, in [`crate::CampaignPoint::arm_labels`] order.
    pub arms: Vec<TrialOutcome>,
}

/// Aggregated outcomes of one arm at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmTally {
    /// Arm label (receiver name).
    pub label: String,
    /// Trials reduced into this tally.
    pub trials: usize,
    /// Successful trials.
    pub successes: usize,
    /// Sum of the auxiliary metric over trials, reduced in trial-index order.
    pub metric_sum: f64,
    /// Concatenated auxiliary samples, in trial-index order.
    pub samples: Vec<f64>,
}

impl ArmTally {
    /// An empty tally for `label`.
    pub fn empty(label: String) -> Self {
        ArmTally {
            label,
            trials: 0,
            successes: 0,
            metric_sum: 0.0,
            samples: Vec::new(),
        }
    }

    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Success rate in percent, as the paper plots it.
    pub fn success_percent(&self) -> f64 {
        100.0 * self.success_rate()
    }

    /// Mean auxiliary metric.
    pub fn metric_mean(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.metric_sum / self.trials as f64
        }
    }

    /// 95% Wilson score interval of the success rate, in `[0, 1]`.
    pub fn wilson_ci95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.success_rate();
        let z = 1.959_963_984_540_054f64; // Φ⁻¹(0.975)
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Aggregated result of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The point's stable identity (see [`crate::CampaignPoint::key`]).
    pub key: String,
    /// Display label.
    pub label: String,
    /// Whether all configured trials have been reduced (resume reruns incomplete
    /// points from scratch).
    pub complete: bool,
    /// Trials reduced into the tallies.
    pub trials: usize,
    /// Per-arm tallies.
    pub arms: Vec<ArmTally>,
    /// Sum of individual trial wall-clock durations in seconds. *Not* covered by the
    /// determinism contract.
    pub elapsed_secs: f64,
}

/// A full campaign result; doubles as the checkpoint format (see
/// [`crate::checkpoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Campaign name from [`crate::CampaignConfig::name`].
    pub name: String,
    /// Master seed the tallies were produced under.
    pub master_seed: u64,
    /// Configured trials per point.
    pub trials_per_point: usize,
    /// Per-point results, in grid order.
    pub points: Vec<PointResult>,
    /// Wall-clock duration of the producing run in seconds (excludes resumed points).
    /// *Not* covered by the determinism contract.
    pub total_elapsed_secs: f64,
    /// Worker threads used by the producing run. *Not* covered by the determinism
    /// contract.
    pub threads: usize,
}

impl CampaignResult {
    /// Looks up a point result by key.
    pub fn point(&self, key: &str) -> Option<&PointResult> {
        self.points.iter().find(|p| p.key == key)
    }

    /// Total trials executed across all points.
    pub fn total_trials(&self) -> usize {
        self.points.iter().map(|p| p.trials).sum()
    }

    /// The fields covered by the determinism contract (everything except timing and
    /// thread count), for equality assertions in tests.
    pub fn deterministic_view(&self) -> Vec<DeterministicPointView> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.key.clone(),
                    p.complete,
                    p.trials,
                    p.arms
                        .iter()
                        .map(|a| {
                            (
                                a.label.clone(),
                                a.trials,
                                a.successes,
                                a.metric_sum.to_bits(),
                                a.samples.iter().map(|s| s.to_bits()).collect(),
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

/// One arm of [`CampaignResult::deterministic_view`]: `(label, trials, successes,
/// metric-sum bits, sample bits)` — floats as raw bits so "identical" means
/// bit-identical.
pub type DeterministicArmView = (String, usize, usize, u64, Vec<u64>);

/// One point of [`CampaignResult::deterministic_view`]: `(key, complete, trials,
/// arms)`.
pub type DeterministicPointView = (String, bool, usize, Vec<DeterministicArmView>);

// ---------------------------------------------------------------------------
// JSON conversions (checkpoint format)
// ---------------------------------------------------------------------------

impl ToJson for ArmTally {
    fn to_json(&self) -> Value {
        let (lo, hi) = self.wilson_ci95();
        object(vec![
            ("label", self.label.to_json()),
            ("trials", self.trials.to_json()),
            ("successes", self.successes.to_json()),
            ("success_percent", self.success_percent().to_json()),
            ("ci95_percent", vec![100.0 * lo, 100.0 * hi].to_json()),
            ("metric_sum", self.metric_sum.to_json()),
            ("samples", self.samples.to_json()),
        ])
    }
}

impl FromJson for ArmTally {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(ArmTally {
            label: value.field_as("label")?,
            trials: value.field_as("trials")?,
            successes: value.field_as("successes")?,
            metric_sum: value.field_as("metric_sum")?,
            samples: value.field_as("samples")?,
        })
    }
}

impl ToJson for PointResult {
    fn to_json(&self) -> Value {
        object(vec![
            ("key", self.key.to_json()),
            ("label", self.label.to_json()),
            ("complete", self.complete.to_json()),
            ("trials", self.trials.to_json()),
            ("elapsed_secs", self.elapsed_secs.to_json()),
            ("arms", self.arms.to_json()),
        ])
    }
}

impl FromJson for PointResult {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(PointResult {
            key: value.field_as("key")?,
            label: value.field_as("label")?,
            complete: value.field_as("complete")?,
            trials: value.field_as("trials")?,
            elapsed_secs: value.field_as("elapsed_secs")?,
            arms: value.field_as("arms")?,
        })
    }
}

/// Version tag of the checkpoint format.
pub const FORMAT: &str = "cprecycle-campaign/v1";

impl ToJson for CampaignResult {
    fn to_json(&self) -> Value {
        object(vec![
            ("format", FORMAT.to_json()),
            ("name", self.name.to_json()),
            ("master_seed", self.master_seed.to_json()),
            ("trials_per_point", self.trials_per_point.to_json()),
            ("total_elapsed_secs", self.total_elapsed_secs.to_json()),
            ("threads", self.threads.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for CampaignResult {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        let format: String = value.field_as("format")?;
        if format != FORMAT {
            return Err(JsonError::Type {
                expected: format!("checkpoint format {FORMAT}"),
                found: format,
            });
        }
        Ok(CampaignResult {
            name: value.field_as("name")?,
            master_seed: value.field_as("master_seed")?,
            trials_per_point: value.field_as("trials_per_point")?,
            points: value.field_as("points")?,
            total_elapsed_secs: value.field_as("total_elapsed_secs")?,
            threads: value.field_as("threads")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tally() -> ArmTally {
        ArmTally {
            label: "Standard".into(),
            trials: 100,
            successes: 88,
            metric_sum: 1.75,
            samples: vec![1.0, 2.0],
        }
    }

    #[test]
    fn rates_and_means() {
        let t = sample_tally();
        assert!((t.success_rate() - 0.88).abs() < 1e-12);
        assert!((t.success_percent() - 88.0).abs() < 1e-12);
        assert!((t.metric_mean() - 0.0175).abs() < 1e-12);
        let empty = ArmTally::empty("x".into());
        assert_eq!(empty.success_rate(), 0.0);
        assert_eq!(empty.metric_mean(), 0.0);
    }

    #[test]
    fn wilson_interval_brackets_the_estimate() {
        let t = sample_tally();
        let (lo, hi) = t.wilson_ci95();
        assert!(lo < 0.88 && 0.88 < hi);
        assert!(lo > 0.79 && hi < 0.94, "({lo}, {hi})");
        // Degenerate cases stay inside [0, 1].
        let all = ArmTally {
            successes: 100,
            ..sample_tally()
        };
        let (lo, hi) = all.wilson_ci95();
        assert!(lo > 0.9 && hi <= 1.0);
        let none = ArmTally {
            successes: 0,
            ..sample_tally()
        };
        let (lo, hi) = none.wilson_ci95();
        assert!(lo < 1e-9 && hi < 0.1);
    }

    #[test]
    fn campaign_result_json_roundtrip() {
        let result = CampaignResult {
            name: "fig8".into(),
            master_seed: u64::MAX - 5,
            trials_per_point: 100,
            points: vec![PointResult {
                key: "sir=-20".into(),
                label: "SIR −20 dB".into(),
                complete: true,
                trials: 100,
                arms: vec![sample_tally()],
                elapsed_secs: 1.5,
            }],
            total_elapsed_secs: 2.0,
            threads: 4,
        };
        let text = result.to_json().pretty();
        let back = CampaignResult::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn format_mismatch_is_rejected() {
        let mut v = CampaignResult {
            name: "x".into(),
            master_seed: 1,
            trials_per_point: 1,
            points: vec![],
            total_elapsed_secs: 0.0,
            threads: 1,
        }
        .to_json();
        if let Value::Object(fields) = &mut v {
            fields[0].1 = Value::Str("other/v9".into());
        }
        assert!(CampaignResult::from_json(&v).is_err());
    }

    #[test]
    fn deterministic_view_ignores_timing() {
        let mut a = CampaignResult {
            name: "x".into(),
            master_seed: 1,
            trials_per_point: 1,
            points: vec![],
            total_elapsed_secs: 1.0,
            threads: 1,
        };
        let mut b = a.clone();
        b.total_elapsed_secs = 99.0;
        b.threads = 16;
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        a.points.push(PointResult {
            key: "k".into(),
            label: "k".into(),
            complete: true,
            trials: 1,
            arms: vec![],
            elapsed_secs: 0.5,
        });
        assert_ne!(a.deterministic_view(), b.deterministic_view());
    }
}
