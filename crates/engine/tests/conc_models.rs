//! Exhaustive model-check suite for the engine's lock-free primitives.
//!
//! Built and run **only** under `--cfg cprecycle_conc` (the `model-check` CI
//! job: `RUSTFLAGS="--cfg cprecycle_conc" cargo test -p cprecycle-engine
//! --test conc_models`). Under that cfg the `cprecycle_engine::sync` facade
//! resolves to the `conc` instrumented shims, so the *production source* of
//! [`MpmcRing`], [`IngressRing`] and [`ParkGate`] is explored over every
//! bounded interleaving — including the stale-value reads non-`SeqCst`
//! atomics permit — rather than sampled by stress tests.
//!
//! Layout:
//! * per-primitive invariant suites (≥ 3 producer/consumer configurations
//!   each): MPMC exactly-once delivery, credit-capacity bounds, ParkGate
//!   lost-wakeup freedom, flush-ticket shutdown vs a full ring, and the
//!   server's scheduled-flag dance (distilled — see [`slot_sim`]);
//! * seeded-mutation tests proving the checker *fails* when a load-bearing
//!   ordering is weakened (the CI teeth the ISSUE asks for);
//! * pinned replays of the two known-hairy interleavings, with their
//!   schedules printed in the source.
#![cfg(cprecycle_conc)]

use std::sync::Arc;

use conc::{model, Builder, FailureKind};
use cprecycle_engine::ring::{IngressRing, MpmcRing, ParkGate, PushRejected};
use cprecycle_engine::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use cprecycle_engine::sync::{Condvar, Mutex};

/// `conc::thread` re-exported for spawning model threads in the shapes below.
use conc::thread as cthread;

// ---------------------------------------------------------------------------
// MpmcRing: exactly-once delivery
// ---------------------------------------------------------------------------

/// Bounded-exhaustive exploration: every interleaving with at most
/// `preemptions` involuntary context switches (the loom/CHESS result: almost
/// all concurrency bugs manifest within 2 preemptions). The small shapes in
/// this file run unbounded via [`model`]; the raw-ring and worker-pool shapes
/// use this to keep the search in CI budget, and still assert the bounded
/// space was *fully* explored.
fn model_bounded(preemptions: u32, f: impl Fn() + Send + Sync + 'static) {
    match Builder::new().max_preemptions(preemptions).check(f) {
        Ok(report) => assert!(
            report.complete,
            "bounded exploration must exhaust its space: {report:?}"
        ),
        Err(failure) => panic!("model check failed: {failure}"),
    }
}

/// Like [`model_bounded`] but additionally pins the stale-read window to 1
/// (fresh reads only), for the densest shapes where stale-value branching
/// multiplies an already-wide interleaving space. The protocol's stale-read
/// behaviour is still covered by the lighter shapes that keep the default
/// window.
fn model_tight(preemptions: u32, f: impl Fn() + Send + Sync + 'static) {
    let report = Builder::new()
        .max_preemptions(preemptions)
        .stale_window(1)
        .check(f)
        .unwrap_or_else(|failure| panic!("model check failed: {failure}"));
    assert!(
        report.complete,
        "bounded exploration incomplete: {report:?}"
    );
}

/// Asserts every value in `0..n` was delivered exactly once.
fn assert_exactly_once(delivered: &[AtomicUsize]) {
    for (v, count) in delivered.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "value {v} must be delivered exactly once"
        );
    }
}

#[test]
fn ring_2p1c_exactly_once() {
    model_bounded(2, || {
        let ring = Arc::new(MpmcRing::new(2));
        let delivered: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let producers: Vec<_> = (0..2usize)
            .map(|v| {
                let ring = Arc::clone(&ring);
                cthread::spawn(move || {
                    ring.try_push(v).expect("capacity-2 ring fits both");
                })
            })
            .collect();
        let mut got = 0;
        while got < 2 {
            if let Some(v) = ring.try_pop() {
                delivered[v].fetch_add(1, Ordering::SeqCst);
                got += 1;
            } else {
                conc::hint::spin_loop();
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(ring.try_pop(), None, "nothing left after both deliveries");
        assert_exactly_once(&delivered[..]);
    });
}

#[test]
fn ring_1p2c_exactly_once() {
    model_bounded(2, || {
        let ring: Arc<MpmcRing<usize>> = Arc::new(MpmcRing::new(2));
        let delivered: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let delivered = Arc::clone(&delivered);
                cthread::spawn(move || loop {
                    if let Some(v) = ring.try_pop() {
                        delivered[v].fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    conc::hint::spin_loop();
                })
            })
            .collect();
        ring.try_push(0usize).expect("push 0");
        ring.try_push(1usize).expect("push 1");
        for c in consumers {
            c.join().unwrap();
        }
        assert_exactly_once(&delivered[..]);
    });
}

#[test]
fn ring_2p2c_exactly_once() {
    // Four mutating threads over the raw ring: the densest shape here, so it
    // trades stale-value branching for schedule coverage (the 2p1c and 1p2c
    // shapes keep the full stale window and cover the same read paths with
    // fewer interleavings).
    model_tight(2, || {
        let ring = Arc::new(MpmcRing::new(2));
        let delivered: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let producers: Vec<_> = (0..2usize)
            .map(|v| {
                let ring = Arc::clone(&ring);
                cthread::spawn(move || {
                    ring.try_push(v).expect("capacity-2 ring fits both");
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let delivered = Arc::clone(&delivered);
                cthread::spawn(move || loop {
                    if let Some(v) = ring.try_pop() {
                        delivered[v].fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    conc::hint::spin_loop();
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_exactly_once(&delivered[..]);
    });
}

#[test]
fn ring_single_producer_fifo() {
    model(|| {
        let ring = Arc::new(MpmcRing::new(2));
        let r2 = Arc::clone(&ring);
        let producer = cthread::spawn(move || {
            r2.try_push(10usize).expect("push 10");
            r2.try_push(20usize).expect("push 20");
        });
        let mut seen = Vec::new();
        while seen.len() < 2 {
            if let Some(v) = ring.try_pop() {
                seen.push(v);
            } else {
                conc::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![10, 20], "cursor-claim order is FIFO");
    });
}

// ---------------------------------------------------------------------------
// IngressRing credits: the capacity bound is exact under any interleaving
// ---------------------------------------------------------------------------

#[test]
fn credits_cap1_exactly_one_push_wins() {
    model(|| {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        let wins = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..2usize)
            .map(|v| {
                let ring = Arc::clone(&ring);
                let wins = Arc::clone(&wins);
                cthread::spawn(move || match ring.try_push(v) {
                    Ok(()) => {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(PushRejected::Full(back)) => assert_eq!(back, v, "item handed back"),
                    Err(PushRejected::Closed(_)) => panic!("ring never closed"),
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::SeqCst),
            1,
            "capacity 1: exactly one concurrent try_push may win"
        );
        assert_eq!(
            ring.len(),
            1,
            "credit count matches the single accepted item"
        );
        assert!(ring.pop().is_some());
        assert_eq!(ring.pop(), None);
    });
}

#[test]
fn credits_never_exceed_capacity() {
    model_bounded(2, || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(2));
        let producers: Vec<_> = (0..3usize)
            .map(|v| {
                let ring = Arc::clone(&ring);
                cthread::spawn(move || {
                    let _ = ring.try_push(v);
                    assert!(
                        ring.len() <= ring.capacity(),
                        "credits above capacity observed"
                    );
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let queued = ring.len();
        assert!(queued <= 2, "final credit count {queued} exceeds capacity");
        let accepted = ring.accepted() as usize;
        assert_eq!(accepted, queued, "every credit maps to one accepted item");
        for _ in 0..queued {
            assert!(ring.pop().is_some(), "each credit-backed item is poppable");
        }
        assert_eq!(ring.pop(), None);
    });
}

#[test]
fn credits_release_reopens_capacity() {
    model(|| {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        ring.try_push(1).expect("empty ring accepts");
        let r2 = Arc::clone(&ring);
        let consumer = cthread::spawn(move || {
            assert_eq!(r2.pop(), Some(1), "first item pops");
        });
        // Concurrent second push: either rejected (credit still held) or
        // accepted (pop already released it) — never both lost/duplicated.
        let pushed_second = ring.try_push(2).is_ok();
        consumer.join().unwrap();
        if pushed_second {
            assert_eq!(ring.pop(), Some(2));
        } else {
            // The credit was still held at push time; after the pop the
            // capacity must be observably free again.
            assert_eq!(ring.len(), 0);
            ring.try_push(2).expect("released credit reopens capacity");
            assert_eq!(ring.pop(), Some(2));
        }
        assert_eq!(ring.serviced(), ring.accepted(), "accounting balances");
    });
}

// ---------------------------------------------------------------------------
// ParkGate: no lost wakeup under the SeqCst waiter protocol
// ---------------------------------------------------------------------------

#[test]
fn gate_blocking_push_cap1_no_lost_wakeup() {
    // The capacity-1 park handshake: the producer's second push must park (or
    // spin) until the consumer's pop releases the credit; a lost wakeup would
    // deadlock and be reported by the checker. Explored over every schedule.
    model_bounded(2, || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        let r2 = Arc::clone(&ring);
        let producer = cthread::spawn(move || {
            r2.push(1).expect("open ring accepts");
            r2.push(2)
                .expect("second push lands after the pop frees space");
        });
        let mut seen = Vec::new();
        while seen.len() < 2 {
            if let Some(v) = ring.pop() {
                seen.push(v);
            } else {
                conc::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![1, 2], "per-producer FIFO through the park path");
    });
}

#[test]
fn gate_two_blocking_producers_cap1() {
    model_bounded(2, || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        let delivered: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let producers: Vec<_> = (0..2usize)
            .map(|v| {
                let ring = Arc::clone(&ring);
                cthread::spawn(move || {
                    ring.push(v).expect("blocking push lands eventually");
                })
            })
            .collect();
        let mut got = 0;
        while got < 2 {
            if let Some(v) = ring.pop() {
                delivered[v].fetch_add(1, Ordering::SeqCst);
                got += 1;
            } else {
                conc::hint::spin_loop();
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_exactly_once(&delivered[..]);
    });
}

#[test]
fn gate_close_wakes_parked_producer() {
    model_bounded(2, || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        ring.try_push(7).expect("fill the ring");
        let r2 = Arc::clone(&ring);
        let producer = cthread::spawn(move || r2.push(8));
        ring.close();
        match producer.join().unwrap() {
            Err(PushRejected::Closed(8)) => {}
            other => panic!("parked producer must see the close, got {other:?}"),
        }
        assert_eq!(ring.pop(), Some(7), "pre-close item stays poppable");
    });
}

#[test]
fn gate_direct_handshake_lossless() {
    // ParkGate in isolation: waiter blocks on a flag, peer clears it and
    // notifies. The SeqCst protocol (registration, re-check, release, count
    // read in one total order) means no schedule loses the wakeup.
    model(|| {
        let gate = Arc::new(ParkGate::new());
        let busy = Arc::new(AtomicBool::new(true));
        let (g2, b2) = (Arc::clone(&gate), Arc::clone(&busy));
        let waiter = cthread::spawn(move || {
            g2.wait_while(|| b2.load(Ordering::SeqCst));
        });
        busy.store(false, Ordering::SeqCst);
        gate.notify();
        waiter.join().unwrap();
        assert_eq!(gate.waiters(), 0, "waiter deregistered");
    });
}

// ---------------------------------------------------------------------------
// Flush tickets: shutdown cannot deadlock against a full ring
// ---------------------------------------------------------------------------

/// Distilled flush-ticket protocol from `cprecycle::server`: control items
/// never enter the (possibly full) data ring — they carry a sequence ticket
/// (chunks accepted before the flush) in a mutex side queue, and the worker
/// runs a flush exactly when its serviced count reaches the ticket.
#[test]
fn flush_ticket_shutdown_vs_full_ring() {
    model_bounded(2, || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        let tickets: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let flushed = Arc::new(AtomicUsize::new(0));

        ring.try_push(1).expect("fill the ring to capacity");

        // Raised by the shutdown thread only after the final ticket is
        // queued, mirroring the server's ordering (close ingress → enqueue
        // the ticketed flush → release the workers via pool shutdown).
        let done = Arc::new(AtomicBool::new(false));

        // Shutdown path: close, then append the final ticketed flush. The
        // ticket rides the side queue, so a full ring can never block it —
        // the property this test pins (a ring-borne flush would deadlock
        // here, and the checker would report it on every schedule).
        let (r2, t2, d2) = (Arc::clone(&ring), Arc::clone(&tickets), Arc::clone(&done));
        let shutdown = cthread::spawn(move || {
            r2.close();
            let ticket = r2.accepted();
            t2.lock().expect("tickets").push(ticket);
            d2.store(true, Ordering::SeqCst);
        });

        // Worker: drain data and run due flushes until shutdown has fully
        // handed off (ring drained + no pending ticket).
        loop {
            let due = {
                let mut t = tickets.lock().expect("tickets");
                match t.first().copied() {
                    Some(ticket) if ring.serviced() >= ticket => {
                        t.remove(0);
                        true
                    }
                    _ => false,
                }
            };
            if due {
                flushed.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            if ring.pop().is_some() {
                continue;
            }
            if done.load(Ordering::SeqCst)
                && ring.is_empty()
                && tickets.lock().expect("tickets").is_empty()
            {
                break;
            }
            conc::hint::spin_loop();
        }
        shutdown.join().unwrap();
        assert_eq!(
            flushed.load(Ordering::SeqCst),
            1,
            "the ticketed flush ran exactly once, at its stream position"
        );
        assert_eq!(
            ring.serviced(),
            ring.accepted(),
            "no chunk outlives shutdown"
        );
    });
}

// ---------------------------------------------------------------------------
// Scheduled-flag dance (distilled from cprecycle::server::service)
// ---------------------------------------------------------------------------

/// The server's per-session scheduling protocol, reduced to its load-bearing
/// atoms: a published-work counter, the `scheduled` flag, and pool jobs
/// modeled as spawned service threads. Producers publish then try to
/// transition `scheduled` false→true (the winner submits a job); the
/// servicing side drains, clears the flag, re-checks for racing publishes,
/// and re-acquires or concedes. Invariant: the slot is never drained by two
/// workers at once (asserted via `in_service`), and no published item is
/// ever stranded behind a cleared flag.
mod slot_sim {
    use super::*;
    // Test bookkeeping (exclusivity depth, counters, the job-handle vec)
    // deliberately uses *uninstrumented* std primitives: the checker's baton
    // serializes all lane execution, so plain atomics still observe
    // violations in schedule order — at zero model ops, keeping the explored
    // space to the protocol's real atoms (ring, flag, spawn/join).
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
    use std::sync::Mutex as StdMutex;

    pub struct SlotSim {
        /// Published-but-undrained items. The session's data ring reduced
        /// to its protocol-relevant observable (is there work?): the real
        /// ring's claim/stamp window and credit gate have their own suites
        /// above, and folding them in here multiplies the explored space by
        /// orders of magnitude without adding dance coverage.
        pub pending: AtomicUsize,
        pub scheduled: AtomicBool,
        /// Concurrent drain entries — must never exceed 1.
        pub in_service: StdAtomicUsize,
        /// Items drained by `service`.
        pub serviced_items: StdAtomicUsize,
        /// Times the servicing side conceded to a racing producer.
        pub concedes: StdAtomicUsize,
        /// Times the re-check re-acquired the token mid-publish and handed
        /// the slot back to the pool.
        pub requeues: StdAtomicUsize,
        /// Outstanding pool jobs, modeled as spawned service threads: the
        /// only pool property the protocol relies on is that a submitted job
        /// eventually runs on *some* worker, concurrently with everything
        /// else — which is exactly what a thread per job explores, without
        /// the wake-storms of modeled spinning workers.
        pub jobs: StdMutex<Vec<conc::thread::JoinHandle<()>>>,
    }

    impl SlotSim {
        pub fn new() -> SlotSim {
            SlotSim {
                pending: AtomicUsize::new(0),
                scheduled: AtomicBool::new(false),
                in_service: StdAtomicUsize::new(0),
                serviced_items: StdAtomicUsize::new(0),
                concedes: StdAtomicUsize::new(0),
                requeues: StdAtomicUsize::new(0),
                jobs: StdMutex::new(Vec::new()),
            }
        }
    }

    /// Queue a pool job for the slot (a new service thread). The handle is
    /// recorded before the submitter proceeds, so the drain loop in [`run`]
    /// always finds every live job through a chain of recorded handles.
    fn submit(slot: &Arc<SlotSim>) {
        let s2 = Arc::clone(slot);
        let handle = cthread::spawn(move || service(&s2));
        slot.jobs.lock().expect("job handles").push(handle);
    }

    /// Producer side: publish, then schedule the slot if nobody has.
    /// Mirrors `SessionHandle::push` (server.rs: `!scheduled.swap(true)`
    /// ⇒ submit).
    pub fn produce(slot: &Arc<SlotSim>) {
        slot.pending.fetch_add(1, Ordering::SeqCst);
        if !slot.scheduled.swap(true, Ordering::SeqCst) {
            submit(slot);
        }
    }

    /// One pool job. Mirrors `RxServer::service`'s clear → re-check →
    /// re-acquire dance; resubmits where the server returns `Some(slot)`
    /// (after this invocation ends, as the real worker loop requeues only
    /// once the handler has returned).
    fn service(slot: &Arc<SlotSim>) {
        // The exclusivity region is the *drain* (the part that mutates
        // session state in the real server). It is entered holding the
        // scheduled-flag token — acquired by whichever false→true swap
        // created this job — and exited before the token is released by
        // `store(false)`, so the clear→re-check tail below may legitimately
        // overlap the next job's entry.
        let depth = slot.in_service.fetch_add(1, StdOrdering::SeqCst);
        assert_eq!(depth, 0, "slot drained concurrently by two workers");
        let drained = slot.pending.swap(0, Ordering::SeqCst);
        slot.in_service.fetch_sub(1, StdOrdering::SeqCst);
        if drained > 0 {
            slot.serviced_items.fetch_add(drained, StdOrdering::SeqCst);
        }
        // Nothing left at the swap: clear, re-check, re-acquire or concede.
        slot.scheduled.store(false, Ordering::SeqCst);
        if slot.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        if slot.scheduled.swap(true, Ordering::SeqCst) {
            // A racing producer observed our clear and scheduled the slot
            // itself; that swap minted the one live token — concede.
            slot.concedes.fetch_add(1, StdOrdering::SeqCst);
            return;
        }
        // Re-acquired with work published after the drain swap (the server
        // sees this as a pop that fails mid-publish): hand the slot token
        // back to the pool rather than spinning (the model analogue of
        // MID_PUBLISH_SPIN_LIMIT), where a fresh job will drain it.
        slot.requeues.fetch_add(1, StdOrdering::SeqCst);
        submit(slot);
    }

    /// Runs `producers` threads × `per_producer` items and checks the
    /// exactly-once / no-strand invariants once every job has drained.
    pub fn run(producers: usize, per_producer: usize) -> Arc<SlotSim> {
        let slot = Arc::new(SlotSim::new());
        let phandles: Vec<_> = (0..producers)
            .map(|_| {
                let slot = Arc::clone(&slot);
                cthread::spawn(move || {
                    for _ in 0..per_producer {
                        produce(&slot);
                    }
                })
            })
            .collect();
        for p in phandles {
            p.join().unwrap();
        }
        // Drain the job-handle chain: every submit records its handle before
        // the submitter exits, so an empty vec means every job has finished.
        loop {
            let next = slot.jobs.lock().expect("job handles").pop();
            match next {
                Some(h) => h.join().unwrap(),
                None => break,
            }
        }
        let total = producers * per_producer;
        assert_eq!(
            slot.serviced_items.load(StdOrdering::SeqCst) as usize,
            total,
            "every published item is serviced exactly once, none stranded"
        );
        assert_eq!(
            slot.pending.load(Ordering::SeqCst),
            0,
            "no published item left undrained at shutdown"
        );
        assert!(
            !slot.scheduled.load(Ordering::SeqCst),
            "the last service exits through the empty-break, leaving the \
             flag clear for the next publish"
        );
        slot
    }
}

#[test]
fn scheduled_flag_single_publish_serviced() {
    model_tight(2, || {
        slot_sim::run(1, 1);
    });
}

#[test]
fn scheduled_flag_1p_two_items_none_stranded() {
    // The clear→re-check races a second publish from the *same* producer:
    // the item landing between the failed pop and the flag clear must be
    // picked up by the re-check, never stranded behind a cleared flag.
    // Preemption bound 1: this shape spawns follow-on jobs, so its voluntary
    // interleaving space is already wide; the single preemption is exactly
    // what lands a publish inside the dance.
    model_tight(1, || {
        slot_sim::run(1, 2);
    });
}

#[test]
fn scheduled_flag_2p_never_double_services() {
    // The headline configuration: two producers racing the flag while jobs
    // run concurrently. The `in_service` assertion inside `service` fires on
    // any schedule where the clear→re-check→re-acquire dance lets two jobs
    // coexist and double-drain the slot. Preemption bound 1 (see above).
    model_tight(1, || {
        slot_sim::run(2, 1);
    });
}

// ---------------------------------------------------------------------------
// Seeded mutations: the checker must catch a weakened ordering
// ---------------------------------------------------------------------------

/// `ParkGate` with the seeded mutation from the ISSUE: the notifier's
/// waiter-count read weakened from `SeqCst` to `Relaxed`. Everything else is
/// the production protocol verbatim.
struct WeakGate {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl WeakGate {
    fn new() -> WeakGate {
        WeakGate {
            waiters: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn wait_while(&self, mut blocked: impl FnMut() -> bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().expect("gate lock");
        while blocked() {
            guard = self.cv.wait(guard).expect("gate lock");
        }
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn notify(&self, count_order: Ordering) {
        // MUTATION UNDER TEST: with `Relaxed` the count read may miss a
        // registration that is *earlier* in the SeqCst total order than the
        // resource release, so the skip is no longer sound.
        if self.waiters.load(count_order) > 0 {
            let _guard = self.lock.lock().expect("gate lock");
            self.cv.notify_all();
        }
    }
}

/// The capacity-1 handshake shape shared by the mutation pair below.
fn weak_gate_shape(count_order: Ordering) -> impl Fn() + Send + Sync + 'static {
    move || {
        let gate = Arc::new(WeakGate::new());
        let busy = Arc::new(AtomicBool::new(true));
        let (g2, b2) = (Arc::clone(&gate), Arc::clone(&busy));
        let waiter = cthread::spawn(move || {
            g2.wait_while(|| b2.load(Ordering::SeqCst));
        });
        busy.store(false, Ordering::SeqCst);
        gate.notify(count_order);
        waiter.join().unwrap();
    }
}

#[test]
fn mutation_relaxed_notify_count_is_caught() {
    // Weakening the waiter-count read to Relaxed lets the notifier read a
    // stale 0 *after* the waiter registered, skip the notify, and strand the
    // waiter: the checker must find that schedule and report the deadlock.
    let failure = Builder::new()
        .check(weak_gate_shape(Ordering::Relaxed))
        .expect_err("the Relaxed waiter-count read must lose a wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        !failure.schedule.is_empty(),
        "failing schedule is replayable: {failure}"
    );
}

#[test]
fn mutation_control_seqcst_notify_verified() {
    // The unmutated protocol, same shape, same bounds: exhaustively clean —
    // which is what makes the mutation test meaningful.
    let report = Builder::new()
        .check(weak_gate_shape(Ordering::SeqCst))
        .expect("the SeqCst protocol has no lost wakeup");
    assert!(
        report.complete,
        "exploration must exhaust the shape: {report:?}"
    );
}

/// Second seeded mutation: the consumer's credit release weakened to a
/// `Relaxed` RMW. The parked producer's re-check (`SeqCst` load) is then no
/// longer forced to observe the release and can park forever on a free ring.
#[test]
fn mutation_relaxed_credit_release_is_caught() {
    let shape = |release_order: Ordering| {
        move || {
            let credits = Arc::new(AtomicUsize::new(1)); // capacity 1, full
            let gate = Arc::new(WeakGate::new());
            let (c2, g2) = (Arc::clone(&credits), Arc::clone(&gate));
            let producer = cthread::spawn(move || {
                // Blocking push path: park while the credit is held.
                g2.wait_while(|| c2.load(Ordering::SeqCst) >= 1);
            });
            // Consumer pop path: release the credit, then notify.
            credits.fetch_sub(1, release_order);
            gate.notify(Ordering::SeqCst);
            producer.join().unwrap();
        }
    };
    let failure = Builder::new()
        .check(shape(Ordering::Relaxed))
        .expect_err("Relaxed credit release must strand the parked producer");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    // Control: the production SeqCst release is exhaustively clean.
    let report = Builder::new()
        .check(shape(Ordering::SeqCst))
        .expect("SeqCst credit release never strands the producer");
    assert!(report.complete);
}

// ---------------------------------------------------------------------------
// Pinned hairy interleavings (satellite: schedules printed in source)
// ---------------------------------------------------------------------------

/// The capacity-1 park handshake shape used by the pinned replay and its
/// schedule-search helper. The probe counts nothing; the hairy branch is
/// observable through `full_events()`.
fn cap1_park_shape() -> impl Fn() + Send + Sync + 'static {
    || {
        let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
        let r2 = Arc::clone(&ring);
        let producer = cthread::spawn(move || {
            r2.push(1).expect("first push");
            r2.push(2).expect("second push after the pop");
        });
        let mut seen = Vec::new();
        while seen.len() < 2 {
            if let Some(v) = ring.pop() {
                seen.push(v);
            } else {
                conc::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![1, 2]);
        // Replay-mode probe: the pinned schedule must actually drive the
        // producer into the full/park branch.
        assert!(
            ring.full_events() >= 1,
            "pinned schedule no longer reaches the park path"
        );
    }
}

/// Schedule reaching the capacity-1 park handshake. Harvested by
/// `pin_search_cap1_park`; all-default (every choice 0, so the empty prefix)
/// because the checker's DFS runs each thread until it blocks: the producer
/// races ahead of the consumer, lands item 1, hits `Full` on item 2
/// (full_events ≥ 1), spins once (SPIN_LIMIT=1 under the model cfg),
/// registers on the gate and parks; only then does the consumer run — pop
/// item 1, release the credit, read the waiter count (SeqCst), take the gate
/// lock and wake the producer, which re-checks, wins the freed credit and
/// lands item 2.
///
/// Regenerate after any protocol change with:
/// `RUSTFLAGS="--cfg cprecycle_conc" cargo test -p cprecycle-engine --test \
///  conc_models pin_search_cap1_park -- --ignored --nocapture`
const PINNED_CAP1_PARK_SCHEDULE: &[u32] = &[];

#[test]
fn pinned_cap1_park_handshake_replays_clean() {
    let report = Builder::new()
        .replay(PINNED_CAP1_PARK_SCHEDULE, cap1_park_shape())
        .expect("the pinned park-handshake interleaving must stay correct");
    assert_eq!(report.schedules, 1, "replay runs exactly one schedule");
}

/// Finds (and prints) a current schedule for the capacity-1 park handshake by
/// asserting the full branch *never* happens and harvesting the violating
/// schedule. Run manually when the protocol changes (see the pinned const).
#[test]
#[ignore = "schedule-search helper; run with --ignored --nocapture to regenerate the pin"]
fn pin_search_cap1_park() {
    let failure = Builder::new()
        .check(|| {
            let ring: Arc<IngressRing<usize>> = Arc::new(IngressRing::with_capacity(1));
            let r2 = Arc::clone(&ring);
            let producer = cthread::spawn(move || {
                r2.push(1).expect("first push");
                r2.push(2).expect("second push after the pop");
            });
            let mut seen = Vec::new();
            while seen.len() < 2 {
                if let Some(v) = ring.pop() {
                    seen.push(v);
                } else {
                    conc::hint::spin_loop();
                }
            }
            producer.join().unwrap();
            assert_eq!(seen, vec![1, 2]);
            assert_eq!(ring.full_events(), 0, "probe: full branch reached");
        })
        .expect_err("some schedule must hit the full/park branch");
    println!(
        "PINNED_CAP1_PARK_SCHEDULE candidate: {:?}",
        failure.schedule
    );
}

/// The publish-window concede shape (the distilled form of the server's
/// mid-publish race): one producer publishing through the scheduled-flag
/// dance while the servicing side drains. The hairy interleaving: the second
/// publish lands between the servicer's drain and its flag clear, so the
/// re-check sees work — and either the producer wins the false→true swap
/// (servicer concedes) or the servicer re-acquires and requeues. The
/// claim-vs-stamp half of the real mid-publish window lives in the raw
/// `MpmcRing`, covered by the ring suites above.
fn midpublish_shape() -> impl Fn() + Send + Sync + 'static {
    || {
        let slot = slot_sim::run(1, 2);
        // Replay-mode probe: the pinned schedule must actually exercise the
        // concede-or-requeue branch (either outcome of the swap race).
        let concedes = slot.concedes.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            concedes >= 1,
            "pinned schedule no longer reaches the concede branch"
        );
    }
}

/// Schedule reaching the publish-window concede (harvested by
/// `pin_search_midpublish`; trailing default choices trimmed — replay pads
/// with 0s). Choices 2 and 4 are the two preemption points: the service job
/// created by the first publish drains it and clears `scheduled`; the
/// producer, preempted into the gap with its second publish, bumps `pending`
/// and wins the false→true swap, queueing a fresh job; the first job's own
/// re-acquire swap then returns `true` and it concedes — exactly one job
/// survives, and the fresh one drains item 2.
///
/// Regenerate after any protocol change with:
/// `RUSTFLAGS="--cfg cprecycle_conc" cargo test -p cprecycle-engine --test \
///  conc_models pin_search_midpublish -- --ignored --nocapture`
const PINNED_MIDPUBLISH_SCHEDULE: &[u32] = &[0, 1, 0, 1];

#[test]
fn pinned_midpublish_concede_replays_clean() {
    let report = Builder::new()
        .replay(PINNED_MIDPUBLISH_SCHEDULE, midpublish_shape())
        .expect("the pinned mid-publish concede interleaving must stay correct");
    assert_eq!(report.schedules, 1, "replay runs exactly one schedule");
}

/// Schedule-search helper for the mid-publish concede pin (see above).
#[test]
#[ignore = "schedule-search helper; run with --ignored --nocapture to regenerate the pin"]
fn pin_search_midpublish() {
    let failure = Builder::new()
        .check(|| {
            let slot = slot_sim::run(1, 2);
            assert_eq!(
                slot.concedes.load(std::sync::atomic::Ordering::SeqCst),
                0,
                "probe: concede branch reached"
            );
        })
        .expect_err("some schedule must hit the concede branch");
    println!(
        "PINNED_MIDPUBLISH_SCHEDULE candidate: {:?}",
        failure.schedule
    );
}
