//! Property and interleaving tests for the lock-free ingress ring
//! (`cprecycle_engine::ring`): FIFO ordering, exact capacity accounting, MPMC
//! delivery as a multiset, and the push/park handshake under contention.
//!
//! The single-threaded properties are proptests over random operation sequences
//! checked against a `VecDeque` model; the threaded ones are spin-model
//! interleaving tests — real threads, randomized yields, assertions that hold for
//! *every* interleaving (lost wakeups hang the test and are caught by the harness
//! timeout).

use cprecycle_engine::ring::{IngressRing, MpmcRing, PushRejected};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random push/pop sequences against a `VecDeque` model: the ring is FIFO and
    /// its full/empty answers match the model exactly (capacity is the *requested*
    /// bound for `IngressRing`, not the rounded power of two).
    #[test]
    fn ingress_matches_deque_model(
        capacity in 1usize..9,
        ops in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        let ring: IngressRing<u16> = IngressRing::with_capacity(capacity);
        let mut model: VecDeque<u16> = VecDeque::new();
        let mut accepted = 0u64;
        let mut serviced = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if op % 3 != 0 {
                // Push attempt.
                match ring.try_push(*op) {
                    Ok(()) => {
                        prop_assert!(model.len() < capacity, "op {i}: accepted past capacity");
                        model.push_back(*op);
                        accepted += 1;
                    }
                    Err(PushRejected::Full(back)) => {
                        prop_assert_eq!(back, *op, "op {}: Full must return the item", i);
                        prop_assert_eq!(model.len(), capacity, "op {}: spurious Full", i);
                    }
                    Err(PushRejected::Closed(_)) => prop_assert!(false, "never closed"),
                }
            } else {
                let got = ring.pop();
                let want = model.pop_front();
                prop_assert_eq!(got, want, "op {}: FIFO order", i);
                if got.is_some() {
                    serviced += 1;
                }
            }
            prop_assert_eq!(ring.len(), model.len(), "op {}: len", i);
            prop_assert_eq!(ring.accepted(), accepted, "op {}: accepted", i);
            prop_assert_eq!(ring.serviced(), serviced, "op {}: serviced", i);
        }
        // Drain: everything accepted comes out, in order.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop(), Some(want));
        }
        prop_assert_eq!(ring.pop(), None);
    }

    /// The raw MPMC ring under concurrent producers and consumers delivers every
    /// item exactly once (multiset equality) and preserves each producer's order.
    #[test]
    fn mpmc_delivers_exactly_once(
        producers in 1usize..4,
        consumers in 1usize..3,
        per_producer in 1usize..120,
        capacity in 2usize..17,
    ) {
        let ring: Arc<MpmcRing<u64>> = Arc::new(MpmcRing::new(capacity));
        let produced = (producers * per_producer) as u64;
        let popped: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let mut outs: Vec<std::thread::JoinHandle<Vec<u64>>> = Vec::new();
        for _ in 0..consumers {
            let ring = Arc::clone(&ring);
            let popped = Arc::clone(&popped);
            outs.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while popped.load(Ordering::SeqCst) < produced {
                    if let Some(v) = ring.try_pop() {
                        popped.fetch_add(1, Ordering::SeqCst);
                        got.push(v);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                got
            }));
        }
        let pushers: Vec<_> = (0..producers as u64)
            .map(|p| {
                let ring = Arc::clone(&ring);
                let per = per_producer as u64;
                std::thread::spawn(move || {
                    for i in 0..per {
                        let mut v = p * 1_000_000 + i;
                        loop {
                            match ring.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for t in pushers {
            t.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        let mut per_consumer: Vec<Vec<u64>> = Vec::new();
        for t in outs {
            let got = t.join().unwrap();
            all.extend_from_slice(&got);
            per_consumer.push(got);
        }
        // Exactly-once delivery: the union is the full multiset.
        all.sort_unstable();
        let mut want: Vec<u64> = (0..producers as u64)
            .flat_map(|p| (0..per_producer as u64).map(move |i| p * 1_000_000 + i))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(all, want);
        // Per-producer order is preserved within each consumer's stream (items a
        // single consumer pops from one producer arrive in production order).
        for got in &per_consumer {
            for p in 0..producers as u64 {
                let seq: Vec<u64> = got.iter().copied().filter(|v| v / 1_000_000 == p).collect();
                let mut sorted = seq.clone();
                sorted.sort_unstable();
                prop_assert_eq!(seq, sorted, "consumer-local per-producer order");
            }
        }
        prop_assert_eq!(ring.try_pop(), None);
    }
}

/// Interleaving test for the blocking push/park handshake: producers hammer a
/// capacity-1 ring through `push` (the worst case for lost wakeups — every slot
/// free is exactly one wakeup) while the consumer drains with randomized pauses.
#[test]
fn park_handshake_capacity_one_interleavings() {
    const PRODUCERS: u64 = 3;
    const PER_PRODUCER: u64 = 300;
    let ring: Arc<IngressRing<u64>> = Arc::new(IngressRing::with_capacity(1));
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    ring.push(p * PER_PRODUCER + i).unwrap();
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let mut seen = vec![0u32; (PRODUCERS * PER_PRODUCER) as usize];
    let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
    let mut drained = 0u64;
    while drained < PRODUCERS * PER_PRODUCER {
        if let Some(v) = ring.pop() {
            seen[v as usize] += 1;
            let p = (v / PER_PRODUCER) as usize;
            let i = v % PER_PRODUCER;
            // FIFO per producer even with all producers contending on one cell.
            assert!(
                last_per_producer[p].is_none_or(|prev| prev < i),
                "producer {p} reordered"
            );
            last_per_producer[p] = Some(i);
            drained += 1;
            if drained.is_multiple_of(13) {
                std::thread::yield_now();
            }
        } else {
            std::hint::spin_loop();
        }
    }
    for t in threads {
        t.join().unwrap();
    }
    assert!(seen.iter().all(|&c| c == 1), "exactly-once delivery");
    assert_eq!(ring.pop(), None);
    assert_eq!(ring.accepted(), PRODUCERS * PER_PRODUCER);
    assert_eq!(ring.serviced(), PRODUCERS * PER_PRODUCER);
}

/// `try_push` returning `Full` consumes nothing and leaves the ring intact; a pop
/// then makes exactly one slot of room. (The server's backpressure contract
/// depends on this exactness at capacity, not at the rounded ring size.)
#[test]
fn full_rejection_is_lossless_under_concurrency() {
    let ring: Arc<IngressRing<u64>> = Arc::new(IngressRing::with_capacity(2));
    ring.try_push(0).unwrap();
    ring.try_push(1).unwrap();
    let full_before = ring.full_events();
    // Concurrent rejected pushes from several threads: no slot leaks, no item lost.
    let rejecters: Vec<_> = (0..4u64)
        .map(|t| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..50 {
                    match ring.try_push(100 + t * 50 + i) {
                        Err(PushRejected::Full(v)) => assert_eq!(v, 100 + t * 50 + i),
                        other => panic!("expected Full, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in rejecters {
        t.join().unwrap();
    }
    assert_eq!(ring.len(), 2);
    assert_eq!(ring.full_events(), full_before + 200);
    assert_eq!(ring.pop(), Some(0));
    ring.try_push(2).unwrap(); // exactly one slot freed
    assert!(matches!(ring.try_push(3), Err(PushRejected::Full(3))));
    assert_eq!(
        [ring.pop(), ring.pop(), ring.pop()],
        [Some(1), Some(2), None]
    );
}
