//! # cpjson — dependency-free JSON for the CPRecycle workspace
//!
//! The build environment has no crates.io access, so `serde`/`serde_json` are not
//! available. This crate provides the small JSON layer the workspace needs instead:
//!
//! * [`Value`] — a JSON document model that keeps object-key insertion order and
//!   distinguishes integers from floats (so `u64` campaign seeds round-trip exactly);
//! * a strict recursive-descent [parser](Value::parse) and a pretty
//!   [printer](Value::pretty);
//! * the [`ToJson`] / [`FromJson`] conversion traits with implementations for the
//!   primitive types, `Vec<T>` and `Option<T>`.
//!
//! The campaign engine's checkpoint files and every figure binary's `--json` output go
//! through this crate, so the format is deliberately plain: UTF-8, `\uXXXX` escapes
//! accepted on input, only the mandatory escapes emitted on output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent (round-trips 64-bit seeds exactly).
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Errors produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input text is not valid JSON.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A value had the wrong JSON type or was out of domain for the target type.
    Type {
        /// What the conversion expected.
        expected: String,
        /// A short rendering of what was found.
        found: String,
    },
    /// A required object field is absent.
    MissingField(
        /// The field name.
        String,
    ),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Type { expected, found } => {
                write!(f, "JSON type error: expected {expected}, found {found}")
            }
            JsonError::MissingField(name) => write!(f, "missing JSON field `{name}`"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Conversion result alias.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Value {
    /// Parses a JSON document, requiring that the whole input is consumed.
    pub fn parse(text: &str) -> Result<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::Parse {
                offset: pos,
                message: "trailing characters after document".into(),
            });
        }
        Ok(value)
    }

    /// Renders the value as pretty-printed JSON (two-space indent, `\n` line ends).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, &mut out);
        out
    }

    /// Renders the value as compact single-line JSON.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required field of an object.
    pub fn field(&self, key: &str) -> Result<&Value> {
        self.get(key)
            .ok_or_else(|| JsonError::MissingField(key.to_string()))
    }

    /// Converts a required field into `T`.
    pub fn field_as<T: FromJson>(&self, key: &str) -> Result<T> {
        T::from_json(self.field(key)?)
    }

    fn type_error<T>(&self, expected: &str) -> Result<T> {
        Err(JsonError::Type {
            expected: expected.into(),
            found: self.type_name().into(),
        })
    }
}

/// Builds an object value from `(key, value)` pairs, preserving order.
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Types that can render themselves as a [`Value`].
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait FromJson: Sized {
    /// Converts a JSON value into `Self`.
    fn from_json(value: &Value) -> Result<Self>;
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => other.type_error("bool"),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => other.type_error("string"),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => other.type_error("number"),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Value) -> Result<Self> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| JsonError::Type {
                        expected: stringify!($t).into(),
                        found: format!("integer {i} out of range"),
                    }),
                    other => other.type_error(stringify!($t)),
                }
            }
        }
    )*};
}
impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => other.type_error("array"),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Value) -> Result<Self> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<K: ToString + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_error<T>(pos: usize, message: impl Into<String>) -> Result<T> {
    Err(JsonError::Parse {
        offset: pos,
        message: message.into(),
    })
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<()> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        parse_error(*pos, format!("expected `{}`", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => parse_error(*pos, "unexpected end of input"),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        parse_error(*pos, format!("expected `{word}`"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            _ => return parse_error(*pos, "expected `,` or `}` in object"),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return parse_error(*pos, "expected `,` or `]` in array"),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return parse_error(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, pos)?;
                        // Surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&unit) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    let c = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    // High surrogate not followed by a low surrogate.
                                    None
                                }
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(unit as u32)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return parse_error(*pos, "invalid \\u escape"),
                        }
                        // parse_hex4 leaves pos on the last hex digit; advance below.
                    }
                    _ => return parse_error(*pos, "invalid escape"),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return parse_error(*pos, "control character in string"),
            Some(_) => {
                // Copy one UTF-8 scalar.
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                match std::str::from_utf8(&bytes[start..end]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return parse_error(start, "invalid UTF-8"),
                }
                *pos = end;
            }
        }
    }
}

/// Parses the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at the `u`; on exit
/// it is at the last hex digit (the caller advances past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16> {
    let start = *pos + 1;
    if start + 4 > bytes.len() {
        return parse_error(*pos, "truncated \\u escape");
    }
    let hex = std::str::from_utf8(&bytes[start..start + 4]).map_err(|_| JsonError::Parse {
        offset: start,
        message: "invalid \\u escape".into(),
    })?;
    let unit = u16::from_str_radix(hex, 16).map_err(|_| JsonError::Parse {
        offset: start,
        message: "invalid \\u escape".into(),
    })?;
    *pos = start + 3;
    Ok(unit)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return parse_error(start, "expected a value");
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| JsonError::Parse {
                offset: start,
                message: format!("invalid number `{text}`: {e}"),
            })
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| JsonError::Parse {
                offset: start,
                message: format!("invalid integer `{text}`: {e}"),
            })
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep a fractional marker so floats stay floats on re-parse.
            out.push_str(&format!("{f:.1}"));
        } else {
            // `{:?}` is the shortest round-trip representation and uses an exponent
            // for large magnitudes, so whole floats >= 1e15 re-parse as floats (a bare
            // digit string would be routed to the integer path and could overflow it).
            out.push_str(&format!("{f:?}"));
        }
    } else {
        // JSON has no NaN/Inf; persist as null like serde_json's lossy modes.
        out.push_str("null");
    }
}

fn write_value(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_number(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Scalar-only arrays stay on one line to keep checkpoints readable.
            let scalar = items
                .iter()
                .all(|v| !matches!(v, Value::Array(_) | Value::Object(_)));
            if scalar {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(item, 0, out);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_value(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_value(v, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_number(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        let seed = u64::MAX - 12345;
        let v = seed.to_json();
        let text = v.pretty();
        let back: u64 = u64::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn object_roundtrip_preserves_order_and_values() {
        let v = object(vec![
            ("name", "fig8".to_json()),
            ("trials", 2000u64.to_json()),
            ("rates", vec![0.25f64, 1.0, 99.5].to_json()),
            ("done", true.to_json()),
            ("note", Value::Null),
        ]);
        let text = v.pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.field_as::<String>("name").unwrap(), "fig8");
        assert_eq!(back.field_as::<u64>("trials").unwrap(), 2000);
        assert_eq!(
            back.field_as::<Vec<f64>>("rates").unwrap(),
            vec![0.25, 1.0, 99.5]
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a": [{"b": [1, 2.5, "x"]}, []], "c": {"d": null}}"#;
        let v = Value::parse(text).unwrap();
        let again = Value::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
        let compact = Value::parse(&v.compact()).unwrap();
        assert_eq!(v, compact);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "tab\t quote\" backslash\\ newline\n unicode é 😀".to_string();
        let v = original.to_json();
        let back: String = String::from_json(&Value::parse(&v.pretty()).unwrap()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Value::parse(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
        // Surrogate pair for U+1F600.
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("😀".into()));
    }

    #[test]
    fn lone_or_mismatched_surrogates_are_errors_not_panics() {
        for text in [r#""\ud800""#, r#""\ud800A""#, r#""\udc00""#] {
            assert!(
                matches!(Value::parse(text), Err(JsonError::Parse { .. })),
                "{text}"
            );
        }
    }

    #[test]
    fn large_whole_floats_roundtrip_as_floats() {
        for f in [1e15, 1e40, -2.5e38, 1.7976931348623157e308] {
            let text = f.to_json().pretty();
            let back = Value::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, Value::Float(f), "{text}");
        }
    }

    #[test]
    fn errors_carry_position_and_kind() {
        assert!(matches!(
            Value::parse("{\"a\": }"),
            Err(JsonError::Parse { .. })
        ));
        assert!(matches!(
            Value::parse("[1, 2"),
            Err(JsonError::Parse { .. })
        ));
        assert!(matches!(Value::parse("1 2"), Err(JsonError::Parse { .. })));
        let v = Value::parse("{\"a\": 1}").unwrap();
        assert!(matches!(
            v.field("missing"),
            Err(JsonError::MissingField(_))
        ));
        assert!(matches!(
            v.field_as::<String>("a"),
            Err(JsonError::Type { .. })
        ));
    }

    #[test]
    fn floats_keep_fraction_marker() {
        let text = 100.0f64.to_json().pretty();
        assert_eq!(text, "100.0");
        assert_eq!(Value::parse(&text).unwrap(), Value::Float(100.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json().pretty(), "null");
        let v: Option<f64> = Option::from_json(&Value::parse("null").unwrap()).unwrap();
        assert_eq!(v, None);
    }
}
