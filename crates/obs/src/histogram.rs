//! Fixed-bucket base-2 logarithmic histogram.

use cpjson::{object, FromJson, ToJson, Value};

/// Number of buckets: one for zero plus one per bit position of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A log2 histogram over `u64` observations (typically nanoseconds).
///
/// Bucket 0 holds the value 0; bucket `b ≥ 1` holds values whose highest set
/// bit is `b - 1`, i.e. the half-open range `[2^(b-1), 2^b)`. `u64::MAX`
/// lands in bucket 64. Recording is a single index increment — O(1), no
/// allocation — so it is safe on per-symbol hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Maps a value to its bucket index: 0 → 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in bucket `index` (panics if `index >= NUM_BUCKETS`).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as a bucket-resolution upper bound, or
    /// `None` when empty.
    ///
    /// Walks buckets until the cumulative count reaches `ceil(q·count)` and
    /// reports that bucket's upper edge, clamped to the observed `[min, max]` —
    /// so `percentile(1.0)` is exactly `max`, `percentile(0.0)` at least `min`,
    /// and any mid quantile over-reports by at most one octave (the inherent
    /// resolution of a log2 histogram).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(index, count)` pairs, for compact export.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

impl ToJson for Log2Histogram {
    fn to_json(&self) -> Value {
        // Sparse encoding: only non-empty buckets, as [index, count] pairs.
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, c)| Value::Array(vec![(i as u64).to_json(), c.to_json()]))
            .collect();
        object(vec![
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("min", self.min().to_json()),
            ("max", self.max().to_json()),
            ("buckets", Value::Array(buckets)),
        ])
    }
}

impl FromJson for Log2Histogram {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        let mut h = Log2Histogram::new();
        h.count = value.field_as("count")?;
        h.sum = value.field_as("sum")?;
        h.min = value.field_as::<Option<u64>>("min")?.unwrap_or(u64::MAX);
        h.max = value.field_as::<Option<u64>>("max")?.unwrap_or(0);
        let buckets: Vec<Vec<u64>> = value.field_as("buckets")?;
        for pair in buckets {
            if pair.len() == 2 && (pair[0] as usize) < NUM_BUCKETS {
                h.buckets[pair[0] as usize] = pair[1];
            }
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), Some(0.0));
    }

    #[test]
    fn u64_max_goes_to_last_bucket() {
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn bucket_boundaries() {
        // Powers of two start a new bucket; the value just below stays in
        // the previous one.
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 2 + 1);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        for b in 1..64 {
            let lo = 1u64 << (b - 1);
            assert_eq!(Log2Histogram::bucket_index(lo), b, "low edge of {b}");
            let hi = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
            assert_eq!(Log2Histogram::bucket_index(hi), b, "high edge of {b}");
        }
        assert_eq!(Log2Histogram::bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn stats_and_merge() {
        let mut a = Log2Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Log2Histogram::new();
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 151);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn percentiles_walk_bucket_upper_edges() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        // p50: rank 4 of 8 → the bucket of 100 ([64,128)) → upper edge 127.
        assert_eq!(h.percentile(0.5), Some(127));
        // p100 is exactly the max; p0 clamps up to at least the min.
        assert_eq!(h.percentile(1.0), Some(1_000_000));
        assert!(h.percentile(0.0).unwrap() >= 1);
        // Monotone in q.
        let ps: Vec<u64> = [0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0]
            .iter()
            .map(|&q| h.percentile(q).unwrap())
            .collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{ps:?}");
        assert_eq!(Log2Histogram::new().percentile(0.5), None);
        // Single observation: every quantile is that value.
        let mut one = Log2Histogram::new();
        one.record(42);
        assert_eq!(one.percentile(0.5), Some(42));
        assert_eq!(one.percentile(0.99), Some(42));
    }

    #[test]
    fn json_roundtrip() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        h.record(u64::MAX);
        let text = h.to_json().pretty();
        let back = Log2Histogram::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
