//! Zero-overhead observability layer for the CPRecycle workspace.
//!
//! The crate is dependency-free (it only uses [`cpjson`] for serialisation,
//! itself dependency-free) and follows the compat-crate philosophy: a small,
//! deterministic subset of what a production metrics library would offer,
//! tailored to what the receiver and campaign engine actually need.
//!
//! # Design
//!
//! Everything funnels through the [`Recorder`] trait. Instrumented code is
//! generic over `R: Recorder` and the default implementation of every trait
//! method is an empty `#[inline]` body, so when the caller passes
//! [`NoopRecorder`] the monomorphised code contains no instrumentation at
//! all — no branches, no clock reads, no atomic traffic. The only live
//! implementation, [`InMemoryRecorder`], aggregates into plain maps behind a
//! mutex and can be shared across campaign worker threads.
//!
//! Stage timings are captured with [`StageTimer`], which consults
//! [`Recorder::enabled`] *before* touching the monotonic clock: with a no-op
//! recorder `Instant::now()` is never called. Timings aggregate into
//! fixed-size [`Log2Histogram`]s (65 buckets, one per power of two), so
//! recording is O(1) and allocation-free regardless of how many samples
//! arrive. Discrete happenings (frame detected, sync lost, …) go into a
//! bounded [`TraceRing`] that overwrites its oldest entry when full and
//! counts what it dropped.
//!
//! A cold-path [`MetricsSnapshot`] freezes the recorder state into a plain
//! value that serialises through `cpjson`, which is how `campaign run
//! --metrics <path>` and the figure drivers export telemetry.
//!
//! # Example
//!
//! ```
//! use obs::{InMemoryRecorder, Recorder, Span, StageTimer};
//!
//! let rec = InMemoryRecorder::new(64);
//! rec.counter("frames_decoded", 1);
//! let t = StageTimer::start(&rec, Span::new("decide", "Sphere"));
//! // ... do work ...
//! t.finish(&rec);
//! let snap = rec.snapshot().unwrap();
//! assert_eq!(snap.counter("frames_decoded"), 1);
//! ```

#![forbid(unsafe_code)]

mod histogram;
mod memory;
mod recorder;
mod snapshot;
mod trace;

pub use histogram::Log2Histogram;
pub use memory::InMemoryRecorder;
pub use recorder::{NoopRecorder, Recorder, Span, StageTimer};
pub use snapshot::{MetricsSnapshot, StageSnapshot};
pub use trace::{TraceEvent, TraceRing};
