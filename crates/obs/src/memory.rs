//! The live recorder: thread-safe in-memory aggregation.

use crate::histogram::Log2Histogram;
use crate::recorder::{Recorder, Span};
use crate::snapshot::{MetricsSnapshot, StageSnapshot};
use crate::trace::{TraceEvent, TraceRing};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<String, f64>,
    stages: BTreeMap<Span, Log2Histogram>,
    trace: TraceRing,
}

/// A [`Recorder`] that aggregates everything into in-process maps behind a
/// mutex.
///
/// One instance can be shared (by reference or `Arc`) across campaign worker
/// threads; contention is modest because the hot path records pre-aggregated
/// scalars (one counter bump or one histogram increment per call). Snapshot
/// extraction clones the state without resetting it.
#[derive(Debug)]
pub struct InMemoryRecorder {
    inner: Mutex<Inner>,
}

impl InMemoryRecorder {
    /// Default trace-ring capacity used by [`InMemoryRecorder::default`].
    pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

    /// Creates a recorder whose trace ring holds `trace_capacity` events.
    pub fn new(trace_capacity: usize) -> Self {
        InMemoryRecorder {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                stages: BTreeMap::new(),
                trace: TraceRing::new(trace_capacity),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-update;
        // metrics are best-effort, so keep going with whatever state exists.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current aggregate state, directly (an in-memory recorder always has
    /// one — this is [`Recorder::snapshot`] without the `Option` and without
    /// needing the trait in scope).
    pub fn snapshot_now(&self) -> MetricsSnapshot {
        self.snapshot()
            .expect("in-memory recorder always snapshots")
    }
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TRACE_CAPACITY)
    }
}

impl Recorder for InMemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(slot) => *slot = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn stage_nanos(&self, span: Span, nanos: u64) {
        self.lock().stages.entry(span).or_default().record(nanos);
    }

    fn trace(&self, event: TraceEvent) {
        self.lock().trace.push(event);
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        let inner = self.lock();
        Some(MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner.gauges.clone(),
            stages: inner
                .stages
                .iter()
                .map(|(span, h)| StageSnapshot {
                    stage: span.stage.to_string(),
                    key: span.key.to_string(),
                    histogram: h.clone(),
                })
                .collect(),
            trace: inner.trace.events(),
            trace_dropped: inner.trace.dropped(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_counters_gauges_stages_and_trace() {
        let rec = InMemoryRecorder::new(2);
        rec.counter("frames", 1);
        rec.counter("frames", 4);
        rec.gauge("psr", 0.25);
        rec.gauge("psr", 0.75);
        rec.stage_nanos(Span::new("decide", "Naive"), 10);
        rec.stage_nanos(Span::new("decide", "Naive"), 20);
        rec.trace(TraceEvent::new("a", 0, 0));
        rec.trace(TraceEvent::new("b", 1, 0));
        rec.trace(TraceEvent::new("c", 2, 0));

        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("frames"), 5);
        assert_eq!(snap.gauge("psr"), Some(0.75));
        let h = snap.stage("decide", "Naive").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 30);
        assert_eq!(snap.trace.len(), 2);
        assert_eq!(snap.trace_dropped, 1);
        assert_eq!(snap.trace[0].kind, "b");
    }

    #[test]
    fn shared_across_threads() {
        let rec = std::sync::Arc::new(InMemoryRecorder::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.counter("ticks", 1);
                        rec.stage_nanos(Span::new("work", ""), 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.counter("ticks"), 4000);
        assert_eq!(snap.stage("work", "").unwrap().count(), 4000);
    }

    #[test]
    fn snapshot_does_not_reset() {
        let rec = InMemoryRecorder::default();
        rec.counter("x", 1);
        let _ = rec.snapshot();
        rec.counter("x", 1);
        assert_eq!(rec.snapshot().unwrap().counter("x"), 2);
    }
}
