//! The [`Recorder`] trait, its no-op implementation and the stage timer.

use crate::snapshot::MetricsSnapshot;
use crate::trace::TraceEvent;
use std::time::Instant;

/// A named timing span: a pipeline stage plus a static key qualifying it
/// (the decision stage or model backend the receiver is running with).
///
/// Both halves are `&'static str` so constructing and hashing a span never
/// allocates — spans sit on the per-symbol hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Pipeline stage name, e.g. `"sync"`, `"decide"`, `"model_train"`.
    pub stage: &'static str,
    /// Qualifier, e.g. `"Sphere"` or `"ExactKde"`; `""` when not applicable.
    pub key: &'static str,
}

impl Span {
    /// Creates a span from a stage name and qualifier.
    #[inline]
    pub const fn new(stage: &'static str, key: &'static str) -> Self {
        Span { stage, key }
    }
}

/// Sink for instrumentation emitted by the receive chain, sessions and the
/// campaign engine.
///
/// Every method has an empty default body, so implementations override only
/// what they care about and [`NoopRecorder`] overrides nothing. Instrumented
/// code must consult [`Recorder::enabled`] before doing *any* work whose only
/// purpose is producing a metric (reading the clock, formatting a label):
/// that is the zero-overhead contract.
pub trait Recorder {
    /// Whether this recorder wants data at all. Hot paths gate clock reads
    /// and other metric-only work on this.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one elapsed-time observation, in nanoseconds, for `span`.
    #[inline]
    fn stage_nanos(&self, span: Span, nanos: u64) {
        let _ = (span, nanos);
    }

    /// Appends a structured event to the trace ring.
    #[inline]
    fn trace(&self, event: TraceEvent) {
        let _ = event;
    }

    /// Freezes the recorder state into a snapshot. Cold path; `None` for
    /// recorders that keep no state.
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// The do-nothing recorder: all trait defaults, `enabled()` is `false`.
///
/// Code monomorphised against `NoopRecorder` contains no instrumentation —
/// the empty inline bodies vanish at compile time, which is what the
/// `obs` Criterion bench and the decode-equivalence test pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn stage_nanos(&self, span: Span, nanos: u64) {
        (**self).stage_nanos(span, nanos)
    }
    #[inline]
    fn trace(&self, event: TraceEvent) {
        (**self).trace(event)
    }
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        (**self).snapshot()
    }
}

impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    #[inline]
    fn gauge(&self, name: &str, value: f64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn stage_nanos(&self, span: Span, nanos: u64) {
        (**self).stage_nanos(span, nanos)
    }
    #[inline]
    fn trace(&self, event: TraceEvent) {
        (**self).trace(event)
    }
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        (**self).snapshot()
    }
}

/// Measures the wall-clock duration of one stage execution.
///
/// `start` reads the monotonic clock only when the recorder is enabled;
/// `finish` records the elapsed nanoseconds under the span. With a
/// [`NoopRecorder`] both calls compile to nothing.
#[derive(Debug)]
#[must_use = "a StageTimer records nothing unless finish() is called"]
pub struct StageTimer {
    span: Span,
    started: Option<Instant>,
}

impl StageTimer {
    /// Starts timing `span`, touching the clock only if `rec` is enabled.
    #[inline]
    pub fn start<R: Recorder + ?Sized>(rec: &R, span: Span) -> Self {
        StageTimer {
            span,
            started: if rec.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Stops the timer and records the elapsed time with `rec`.
    #[inline]
    pub fn finish<R: Recorder + ?Sized>(self, rec: &R) {
        if let Some(started) = self.started {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            rec.stage_nanos(self.span, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryRecorder;

    #[test]
    fn noop_recorder_is_disabled_and_snapshotless() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.counter("x", 1);
        rec.gauge("y", 2.0);
        rec.stage_nanos(Span::new("a", "b"), 3);
        rec.trace(TraceEvent::new("e", 0, 0));
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn stage_timer_skips_clock_when_disabled() {
        let t = StageTimer::start(&NoopRecorder, Span::new("s", ""));
        assert!(t.started.is_none());
        t.finish(&NoopRecorder);
    }

    #[test]
    fn stage_timer_records_when_enabled() {
        let rec = InMemoryRecorder::new(8);
        let t = StageTimer::start(&rec, Span::new("s", "k"));
        assert!(t.started.is_some());
        t.finish(&rec);
        let snap = rec.snapshot().unwrap();
        let stage = snap
            .stages
            .iter()
            .find(|s| s.stage == "s" && s.key == "k")
            .unwrap();
        assert_eq!(stage.histogram.count(), 1);
    }

    #[test]
    fn reference_and_arc_forward() {
        let rec = InMemoryRecorder::new(8);
        {
            let by_ref: &dyn Recorder = &rec;
            assert!(by_ref.enabled());
            by_ref.counter("c", 2);
        }
        let arc = std::sync::Arc::new(InMemoryRecorder::new(8));
        arc.counter("c", 3);
        assert!(arc.enabled());
        assert_eq!(rec.snapshot().unwrap().counter("c"), 2);
        assert_eq!(arc.snapshot().unwrap().counter("c"), 3);
    }
}
