//! Frozen, serialisable view of a recorder's state.

use crate::histogram::Log2Histogram;
use crate::trace::NumberedEvent;
use cpjson::{object, FromJson, ToJson, Value};
use std::collections::BTreeMap;

/// One stage's aggregated timing distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Pipeline stage name (`"sync"`, `"decide"`, …).
    pub stage: String,
    /// Qualifier (decision stage / model backend label), possibly empty.
    pub key: String,
    /// Elapsed-nanosecond distribution for this span.
    pub histogram: Log2Histogram,
}

impl ToJson for StageSnapshot {
    fn to_json(&self) -> Value {
        object(vec![
            ("stage", self.stage.to_json()),
            ("key", self.key.to_json()),
            ("nanos", self.histogram.to_json()),
        ])
    }
}

impl FromJson for StageSnapshot {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(StageSnapshot {
            stage: value.field_as("stage")?,
            key: value.field_as("key")?,
            histogram: value.field_as("nanos")?,
        })
    }
}

/// A point-in-time copy of everything a recorder has aggregated, decoupled
/// from the recorder itself so it can be merged, serialised and shipped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Per-span timing distributions, sorted by (stage, key).
    pub stages: Vec<StageSnapshot>,
    /// Retained tail of the structured event trace, oldest first.
    pub trace: Vec<NumberedEvent>,
    /// Trace events lost to the ring-buffer capacity bound.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The timing distribution for `(stage, key)`, if any was recorded.
    pub fn stage(&self, stage: &str, key: &str) -> Option<&Log2Histogram> {
        self.stages
            .iter()
            .find(|s| s.stage == stage && s.key == key)
            .map(|s| &s.histogram)
    }

    /// Adds a counter in place (used when layering session counters onto a
    /// recorder snapshot).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge in place.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s value,
    /// stage histograms merge, traces concatenate (sequence numbers are
    /// per-source and left untouched).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for stage in &other.stages {
            match self
                .stages
                .iter_mut()
                .find(|s| s.stage == stage.stage && s.key == stage.key)
            {
                Some(existing) => existing.histogram.merge(&stage.histogram),
                None => self.stages.push(stage.clone()),
            }
        }
        self.stages
            .sort_by(|a, b| (&a.stage, &a.key).cmp(&(&b.stage, &b.key)));
        self.trace.extend(other.trace.iter().cloned());
        self.trace_dropped += other.trace_dropped;
    }

    /// Folds `other` into `self` under a name prefix: counters add and gauges
    /// overwrite at `{prefix}{name}`, stage histograms merge under
    /// `{prefix}{stage}`, and trace entries concatenate with `{prefix}{kind}`
    /// labels (sequence numbers stay per-source, like [`merge`](Self::merge)).
    ///
    /// This is how a multi-session server folds N per-session snapshots into
    /// one server snapshot without name collisions: session 3's
    /// `frames_decoded` lands as `session.3.frames_decoded` while the
    /// unprefixed aggregate stays the sum over sessions.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(format!("{prefix}{name}")).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(format!("{prefix}{name}"), *value);
        }
        for stage in &other.stages {
            let name = format!("{prefix}{}", stage.stage);
            match self
                .stages
                .iter_mut()
                .find(|s| s.stage == name && s.key == stage.key)
            {
                Some(existing) => existing.histogram.merge(&stage.histogram),
                None => self.stages.push(StageSnapshot {
                    stage: name,
                    key: stage.key.clone(),
                    histogram: stage.histogram.clone(),
                }),
            }
        }
        self.stages
            .sort_by(|a, b| (&a.stage, &a.key).cmp(&(&b.stage, &b.key)));
        self.trace.extend(other.trace.iter().map(|e| NumberedEvent {
            seq: e.seq,
            kind: format!("{prefix}{}", e.kind),
            at: e.at,
            value: e.value,
        }));
        self.trace_dropped += other.trace_dropped;
    }

    /// Serialises the snapshot as pretty JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Parses a snapshot previously produced by [`Self::to_json_string`].
    pub fn from_json_str(text: &str) -> cpjson::Result<Self> {
        Self::from_json(&Value::parse(text)?)
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Value {
        object(vec![
            ("counters", self.counters.to_json()),
            (
                "gauges",
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            ("stages", self.stages.to_json()),
            ("trace", self.trace.to_json()),
            ("trace_dropped", self.trace_dropped.to_json()),
        ])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        let mut counters = BTreeMap::new();
        if let Value::Object(fields) = value.field("counters")? {
            for (k, v) in fields {
                counters.insert(k.clone(), u64::from_json(v)?);
            }
        }
        let mut gauges = BTreeMap::new();
        if let Value::Object(fields) = value.field("gauges")? {
            for (k, v) in fields {
                gauges.insert(k.clone(), f64::from_json(v)?);
            }
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            stages: value.field_as("stages")?,
            trace: value.field_as("trace")?,
            trace_dropped: value.field_as("trace_dropped")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryRecorder, Recorder, Span, TraceEvent};

    #[test]
    fn accessors_default_sensibly() {
        let snap = MetricsSnapshot::new();
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), None);
        assert!(snap.stage("a", "b").is_none());
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let rec = InMemoryRecorder::new(8);
        rec.counter("frames", 2);
        rec.stage_nanos(Span::new("decide", "Sphere"), 100);
        let mut a = rec.snapshot().unwrap();

        let rec2 = InMemoryRecorder::new(8);
        rec2.counter("frames", 3);
        rec2.stage_nanos(Span::new("decide", "Sphere"), 200);
        rec2.stage_nanos(Span::new("sync", ""), 50);
        rec2.gauge("psr", 0.5);
        let b = rec2.snapshot().unwrap();

        a.merge(&b);
        assert_eq!(a.counter("frames"), 5);
        assert_eq!(a.gauge("psr"), Some(0.5));
        assert_eq!(a.stage("decide", "Sphere").unwrap().count(), 2);
        assert_eq!(a.stage("sync", "").unwrap().count(), 1);
    }

    #[test]
    fn merge_prefixed_namespaces_counters_gauges_stages_and_traces() {
        let rec = InMemoryRecorder::new(8);
        rec.counter("frames_decoded", 4);
        rec.gauge("queue_depth", 2.0);
        rec.stage_nanos(Span::new("decide", "Sphere"), 300);
        rec.trace(TraceEvent::new("frame_decoded", 160, 1));
        let session = rec.snapshot().unwrap();

        let mut server = MetricsSnapshot::new();
        server.add_counter("frames_decoded", 9); // pre-existing aggregate
        server.merge_prefixed("session.3.", &session);

        assert_eq!(server.counter("session.3.frames_decoded"), 4);
        assert_eq!(server.counter("frames_decoded"), 9, "aggregate untouched");
        assert_eq!(server.gauge("session.3.queue_depth"), Some(2.0));
        assert_eq!(
            server.stage("session.3.decide", "Sphere").unwrap().count(),
            1
        );
        assert!(server.stage("decide", "Sphere").is_none());
        assert_eq!(server.trace.len(), 1);
        assert_eq!(server.trace[0].kind, "session.3.frame_decoded");

        // Merging a second session accumulates counters under its own prefix.
        server.merge_prefixed("session.3.", &session);
        assert_eq!(server.counter("session.3.frames_decoded"), 8);
        assert_eq!(
            server.stage("session.3.decide", "Sphere").unwrap().count(),
            2
        );
    }

    #[test]
    fn json_roundtrip_with_trace() {
        let rec = InMemoryRecorder::new(4);
        rec.counter("frames_decoded", 7);
        rec.gauge("trials_per_sec", 123.5);
        rec.stage_nanos(Span::new("sync", "CPRecycle"), 1_000);
        rec.trace(TraceEvent::new("frame_detected", 160, 1));
        let snap = rec.snapshot().unwrap();
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
