//! Bounded structured event trace.

use cpjson::{object, FromJson, ToJson, Value};
use std::collections::VecDeque;

/// One structured trace entry.
///
/// `kind` is a static label (`"frame_detected"`, `"sync_lost"`, …) so that
/// emitting an event never allocates; `at` and `value` carry event-specific
/// context (typically a sample index and an auxiliary quantity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event label.
    pub kind: &'static str,
    /// Position of the event, usually an absolute sample index.
    pub at: u64,
    /// Event-specific payload (frame length, CRC flag, …); 0 when unused.
    pub value: i64,
}

impl TraceEvent {
    /// Creates a trace event.
    #[inline]
    pub const fn new(kind: &'static str, at: u64, value: i64) -> Self {
        TraceEvent { kind, at, value }
    }
}

/// A numbered event as exported in snapshots: the ring assigns each accepted
/// event a monotonically increasing sequence number so consumers can tell
/// where the retained window sits in the full stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberedEvent {
    /// 0-based position of the event in the full (pre-drop) stream.
    pub seq: u64,
    /// Event label.
    pub kind: String,
    /// Position of the event.
    pub at: u64,
    /// Event-specific payload.
    pub value: i64,
}

impl ToJson for NumberedEvent {
    fn to_json(&self) -> Value {
        object(vec![
            ("seq", self.seq.to_json()),
            ("kind", self.kind.to_json()),
            ("at", self.at.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl FromJson for NumberedEvent {
    fn from_json(value: &Value) -> cpjson::Result<Self> {
        Ok(NumberedEvent {
            seq: value.field_as("seq")?,
            kind: value.field_as("kind")?,
            at: value.field_as("at")?,
            value: value.field_as("value")?,
        })
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// When full, pushing overwrites the oldest entry and increments the dropped
/// counter — the trace is a recent-history window, not a complete log.
#[derive(Debug, Clone)]
pub struct TraceRing {
    events: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            events: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            self.next_seq += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((self.next_seq, event));
        self.next_seq += 1;
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted or refused because of the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first, with their stream sequence numbers.
    pub fn events(&self) -> Vec<NumberedEvent> {
        self.events
            .iter()
            .map(|(seq, e)| NumberedEvent {
                seq: *seq,
                kind: e.kind.to_string(),
                at: e.at,
                value: e.value,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_and_counts_drops() {
        let mut ring = TraceRing::new(2);
        ring.push(TraceEvent::new("a", 1, 0));
        ring.push(TraceEvent::new("b", 2, 0));
        ring.push(TraceEvent::new("c", 3, 0));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total(), 3);
        assert_eq!(ring.dropped(), 1);
        let events = ring.events();
        assert_eq!(events[0].kind, "b");
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].kind, "c");
        assert_eq!(events[1].seq, 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut ring = TraceRing::new(0);
        ring.push(TraceEvent::new("a", 0, 0));
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
