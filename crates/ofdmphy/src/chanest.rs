//! Channel estimation and equalisation.
//!
//! The receiver forms a least-squares channel estimate from the two long training
//! symbols (average of `Y_ltf / X_ltf` per occupied subcarrier), equalises every data
//! symbol by dividing by the estimate, and removes the residual common phase error
//! tracked from the four pilot subcarriers. CPRecycle uses the *same* estimate for all
//! of its FFT segments — the ISI-free windows all see the same channel, which is why a
//! single per-packet estimate suffices (paper Eq. 1 divides every segment by `Ĥ`).

use crate::frame::pilot_values;
use crate::ofdm::OfdmEngine;
use crate::params::SubcarrierRole;
use crate::preamble;
use crate::{PhyError, Result};
use rfdsp::Complex;

/// A per-subcarrier channel estimate.
#[derive(Debug, Clone)]
pub struct ChannelEstimate {
    /// Estimated complex channel gain per FFT bin (unoccupied bins hold 1 so division
    /// is always safe; they carry no data).
    pub h: Vec<Complex>,
}

impl ChannelEstimate {
    /// An all-ones (identity) estimate, useful for tests and for the AWGN-only case.
    pub fn identity(fft_size: usize) -> Self {
        ChannelEstimate {
            h: vec![Complex::one(); fft_size],
        }
    }

    /// Estimates the channel from the 160-sample long training field.
    ///
    /// Both long training symbols are demodulated with the standard FFT window, averaged
    /// and divided by the known LTF sequence.
    pub fn from_ltf(engine: &OfdmEngine, ltf_samples: &[Complex]) -> Result<Self> {
        let params = engine.params();
        let f = params.fft_size;
        let gi2 = 2 * params.cp_len;
        let needed = gi2 + 2 * f;
        if ltf_samples.len() < needed {
            return Err(PhyError::InsufficientSamples {
                needed,
                available: ltf_samples.len(),
            });
        }
        let reference = preamble::ltf_bins(params);
        let plan = rfdsp::fft::FftPlan::new(f);
        let sym1 = plan.fft(&ltf_samples[gi2..gi2 + f]);
        let sym2 = plan.fft(&ltf_samples[gi2 + f..gi2 + 2 * f]);
        let mut h = vec![Complex::one(); f];
        for k in 0..f {
            if params.roles[k] == SubcarrierRole::Null || reference[k].norm_sqr() == 0.0 {
                continue;
            }
            let avg = (sym1[k] + sym2[k]).scale(0.5);
            h[k] = avg / reference[k];
        }
        Ok(ChannelEstimate { h })
    }

    /// Equalises a demodulated symbol (divides every bin by the channel estimate).
    pub fn equalize(&self, bins: &[Complex]) -> Result<Vec<Complex>> {
        if bins.len() != self.h.len() {
            return Err(PhyError::LengthMismatch {
                expected: self.h.len(),
                actual: bins.len(),
            });
        }
        Ok(bins
            .iter()
            .zip(&self.h)
            .map(|(y, h)| if h.norm_sqr() < 1e-12 { *y } else { *y / *h })
            .collect())
    }

    /// The multiplicative per-bin equalizer matching [`equalize`](Self::equalize):
    /// `1/ĥ` where the estimate is usable, `1` where it is degenerate (so degenerate
    /// bins pass through unchanged, exactly as `equalize` leaves them). Receivers that
    /// fold equalization into a fused per-bin factor (the sliding-DFT segment kernel)
    /// use this instead of dividing per observation.
    #[inline]
    pub fn inverse_gain(&self, bin: usize) -> Complex {
        let h = self.h[bin];
        if h.norm_sqr() < 1e-12 {
            Complex::one()
        } else {
            Complex::one() / h
        }
    }

    /// Average channel power over the occupied subcarriers of `engine`'s numerology —
    /// a proxy for the per-packet SNR scaling.
    pub fn mean_gain(&self, engine: &OfdmEngine) -> f64 {
        let occupied = engine.params().occupied_bins();
        if occupied.is_empty() {
            return 0.0;
        }
        occupied.iter().map(|k| self.h[*k].norm_sqr()).sum::<f64>() / occupied.len() as f64
    }
}

/// Estimates the common phase error of one equalised symbol from its pilot subcarriers
/// and the known pilot polarity, returning the unit-magnitude correction factor to
/// multiply every subcarrier by.
pub fn common_phase_correction(
    engine: &OfdmEngine,
    equalized_bins: &[Complex],
    pilot_polarity: f64,
) -> Result<Complex> {
    let rx_pilots = engine.extract_pilots(equalized_bins)?;
    let reference = pilot_values(pilot_polarity);
    let mut acc = Complex::zero();
    for (rx, re) in rx_pilots.iter().zip(&reference) {
        acc += *rx * re.conj();
    }
    if acc.norm_sqr() == 0.0 {
        return Ok(Complex::one());
    }
    // The correction rotates the received pilots back onto the reference.
    Ok(Complex::cis(-acc.arg()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convcode::CodeRate;
    use crate::frame::{pilot_values, Mcs, Transmitter};
    use crate::modulation::Modulation;
    use crate::params::OfdmParams;
    use rand::SeedableRng;
    use wirelesschan::multipath::{FadingKind, MultipathChannel, PowerDelayProfile};

    fn engine() -> OfdmEngine {
        OfdmEngine::new(OfdmParams::ieee80211ag())
    }

    #[test]
    fn identity_estimate_is_transparent() {
        let e = engine();
        let est = ChannelEstimate::identity(64);
        let bins: Vec<Complex> = (0..64).map(|k| Complex::new(k as f64, -1.0)).collect();
        let eq = est.equalize(&bins).unwrap();
        for (a, b) in eq.iter().zip(&bins) {
            assert!((*a - *b).norm() < 1e-12);
        }
        assert!((est.mean_gain(&e) - 1.0).abs() < 1e-12);
        assert!(est.equalize(&bins[..10]).is_err());
    }

    #[test]
    fn ltf_estimate_of_clean_channel_is_unity() {
        let e = engine();
        let ltf = preamble::generate_ltf(e.params());
        let est = ChannelEstimate::from_ltf(&e, &ltf).unwrap();
        for k in e.params().occupied_bins() {
            assert!((est.h[k] - Complex::one()).norm() < 1e-9, "bin {k}");
        }
        assert!(ChannelEstimate::from_ltf(&e, &ltf[..100]).is_err());
    }

    #[test]
    fn ltf_estimate_recovers_multipath_channel() {
        let e = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pdp = PowerDelayProfile::exponential(4, 1.5).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        // Prepend the STF so the convolution transient does not land in the LTF.
        let tx = Transmitter::new(OfdmParams::ieee80211ag());
        let frame = tx
            .build_frame(&[0u8; 20], Mcs::new(Modulation::Qpsk, CodeRate::Half), 0x5D)
            .unwrap();
        let rx = chan.apply(&frame.samples);
        let est = ChannelEstimate::from_ltf(&e, &rx[160..320]).unwrap();
        let truth = chan.frequency_response(64);
        for k in e.params().occupied_bins() {
            assert!(
                (est.h[k] - truth[k]).norm() < 1e-6,
                "bin {k}: est {} truth {}",
                est.h[k],
                truth[k]
            );
        }
        assert!(est.mean_gain(&e) > 0.0);
    }

    #[test]
    fn equalization_inverts_the_channel() {
        let e = engine();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pdp = PowerDelayProfile::exponential(3, 1.0).unwrap();
        let chan = MultipathChannel::realize(&pdp, FadingKind::Rayleigh, &mut rng);
        let truth = chan.frequency_response(64);
        let est = ChannelEstimate { h: truth.clone() };
        // A symbol whose bins are the channel response itself equalises to all ones.
        let eq = est.equalize(&truth).unwrap();
        for k in e.params().occupied_bins() {
            assert!((eq[k] - Complex::one()).norm() < 1e-9);
        }
    }

    #[test]
    fn common_phase_correction_recovers_rotation() {
        let e = engine();
        for polarity in [1.0, -1.0] {
            for phase in [-0.4f64, 0.0, 0.3, 1.0] {
                // Build a symbol whose pilots are the reference rotated by `phase`.
                let data = vec![Complex::one(); 48];
                let rotated_pilots: Vec<Complex> = pilot_values(polarity)
                    .iter()
                    .map(|p| *p * Complex::cis(phase))
                    .collect();
                let bins = e.assemble_bins(&data, &rotated_pilots).unwrap();
                let corr = common_phase_correction(&e, &bins, polarity).unwrap();
                assert!(
                    (corr - Complex::cis(-phase)).norm() < 1e-9,
                    "polarity {polarity} phase {phase}"
                );
            }
        }
    }

    #[test]
    fn common_phase_correction_of_zero_pilots_is_identity() {
        let e = engine();
        let bins = vec![Complex::zero(); 64];
        let corr = common_phase_correction(&e, &bins, 1.0).unwrap();
        assert_eq!(corr, Complex::one());
    }
}
