//! The IEEE 802.11 convolutional encoder and puncturing patterns.
//!
//! The mother code is the industry-standard rate-1/2, constraint-length-7 code with
//! generator polynomials `g0 = 133₈` and `g1 = 171₈`. Rates 2/3 and 3/4 are obtained by
//! puncturing. Decoding lives in [`crate::viterbi`].

use crate::{PhyError, Result};

/// Generator polynomial `g0 = 133₈` (binary 1011011).
pub const G0: u8 = 0o133;
/// Generator polynomial `g1 = 171₈` (binary 1111001).
pub const G1: u8 = 0o171;
/// Constraint length of the 802.11 code.
pub const CONSTRAINT_LENGTH: usize = 7;
/// Number of trellis states (2^(K−1)).
pub const NUM_STATES: usize = 64;

/// Coding rates defined by 802.11a/g.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// The unpunctured rate-1/2 mother code.
    Half,
    /// Rate 2/3 (puncture pattern period 4 coded bits, 1 punctured).
    TwoThirds,
    /// Rate 3/4 (puncture pattern period 6 coded bits, 2 punctured).
    ThreeQuarters,
}

impl CodeRate {
    /// The rate as a fraction `(numerator, denominator)` of information bits per coded
    /// bit.
    pub fn as_fraction(self) -> (usize, usize) {
        match self {
            CodeRate::Half => (1, 2),
            CodeRate::TwoThirds => (2, 3),
            CodeRate::ThreeQuarters => (3, 4),
        }
    }

    /// The rate as a real number.
    pub fn as_f64(self) -> f64 {
        let (n, d) = self.as_fraction();
        n as f64 / d as f64
    }

    /// Human-readable name ("1/2", "2/3", "3/4").
    pub fn name(self) -> &'static str {
        match self {
            CodeRate::Half => "1/2",
            CodeRate::TwoThirds => "2/3",
            CodeRate::ThreeQuarters => "3/4",
        }
    }

    /// The puncturing pattern applied to the rate-1/2 coded stream: `true` = transmit,
    /// `false` = puncture. The pattern is indexed over consecutive coded bits
    /// (A0 B0 A1 B1 …) and repeats.
    pub fn puncture_pattern(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true, true],
            // 802.11: rate 2/3 keeps A0 B0 A1 and drops B1.
            CodeRate::TwoThirds => &[true, true, true, false],
            // 802.11: rate 3/4 keeps A0 B0 A1 B2 and drops B1 A2.
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }

    /// Number of coded (transmitted) bits produced per block of information bits, i.e.
    /// the pattern's `(info_bits, coded_bits)` per period.
    pub fn bits_per_period(self) -> (usize, usize) {
        let pattern = self.puncture_pattern();
        let coded = pattern.iter().filter(|b| **b).count();
        (pattern.len() / 2, coded)
    }
}

/// Encodes `data` with the rate-1/2 mother code (no tail bits are appended — callers
/// append the 802.11 six zero tail bits themselves so the trellis terminates).
pub fn encode_rate_half(data: &[u8]) -> Result<Vec<u8>> {
    if data.iter().any(|b| *b > 1) {
        return Err(PhyError::invalid("data", "bit values must be 0 or 1"));
    }
    let mut state: u8 = 0; // shift register of the 6 most recent bits
    let mut out = Vec::with_capacity(data.len() * 2);
    for &bit in data {
        let reg = ((bit << 6) | state) as u32;
        out.push(parity(reg & G0 as u32));
        out.push(parity(reg & G1 as u32));
        state = ((reg >> 1) & 0x3F) as u8;
    }
    Ok(out)
}

/// Encodes and punctures to the requested rate.
pub fn encode(data: &[u8], rate: CodeRate) -> Result<Vec<u8>> {
    let coded = encode_rate_half(data)?;
    Ok(puncture(&coded, rate))
}

/// Applies the puncturing pattern to a rate-1/2 coded stream.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let pattern = rate.puncture_pattern();
    coded
        .iter()
        .enumerate()
        .filter(|(i, _)| pattern[i % pattern.len()])
        .map(|(_, b)| *b)
        .collect()
}

/// Re-inserts erasures (represented as `None`) where bits were punctured, recovering a
/// stream aligned with the rate-1/2 trellis. The output length is the original coded
/// length implied by `punctured.len()` and the pattern.
pub fn depuncture(punctured: &[u8], rate: CodeRate) -> Vec<Option<u8>> {
    let mut out = Vec::new();
    depuncture_into(punctured, rate, &mut out);
    out
}

/// [`depuncture`] into a caller-owned buffer (cleared first) — the allocation-free
/// variant the Viterbi hot path threads its reusable scratch through.
pub fn depuncture_into(punctured: &[u8], rate: CodeRate, out: &mut Vec<Option<u8>>) {
    let pattern = rate.puncture_pattern();
    out.clear();
    out.reserve(punctured.len() * 2);
    let mut it = punctured.iter();
    'outer: loop {
        for &keep in pattern {
            if keep {
                match it.next() {
                    Some(&b) => out.push(Some(b)),
                    None => break 'outer,
                }
            } else {
                out.push(None);
            }
        }
    }
    // Trim trailing erasures that were emitted past the last real coded bit (they would
    // add a phantom trellis step and hence a phantom decoded bit), but keep enough of
    // them that the stream ends on a whole (A, B) pair — the Viterbi decoder needs the
    // full final pair, otherwise the last information bit would be dropped.
    if let Some(last_real) = out.iter().rposition(|s| s.is_some()) {
        out.truncate(last_real + 1);
    }
    if out.len() % 2 == 1 {
        out.push(None);
    }
}

#[inline]
fn parity(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_fractions() {
        assert_eq!(CodeRate::Half.as_fraction(), (1, 2));
        assert_eq!(CodeRate::TwoThirds.as_fraction(), (2, 3));
        assert_eq!(CodeRate::ThreeQuarters.as_fraction(), (3, 4));
        assert!((CodeRate::ThreeQuarters.as_f64() - 0.75).abs() < 1e-12);
        assert_eq!(CodeRate::Half.name(), "1/2");
    }

    #[test]
    fn encoder_doubles_length() {
        let data = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let coded = encode_rate_half(&data).unwrap();
        assert_eq!(coded.len(), 16);
    }

    #[test]
    fn encoder_rejects_non_bits() {
        assert!(encode_rate_half(&[0, 1, 2]).is_err());
        assert!(encode(&[3], CodeRate::Half).is_err());
    }

    #[test]
    fn encoder_impulse_response_matches_generators() {
        // A single 1 followed by zeros produces the generator polynomial taps read from
        // the current-input tap downwards: g0 = 133₈ = 1011011₂, g1 = 171₈ = 1111001₂.
        let mut data = vec![0u8; 7];
        data[0] = 1;
        let coded = encode_rate_half(&data).unwrap();
        let g0_bits: Vec<u8> = (0..7).map(|i| coded[2 * i]).collect();
        let g1_bits: Vec<u8> = (0..7).map(|i| coded[2 * i + 1]).collect();
        let expect = |g: u8| -> Vec<u8> { (0..7).map(|i| (g >> (6 - i)) & 1).collect() };
        assert_eq!(g0_bits, expect(G0));
        assert_eq!(g1_bits, expect(G1));
    }

    #[test]
    fn encoder_is_linear() {
        // The code is linear over GF(2): encode(a XOR b) = encode(a) XOR encode(b).
        let a: Vec<u8> = (0..32).map(|i| (i % 3 == 0) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| (i % 5 == 0) as u8).collect();
        let axb: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ca = encode_rate_half(&a).unwrap();
        let cb = encode_rate_half(&b).unwrap();
        let cab = encode_rate_half(&axb).unwrap();
        let cxor: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(cab, cxor);
    }

    #[test]
    fn puncture_lengths_match_rates() {
        let data = vec![1u8; 36];
        let half = encode(&data, CodeRate::Half).unwrap();
        let two_thirds = encode(&data, CodeRate::TwoThirds).unwrap();
        let three_quarters = encode(&data, CodeRate::ThreeQuarters).unwrap();
        assert_eq!(half.len(), 72);
        assert_eq!(two_thirds.len(), 54);
        assert_eq!(three_quarters.len(), 48);
    }

    #[test]
    fn bits_per_period() {
        assert_eq!(CodeRate::Half.bits_per_period(), (1, 2));
        assert_eq!(CodeRate::TwoThirds.bits_per_period(), (2, 3));
        assert_eq!(CodeRate::ThreeQuarters.bits_per_period(), (3, 4));
    }

    #[test]
    fn depuncture_restores_alignment() {
        let data: Vec<u8> = (0..24).map(|i| (i % 7 == 0) as u8).collect();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let coded = encode_rate_half(&data).unwrap();
            let punctured = puncture(&coded, rate);
            let restored = depuncture(&punctured, rate);
            // Every surviving position must match the original coded bit.
            let mut count = 0;
            for (i, slot) in restored.iter().enumerate() {
                if let Some(b) = slot {
                    assert_eq!(*b, coded[i], "rate {rate:?} position {i}");
                    count += 1;
                }
            }
            assert_eq!(count, punctured.len());
        }
    }

    #[test]
    fn depuncture_of_half_rate_has_no_erasures() {
        let punctured = vec![1u8, 0, 1, 1];
        let restored = depuncture(&punctured, CodeRate::Half);
        assert_eq!(restored.len(), 4);
        assert!(restored.iter().all(|s| s.is_some()));
    }
}
