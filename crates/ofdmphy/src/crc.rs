//! CRC-32 (the IEEE 802.11 frame check sequence).
//!
//! Every simulated MPDU carries the standard CRC-32 so "packet success" in the
//! reproduction means exactly what it means on real hardware: the FCS of the decoded
//! payload matches.

/// The reflected CRC-32 polynomial (IEEE 802.3 / 802.11).
const POLY: u32 = 0xEDB8_8320;

/// Computes the CRC-32 of a byte slice (init `0xFFFFFFFF`, reflected, final XOR
/// `0xFFFFFFFF` — the standard Ethernet/802.11 parameterisation).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= POLY;
            }
        }
    }
    !crc
}

/// Appends the FCS (little-endian, as transmitted on air) to a payload.
pub fn append_fcs(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Checks a frame consisting of payload + 4-byte FCS. Returns the payload on success.
pub fn check_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (payload, fcs) = frame.split_at(frame.len() - 4);
    let expected = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn append_and_check_roundtrip() {
        let payload = b"the quick brown fox jumps over the lazy dog";
        let frame = append_fcs(payload);
        assert_eq!(frame.len(), payload.len() + 4);
        assert_eq!(check_fcs(&frame), Some(&payload[..]));
    }

    #[test]
    fn corruption_is_detected() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut frame = append_fcs(&payload);
        frame[17] ^= 0x04;
        assert_eq!(check_fcs(&frame), None);
        // Corrupting the FCS itself is also detected.
        let mut frame2 = append_fcs(&payload);
        let n = frame2.len();
        frame2[n - 1] ^= 0x80;
        assert_eq!(check_fcs(&frame2), None);
    }

    #[test]
    fn short_frames_are_rejected() {
        assert_eq!(check_fcs(&[1, 2, 3]), None);
        // A 4-byte frame is an empty payload plus FCS.
        let frame = append_fcs(&[]);
        assert_eq!(check_fcs(&frame), Some(&[][..]));
    }
}
