//! Error type for the OFDM PHY.

use std::fmt;

/// Errors produced by the PHY layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An input had an unexpected length.
    LengthMismatch {
        /// Length the operation expected.
        expected: usize,
        /// Length that was actually provided.
        actual: usize,
    },
    /// Not enough received samples to decode the requested structure.
    InsufficientSamples {
        /// Samples needed.
        needed: usize,
        /// Samples available.
        available: usize,
    },
    /// Packet/frame decoding failed (bad CRC, undecodable SIGNAL field, …).
    DecodeFailure(String),
    /// An underlying DSP primitive failed.
    Dsp(rfdsp::DspError),
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PhyError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            PhyError::InsufficientSamples { needed, available } => {
                write!(f, "insufficient samples: need {needed}, have {available}")
            }
            PhyError::DecodeFailure(msg) => write!(f, "decode failure: {msg}"),
            PhyError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for PhyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhyError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfdsp::DspError> for PhyError {
    fn from(e: rfdsp::DspError) -> Self {
        PhyError::Dsp(e)
    }
}

impl PhyError {
    /// Helper for building an [`PhyError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        PhyError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PhyError::invalid("mcs", "unknown")
            .to_string()
            .contains("mcs"));
        assert!(PhyError::LengthMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("expected 4"));
        assert!(PhyError::InsufficientSamples {
            needed: 100,
            available: 10
        }
        .to_string()
        .contains("need 100"));
        assert!(PhyError::DecodeFailure("bad crc".into())
            .to_string()
            .contains("bad crc"));
        assert!(PhyError::from(rfdsp::DspError::EmptyInput)
            .to_string()
            .contains("dsp"));
    }

    #[test]
    fn source_only_for_wrapped_errors() {
        use std::error::Error;
        assert!(PhyError::from(rfdsp::DspError::EmptyInput)
            .source()
            .is_some());
        assert!(PhyError::DecodeFailure("x".into()).source().is_none());
    }
}
